//! The `serve`, `load` and `verify` subcommands: the streaming
//! report-ingestion path end to end.
//!
//! All three build the *same* [`CollectionPlan`] from `--attrs`/`--n`/
//! `--epsilon`/`--plan-seed`, so the plan's `schema_hash()` agrees across
//! the server, the load generator, and the offline verifier — the wire
//! handshake and the snapshot header both check it.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use felip::plan::CollectionPlan;
use felip::{FelipConfig, SelectivityPrior, Strategy};
use felip_cluster::{StreamerConfig, UpstreamStreamer};
use felip_common::rng::derive_seed;
use felip_common::Predicate;
use felip_obs::diag;
use felip_server::loadgen::{offline_reference, user_report};
use felip_server::wire::{encode_stat, read_frame, write_frame, QueryMode, StatMode};
use felip_server::{
    signal, Client, CutState, Frame, FrameKind, RetryPolicy, Server, ServerConfig, Snapshot,
};

use crate::args::{parse_schema, Flags};

type CmdResult = std::result::Result<(), Box<dyn std::error::Error>>;

/// Builds the shared collection plan from the common plan flags.
pub(crate) fn plan_from_flags(
    flags: &Flags,
) -> std::result::Result<Arc<CollectionPlan>, Box<dyn std::error::Error>> {
    let schema = parse_schema(flags.require::<String>("attrs")?.as_str())?;
    let n: usize = flags.require("n")?;
    let epsilon: f64 = flags.require("epsilon")?;
    let plan_seed: u64 = flags.get_or("plan-seed", 0)?;
    let strategy = match flags.get_or("strategy", "ohg".to_string())?.as_str() {
        "oug" | "OUG" => Strategy::Oug,
        "ohg" | "OHG" => Strategy::Ohg,
        other => return Err(format!("unknown strategy `{other}`").into()),
    };
    let selectivity: f64 = flags.get_or("selectivity", 0.5)?;
    let config = FelipConfig::new(epsilon)
        .with_strategy(strategy)
        .with_selectivity(SelectivityPrior::Uniform(selectivity));
    Ok(Arc::new(CollectionPlan::build(
        &schema, n, &config, plan_seed,
    )?))
}

/// `felip serve`: bind, ingest until SIGINT/SIGTERM, snapshot, exit 0.
///
/// With `--upstream <addr>` the server joins a cluster as an ingest node:
/// every periodic consistent cut is shipped to the aggregator as an
/// epoch-numbered count delta, and shutdown ends with a final flush of
/// the fully merged state (DESIGN.md §16).
pub fn serve(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let plan = plan_from_flags(&flags)?;
    let streamer = match flags.get("upstream") {
        Some(upstream) => Some(UpstreamStreamer::start(StreamerConfig {
            upstream: upstream.to_string(),
            node_id: flags.get_or("node-id", 1u64)?,
            plan_hash: plan.schema_hash(),
            ..StreamerConfig::default()
        })),
        None => None,
    };
    let config = ServerConfig {
        addr: flags.get_or("addr", "127.0.0.1:4417".to_string())?,
        workers: flags.get_or("workers", 4)?,
        queue_capacity: flags.get_or("queue", 64)?,
        snapshot_path: flags.get("snapshot").map(PathBuf::from),
        snapshot_every: match flags.get_or("snapshot-every-ms", 0u64)? {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        resume: flags.get("resume").map(PathBuf::from),
        read_timeout: Duration::from_millis(flags.get_or("read-timeout-ms", 5_000u64)?),
        idle_timeout: Duration::from_millis(flags.get_or("idle-timeout-ms", 30_000u64)?),
        metrics_out: flags.get("metrics-out").map(PathBuf::from),
        metrics_every: Duration::from_millis(flags.get_or("metrics-every-ms", 1_000u64)?.max(1)),
        cut_hook: streamer.as_ref().map(|s| s.hook()),
        cut_every: Duration::from_millis(flags.get_or("delta-every-ms", 200u64)?.max(1)),
        ..ServerConfig::default()
    };

    // The server's telemetry is always on: STAT replies and the
    // `--metrics-out` rollup both read the live recorder, so `serve`
    // enables it unconditionally (the measured overhead is the
    // observability budget tracked in BENCH_obs.json).
    felip_obs::enable();
    if let Some(path) = flags.get("flight-out") {
        // Arm the postmortem dump: panics, SIGTERM shutdown and snapshot
        // quarantines append the flight window to this JSONL file.
        felip_obs::flight::set_postmortem_path(Some(Path::new(path)));
        felip_obs::flight::install_panic_hook();
    }

    let server = Server::bind(Arc::clone(&plan), config)?;
    let shutdown = signal::install_shutdown_handler();
    diag::line(&format!(
        "felip serve: listening on {} (plan hash {:016x}); SIGINT/SIGTERM drains and snapshots",
        server.local_addr(),
        plan.schema_hash()
    ));
    let run = server.run(Some(shutdown))?;

    // Cluster mode: flush the final merged state upstream so the
    // aggregator's view of this node is complete before we exit.
    let mut upstream_json = serde_json::Value::Null;
    if let Some(streamer) = streamer {
        let final_cut = CutState {
            counts: run.aggregator.counts().to_vec(),
            group_sizes: run.aggregator.group_sizes().to_vec(),
            reports: run.aggregator.reports_ingested() as u64,
        };
        let (flushed, report) = match streamer.finish(final_cut, Duration::from_secs(30)) {
            Ok(report) => (true, report),
            Err(report) => (false, report),
        };
        if !flushed {
            diag::error("felip serve: final delta flush did not reach the aggregator in time");
        }
        upstream_json = serde_json::json!({
            "flushed": flushed,
            "deltas_acked": report.deltas_acked,
            "full_resyncs": report.full_resyncs,
            "flushed_reports": report.flushed_reports,
        });
    }

    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "command": "serve",
            "reports_ingested": run.aggregator.reports_ingested(),
            "connections": run.stats.connections,
            "frames_ok": run.stats.frames_ok,
            "frames_retried": run.stats.frames_retried,
            "frames_rejected": run.stats.frames_rejected,
            "snapshots_written": run.stats.snapshots_written,
            "upstream": upstream_json,
        }))?
    );
    if upstream_json
        .get("flushed")
        .is_some_and(|f| f == &serde_json::Value::Bool(false))
    {
        return Err("final delta flush incomplete".into());
    }
    Ok(())
}

/// `felip load`: stream deterministic user reports at a running server.
pub fn load(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let plan = plan_from_flags(&flags)?;
    let addr: String = flags.get_or("addr", "127.0.0.1:4417".to_string())?;
    let users: usize = flags.require("users")?;
    let from: usize = flags.get_or("from", 0)?;
    let connections: usize = flags.get_or::<usize>("connections", 4)?.max(1);
    let batch: usize = flags.get_or::<usize>("batch", 200)?.max(1);
    let seed: u64 = flags.get_or("seed", 42)?;

    let plan_hash = plan.schema_hash();
    let user_list: Vec<usize> = (from..from + users).collect();
    let chunk = user_list.len().div_ceil(connections).max(1);
    let totals: Vec<(usize, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = user_list
            .chunks(chunk)
            .enumerate()
            .map(|(conn, slice)| {
                let plan = Arc::clone(&plan);
                let addr = addr.clone();
                s.spawn(move || -> std::result::Result<(usize, u64, u64), String> {
                    let _conn_span = felip_obs::span!("load.connection");
                    // The identity is a pure function of (seed, from,
                    // connection index): re-running an interrupted load
                    // with the same flags resumes against the server's
                    // dedup cursor instead of double-counting, and the
                    // same identity survives mid-run reconnects.
                    let client_id = derive_seed(derive_seed(seed, from as u64), conn as u64 + 1);
                    let policy = RetryPolicy {
                        jitter_seed: client_id,
                        ..RetryPolicy::default()
                    };
                    let mut client =
                        Client::connect_with(addr.as_str(), plan_hash, client_id, policy)
                            .map_err(|e| e.to_string())?;
                    // Batches the server already accepted from this
                    // identity (an earlier run of the same load): skip
                    // them — their reports are already counted.
                    let resume_from = client.last_acked() as usize;
                    let mut sent = 0usize;
                    let mut resumed = 0u64;
                    let mut retries = 0u64;
                    for (idx, batch_users) in slice.chunks(batch).enumerate() {
                        if idx < resume_from {
                            sent += batch_users.len();
                            resumed += 1;
                            continue;
                        }
                        let reports: Vec<_> = batch_users
                            .iter()
                            .map(|&u| user_report(&plan, u, seed))
                            .collect::<Result<_, _>>()
                            .map_err(|e| e.to_string())?;
                        retries += u64::from(
                            client
                                .send_batch_retrying(&reports)
                                .map_err(|e| e.to_string())?,
                        );
                        sent += reports.len();
                        felip_obs::counter!("load.reports.sent", reports.len() as u64, "reports");
                    }
                    Ok((sent, retries, resumed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("load connection thread panicked".to_string()),
            })
            .collect::<std::result::Result<_, _>>()
    })
    .map_err(|e: String| -> Box<dyn std::error::Error> { e.into() })?;

    let sent: usize = totals.iter().map(|(s, _, _)| s).sum();
    let retries: u64 = totals.iter().map(|(_, r, _)| r).sum();
    let resumed: u64 = totals.iter().map(|(_, _, k)| k).sum();
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "command": "load",
            "addr": addr,
            "users": users,
            "from": from,
            "reports_sent": sent,
            "retries": retries,
            "batches_resumed": resumed,
            "connections": connections,
        }))?
    );
    if sent != users {
        return Err(format!("sent {sent} of {users} reports").into());
    }
    Ok(())
}

/// `felip verify`: restore a snapshot and compare it bit-for-bit against an
/// offline collection of the same deterministic report stream.
pub fn verify(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let plan = plan_from_flags(&flags)?;
    let snapshot_path = PathBuf::from(flags.require::<String>("snapshot")?);
    let users: usize = flags.require("users")?;
    let from: usize = flags.get_or("from", 0)?;
    let seed: u64 = flags.get_or("seed", 42)?;

    let offline = offline_reference(&plan, from..from + users, seed)?;
    let snapshot = Snapshot::read(&snapshot_path)?;
    let reports_in_snapshot = snapshot.reports_ingested();
    let restored = snapshot.restore(Arc::clone(&plan), offline.oracles())?;

    let counts_equal = restored.counts() == offline.counts();
    let groups_equal = restored.group_sizes() == offline.group_sizes();
    let estimates_equal = {
        let a = restored.estimate()?;
        let b = offline.estimate()?;
        a.grids()
            .iter()
            .zip(b.grids())
            .all(|(ga, gb)| ga.freqs() == gb.freqs())
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "command": "verify",
            "snapshot": snapshot_path.display().to_string(),
            "users": users,
            "from": from,
            "reports_in_snapshot": reports_in_snapshot,
            "counts_bit_identical": counts_equal,
            "group_sizes_bit_identical": groups_equal,
            "estimates_bit_identical": estimates_equal,
        }))?
    );
    if !(counts_equal && groups_equal && estimates_equal) {
        return Err("snapshot does not match the offline reference collection".into());
    }
    Ok(())
}

/// `felip stat`: poll a running server's STAT admin verb.
///
/// `--mode full` (default) fetches the complete metrics snapshot,
/// `--mode delta` the change since the previous delta poll (server-side
/// baseline), `--mode flight` the flight-recorder ring as JSONL.
/// `--format json` prints the raw server payload; the default renders a
/// summary table. `--watch <secs>` re-polls forever at that cadence.
///
/// STAT needs no plan flags: the verb is handled before plan pinning, so
/// an operator can point `felip stat` at any server without knowing its
/// schema.
pub fn stat(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let addrs: Vec<String> = {
        let all = flags.get_all("addr");
        if all.is_empty() {
            vec!["127.0.0.1:4417".to_string()]
        } else {
            all.iter().map(|a| a.to_string()).collect()
        }
    };
    let mode = match flags.get_or("mode", "full".to_string())?.as_str() {
        "full" => StatMode::Full,
        "delta" => StatMode::Delta,
        "flight" => StatMode::Flight,
        other => return Err(format!("unknown stat mode `{other}` (full|delta|flight)").into()),
    };
    let format: String = flags.get_or("format", "table".to_string())?;
    if format != "table" && format != "json" {
        return Err(format!("unknown stat format `{format}` (table|json)").into());
    }
    let watch_secs: u64 = flags.get_or("watch", 0u64)?;
    if addrs.len() > 1 && mode == StatMode::Flight {
        return Err("--mode flight does not fan in; poll one --addr at a time".into());
    }

    loop {
        if addrs.len() == 1 {
            let payload = stat_once(&addrs[0], mode)?;
            let text =
                String::from_utf8(payload).map_err(|_| "server sent non-UTF-8 stat payload")?;
            if mode == StatMode::Flight || format == "json" {
                // Flight dumps are JSONL (multiple lines); pass them
                // through untouched either way.
                println!("{}", text.trim_end());
            } else {
                let doc = felip_obs::jsonread::parse(&text)
                    .map_err(|e| format!("server sent invalid metrics JSON: {e:?}"))?;
                print!("{}", felip_obs::render_metrics_table(&doc)?);
            }
        } else {
            // Fan-in: one poll per node, rendered as a single table with a
            // per-node column each plus the cluster sum.
            let mut texts = Vec::with_capacity(addrs.len());
            for addr in &addrs {
                let payload = stat_once(addr, mode)?;
                texts.push(
                    String::from_utf8(payload)
                        .map_err(|_| format!("{addr} sent non-UTF-8 stat payload"))?,
                );
            }
            if format == "json" {
                // One JSONL line per node, the raw payload tagged with its
                // origin — machine-readable fan-in.
                for (addr, text) in addrs.iter().zip(&texts) {
                    println!("{{\"addr\":{:?},\"stat\":{}}}", addr, text.trim_end());
                }
            } else {
                let docs = texts
                    .iter()
                    .map(|t| {
                        felip_obs::jsonread::parse(t)
                            .map_err(|e| format!("server sent invalid metrics JSON: {e:?}"))
                    })
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                print!("{}", render_fanin_table(&addrs, &docs)?);
            }
        }
        if watch_secs == 0 {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs(watch_secs));
    }
}

/// Extracts `(name, unit, value)` rows from one node's parsed metrics
/// snapshot. Counters and gauges contribute their value; histograms
/// contribute their sample count (renamed `<name>.count`) so latency
/// metrics still sum meaningfully across nodes.
fn fanin_rows(doc: &felip_obs::jsonread::JsonValue) -> Result<Vec<(String, String, f64)>, String> {
    use felip_obs::jsonread::JsonValue;
    if doc.get("t").and_then(|t| t.as_str()) != Some("metrics") {
        return Err("not a metrics snapshot (missing t=\"metrics\")".into());
    }
    let Some(JsonValue::Array(metrics)) = doc.get("metrics") else {
        return Err("metrics snapshot has no \"metrics\" array".into());
    };
    let mut rows = Vec::with_capacity(metrics.len());
    for m in metrics {
        let Some(name) = m.get("name").and_then(|n| n.as_str()) else {
            continue;
        };
        let unit = m
            .get("unit")
            .and_then(|u| u.as_str())
            .unwrap_or("")
            .to_string();
        match m.get("kind").and_then(|k| k.as_str()) {
            Some("histogram") => {
                let count = m.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
                rows.push((format!("{name}.count"), "samples".to_string(), count));
            }
            _ => {
                let value = m.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0);
                rows.push((name.to_string(), unit, value));
            }
        }
    }
    Ok(rows)
}

/// Renders the multi-node fan-in table: one column per `--addr`, one
/// cluster sum column, one row per metric seen on any node (all-zero rows
/// skipped, like the single-node table).
fn render_fanin_table(
    addrs: &[String],
    docs: &[felip_obs::jsonread::JsonValue],
) -> Result<String, String> {
    let per_node: Vec<Vec<(String, String, f64)>> =
        docs.iter().map(fanin_rows).collect::<Result<_, _>>()?;

    // Row order: first-seen across nodes, so shared metrics line up and
    // node-specific ones (ingest vs aggregator) append after.
    let mut order: Vec<(String, String)> = Vec::new();
    for rows in &per_node {
        for (name, unit, _) in rows {
            if !order.iter().any(|(n, _)| n == name) {
                order.push((name.clone(), unit.clone()));
            }
        }
    }

    let value_of = |rows: &[(String, String, f64)], name: &str| -> f64 {
        rows.iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
            .unwrap_or(0.0)
    };
    let fmt = |v: f64| -> String {
        if v == 0.0 {
            "-".to_string()
        } else if v.fract() == 0.0 && v.abs() < 9e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.3}")
        }
    };

    let width = addrs.iter().map(|a| a.len()).max().unwrap_or(0).max(12);
    let mut out = format!("cluster stat ({} nodes)\n", addrs.len());
    out.push_str(&format!("  {:<44}", "metric"));
    for addr in addrs {
        out.push_str(&format!(" {addr:>width$}"));
    }
    out.push_str(&format!(" {:>width$}\n", "cluster"));
    for (name, unit) in &order {
        let values: Vec<f64> = per_node.iter().map(|rows| value_of(rows, name)).collect();
        let sum: f64 = values.iter().sum();
        if sum == 0.0 {
            continue;
        }
        let label = if unit.is_empty() {
            name.clone()
        } else {
            format!("{name} ({unit})")
        };
        out.push_str(&format!("  {label:<44}"));
        for v in &values {
            out.push_str(&format!(" {:>width$}", fmt(*v)));
        }
        out.push_str(&format!(" {:>width$}\n", fmt(sum)));
    }
    Ok(out)
}

/// Parses the `--point 0=5,2=7` specification: one equality predicate per
/// `attr=value` pair.
fn parse_point(spec: &str) -> std::result::Result<Vec<Predicate>, String> {
    spec.split(',')
        .map(|part| {
            let (attr, value) = part
                .split_once('=')
                .ok_or_else(|| format!("point spec `{part}` is not `<attr>=<value>`"))?;
            let attr: u32 = attr
                .parse()
                .map_err(|_| format!("bad attribute index `{attr}` in point spec"))?;
            let value: u32 = value
                .parse()
                .map_err(|_| format!("bad value `{value}` in point spec"))?;
            Ok(Predicate::between(attr as usize, value, value))
        })
        .collect()
}

/// Parses the `--marginal 0=2..8,1=0|2|3` specification: `lo..hi` is an
/// inclusive range, `a|b|c` a category set, a bare value an equality.
fn parse_marginal(spec: &str) -> std::result::Result<Vec<Predicate>, String> {
    spec.split(',')
        .map(|part| {
            let (attr, sel) = part
                .split_once('=')
                .ok_or_else(|| format!("marginal spec `{part}` is not `<attr>=<selection>`"))?;
            let attr: usize = attr
                .parse()
                .map_err(|_| format!("bad attribute index `{attr}` in marginal spec"))?;
            if let Some((lo, hi)) = sel.split_once("..") {
                let lo: u32 = lo
                    .parse()
                    .map_err(|_| format!("bad range start `{lo}` in marginal spec"))?;
                let hi: u32 = hi
                    .parse()
                    .map_err(|_| format!("bad range end `{hi}` in marginal spec"))?;
                Ok(Predicate::between(attr, lo, hi))
            } else if sel.contains('|') {
                let values = sel
                    .split('|')
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| format!("bad category `{v}` in marginal spec"))
                    })
                    .collect::<std::result::Result<Vec<u32>, String>>()?;
                Ok(Predicate::in_set(attr, values))
            } else {
                let v: u32 = sel
                    .parse()
                    .map_err(|_| format!("bad value `{sel}` in marginal spec"))?;
                Ok(Predicate::between(attr, v, v))
            }
        })
        .collect()
}

/// `felip query` online mode: ask a running server (ingest or aggregator)
/// over the v5 `Query` wire verb.
///
/// Predicates come from `--point` (equality pairs) and/or `--marginal`
/// (ranges and category sets), joined as one conjunction. `--mode fresh`
/// forces a consistent cut per query; the default `cached` serves the
/// cached epoch when ingest has not moved. `--watch <secs>` re-asks on
/// one connection at that cadence — a live dashboard for one cell.
pub fn query_online(flags: &Flags) -> CmdResult {
    let plan = plan_from_flags(flags)?;
    let addr: String = flags.get_or("addr", "127.0.0.1:4417".to_string())?;
    let mode = match flags.get_or("mode", "cached".to_string())?.as_str() {
        "cached" => QueryMode::Cached,
        "fresh" => QueryMode::Fresh,
        other => return Err(format!("unknown query mode `{other}` (cached|fresh)").into()),
    };
    let format: String = flags.get_or("format", "table".to_string())?;
    if format != "table" && format != "json" {
        return Err(format!("unknown query format `{format}` (table|json)").into());
    }
    let watch_secs: u64 = flags.get_or("watch", 0u64)?;

    let mut predicates = Vec::new();
    if let Some(spec) = flags.get("point") {
        predicates.extend(parse_point(spec)?);
    }
    if let Some(spec) = flags.get("marginal") {
        predicates.extend(parse_marginal(spec)?);
    }
    if predicates.is_empty() {
        return Err("no predicates: pass --point and/or --marginal".into());
    }
    // An equality (or range) on a categorical attribute is a value set,
    // not a degenerate range — rewrite so `--point` works on both kinds.
    for p in &mut predicates {
        if p.attr < plan.schema().len() && plan.schema().attr(p.attr).kind.is_categorical() {
            if let felip_common::PredicateTarget::Range { lo, hi } = p.target {
                p.target = felip_common::PredicateTarget::Set((lo..=hi).collect());
            }
        }
    }
    // Validate locally before going on the wire, so a typo'd attribute
    // index fails with the schema error instead of a server reject.
    felip_common::Query::new(plan.schema(), predicates.clone())
        .map_err(|e| format!("invalid query: {e}"))?;

    let client_id = derive_seed(0xf31a9, std::process::id() as u64);
    let mut client = Client::connect_with(
        addr.as_str(),
        plan.schema_hash(),
        client_id,
        RetryPolicy::default(),
    )?;
    loop {
        let ans = client.query(predicates.clone(), mode)?;
        let staleness = ans.head_epoch - ans.epoch;
        if format == "json" {
            println!(
                "{}",
                serde_json::to_string_pretty(&serde_json::json!({
                    "command": "query",
                    "addr": addr,
                    "estimate": ans.answer,
                    "estimated_count": (ans.answer * ans.reports as f64).round() as u64,
                    "reports": ans.reports,
                    "epoch": ans.epoch,
                    "head_epoch": ans.head_epoch,
                    "staleness": staleness,
                }))?
            );
        } else {
            println!(
                "felip query @{addr}: estimate {:.6} (~{} of {} reports) epoch {} (head {}, staleness {})",
                ans.answer,
                (ans.answer * ans.reports as f64).round() as u64,
                ans.reports,
                ans.epoch,
                ans.head_epoch,
                staleness,
            );
        }
        if watch_secs == 0 {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs(watch_secs));
    }
}

/// One STAT round trip: connect, send the verb (plan hash 0 — STAT is
/// exempt from plan pinning), return the `StatReply` payload.
fn stat_once(
    addr: &str,
    mode: StatMode,
) -> std::result::Result<Vec<u8>, Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let frame = Frame {
        kind: FrameKind::Stat,
        plan_hash: 0,
        payload: encode_stat(mode),
    };
    write_frame(&mut stream, &frame)?;
    match read_frame(&mut stream)? {
        Some(reply) if reply.kind == FrameKind::StatReply => Ok(reply.payload),
        Some(reply) => Err(format!("unexpected {:?} reply to STAT", reply.kind).into()),
        None => Err("server closed the connection before replying to STAT".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    const PLAN: &[&str] = &["--attrs", "n:64,c:4", "--n", "2000", "--epsilon", "1.0"];

    fn with_plan(extra: &[&str]) -> Vec<String> {
        let mut v = argv(PLAN);
        v.extend(argv(extra));
        v
    }

    #[test]
    fn serve_then_load_then_verify_round_trip() {
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("felip-cli-serve-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&snap);

        // Bind on an ephemeral port directly (the CLI default port may be
        // taken on a shared test machine), then drive the same code paths.
        let flags = Flags::parse(&with_plan(&[])).unwrap();
        let plan = plan_from_flags(&flags).unwrap();
        let config = ServerConfig {
            snapshot_path: Some(snap.clone()),
            ..ServerConfig::default()
        };
        let server = Server::bind(Arc::clone(&plan), config).unwrap();
        let addr = server.local_addr().to_string();
        let shutdown = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run(None).unwrap());

        load(&with_plan(&[
            "--addr",
            &addr,
            "--users",
            "600",
            "--connections",
            "2",
            "--seed",
            "9",
        ]))
        .unwrap();

        // STAT answers any connection — no plan flags — with a metrics
        // document, and flight mode with a JSONL dump.
        let payload = stat_once(&addr, StatMode::Full).unwrap();
        let doc = felip_obs::jsonread::parse(&String::from_utf8(payload).unwrap()).unwrap();
        assert_eq!(doc.get("t").and_then(|v| v.as_str()), Some("metrics"));
        let flight = stat_once(&addr, StatMode::Flight).unwrap();
        let first = String::from_utf8(flight).unwrap();
        let header = felip_obs::jsonread::parse(first.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("t").and_then(|v| v.as_str()), Some("flight"));

        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        let run = t.join().unwrap();
        assert_eq!(run.aggregator.reports_ingested(), 600);

        verify(&with_plan(&[
            "--snapshot",
            snap.to_str().unwrap(),
            "--users",
            "600",
            "--seed",
            "9",
        ]))
        .unwrap();

        // A verifier expecting a different stream must fail.
        let err = verify(&with_plan(&[
            "--snapshot",
            snap.to_str().unwrap(),
            "--users",
            "601",
            "--seed",
            "9",
        ]));
        assert!(err.is_err());
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn online_query_round_trip() {
        let flags = Flags::parse(&with_plan(&[])).unwrap();
        let plan = plan_from_flags(&flags).unwrap();
        let server = Server::bind(Arc::clone(&plan), ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let shutdown = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run(None).unwrap());

        load(&with_plan(&[
            "--addr", &addr, "--users", "300", "--seed", "3",
        ]))
        .unwrap();

        // Point + marginal predicates, both output formats, both modes.
        crate::commands::query(&with_plan(&[
            "--addr",
            &addr,
            "--point",
            "1=2",
            "--marginal",
            "0=8..40",
        ]))
        .unwrap();
        crate::commands::query(&with_plan(&[
            "--addr",
            &addr,
            "--marginal",
            "0=8..40,1=0|2",
            "--format",
            "json",
            "--mode",
            "fresh",
        ]))
        .unwrap();

        // Bad specs fail locally, before any wire traffic.
        assert!(crate::commands::query(&with_plan(&["--addr", &addr])).is_err());
        assert!(crate::commands::query(&with_plan(&["--addr", &addr, "--point", "9=1"])).is_err());
        assert!(crate::commands::query(&with_plan(&["--addr", &addr, "--point", "x"])).is_err());

        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        t.join().unwrap();
    }

    #[test]
    fn point_and_marginal_specs_parse() {
        assert_eq!(
            parse_point("0=5,2=7").unwrap(),
            vec![Predicate::between(0, 5, 5), Predicate::between(2, 7, 7)]
        );
        assert_eq!(
            parse_marginal("0=2..8,1=0|2|3,2=4").unwrap(),
            vec![
                Predicate::between(0, 2, 8),
                Predicate::in_set(1, vec![0, 2, 3]),
                Predicate::between(2, 4, 4),
            ]
        );
        assert!(parse_point("=5").is_err());
        assert!(parse_point("a=5").is_err());
        assert!(parse_marginal("0=2..").is_err());
        assert!(parse_marginal("0=a|b").is_err());
    }

    #[test]
    fn fanin_table_sums_nodes_and_keeps_columns_aligned() {
        let node_a = felip_obs::jsonread::parse(
            r#"{"t":"metrics","kind":"full","taken_ns":1,"metrics":[
                {"name":"server.reports.accepted","kind":"counter","unit":"reports","value":120},
                {"name":"cluster.delta.sent","kind":"counter","unit":"deltas","value":4},
                {"name":"ingest.batch","kind":"histogram","unit":"ns","count":7,"sum":700,
                 "min":1,"max":100,"mean":100.0,"p50":90.0,"p90":99.0,"p99":100.0,"p999":100.0}
            ]}"#,
        )
        .unwrap();
        let node_b = felip_obs::jsonread::parse(
            r#"{"t":"metrics","kind":"full","taken_ns":2,"metrics":[
                {"name":"server.reports.accepted","kind":"counter","unit":"reports","value":80},
                {"name":"cluster.delta.applied","kind":"counter","unit":"deltas","value":9},
                {"name":"idle.gauge","kind":"gauge","unit":"conns","value":0}
            ]}"#,
        )
        .unwrap();
        let addrs = vec!["127.0.0.1:4417".to_string(), "127.0.0.1:4490".to_string()];
        let table = render_fanin_table(&addrs, &[node_a, node_b]).unwrap();

        // Header: one column per node plus the cluster sum.
        assert!(table.contains("cluster stat (2 nodes)"), "{table}");
        assert!(table.contains("127.0.0.1:4417"), "{table}");
        assert!(table.contains("127.0.0.1:4490"), "{table}");

        // Shared metric sums across nodes; node-specific rows show a dash
        // for absent nodes; all-zero rows are dropped.
        let accepted = table
            .lines()
            .find(|l| l.contains("server.reports.accepted"))
            .unwrap();
        assert!(accepted.contains("120"), "{accepted}");
        assert!(accepted.contains("80"), "{accepted}");
        assert!(accepted.contains("200"), "{accepted}");
        let applied = table
            .lines()
            .find(|l| l.contains("cluster.delta.applied"))
            .unwrap();
        assert!(applied.contains('-'), "{applied}");
        assert!(applied.contains('9'), "{applied}");
        // Histograms fan in by sample count.
        assert!(table.contains("ingest.batch.count"), "{table}");
        assert!(!table.contains("idle.gauge"), "{table}");
    }

    #[test]
    fn stat_rejects_flight_fan_in() {
        let err = stat(&argv(&[
            "--addr",
            "127.0.0.1:1",
            "--addr",
            "127.0.0.1:2",
            "--mode",
            "flight",
        ]));
        assert!(err.is_err());
    }
}
