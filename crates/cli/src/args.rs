//! Flag parsing for the `felip` binary (no external CLI dependency).

use felip_common::{Attribute, Error, Result, Schema};

/// Top-level usage text.
pub const USAGE: &str = "\
felip — locally differentially private multidimensional frequency estimation

USAGE:
    felip plan    --attrs <spec> --n <users> --epsilon <eps> [--strategy oug|ohg] [--selectivity <r>]
    felip run     --dataset <uniform|normal|ipums|loan> --n <users> --epsilon <eps>
                  [--strategy oug|ohg] [--lambda <dim>] [--queries <count>] [--selectivity <s>] [--seed <seed>]
    felip compare --dataset <kind> --n <users> --epsilon <eps> [--lambda <dim>] [--queries <count>] [--seed <seed>]
    felip query   --csv <path> --columns <colspec> --epsilon <eps> --where <query>
                  [--strategy oug|ohg] [--seed <seed>]
    felip query   --attrs <spec> --n <users> --epsilon <eps> [--addr <host:port>]
                  [--point <attr>=<v>,...] [--marginal <attr>=<lo>..<hi>|<a>|<b>,...]
                  [--mode cached|fresh] [--watch <secs>] [--format table|json]
                  [--plan-seed <seed>]
    felip serve   --attrs <spec> --n <users> --epsilon <eps> [--addr <host:port>]
                  [--workers <w>] [--queue <batches>] [--snapshot <path>]
                  [--snapshot-every-ms <ms>] [--resume <path>] [--plan-seed <seed>]
                  [--read-timeout-ms <ms>] [--idle-timeout-ms <ms>]
                  [--metrics-out <path>] [--metrics-every-ms <ms>] [--flight-out <path>]
                  [--upstream <host:port>] [--node-id <id>] [--delta-every-ms <ms>]
    felip aggregate --attrs <spec> --n <users> --epsilon <eps> [--addr <host:port>]
                  [--snapshot <path>] [--state <path>] [--resume <path>]
                  [--persist-every-ms <ms>] [--plan-seed <seed>]
    felip estimate --attrs <spec> --n <users> --epsilon <eps> --snapshot <path>
                  [--plan-seed <seed>] [--grid <index>]
    felip stat    [--addr <host:port>]... [--mode full|delta|flight]
                  [--format table|json] [--watch <secs>]
    felip load    --attrs <spec> --n <users> --epsilon <eps> --users <count>
                  [--addr <host:port>] [--from <user>] [--connections <c>]
                  [--batch <reports>] [--seed <seed>] [--plan-seed <seed>]
    felip verify  --attrs <spec> --n <users> --epsilon <eps> --snapshot <path>
                  --users <count> [--from <user>] [--seed <seed>] [--plan-seed <seed>]

SERVE / LOAD / VERIFY:
    `serve` ingests perturbed reports over TCP until SIGINT/SIGTERM, then
    drains its queues, merges worker shards, writes a final snapshot (when
    --snapshot is set) and exits 0. `--resume <path>` restores counts from a
    prior snapshot before accepting connections. `load` streams the
    deterministic loadgen report stream for users [--from, --from + --users).
    `verify` restores a snapshot and checks it is bit-identical to an
    offline collection of that same stream. All three must be given the same
    --attrs/--n/--epsilon/--plan-seed so the plan hash matches.

CLUSTER:
    `serve --upstream <addr>` turns the server into an ingest node: each
    periodic consistent cut is shipped upstream as an epoch-numbered count
    delta (cadence --delta-every-ms, default 200). `--node-id` is the
    node's stable cluster identity. `aggregate` runs the aggregator tier:
    it merges node deltas into one cluster-wide count vector, persists the
    per-node FCLU container (--state) and a plain merged FSNP snapshot
    (--snapshot) that `felip estimate` and `felip verify` consume, and
    resumes from a prior container via --resume. `estimate` restores a
    (merged) snapshot and prints its frequency estimates.

STAT:
    `stat` polls a running server's admin verb and renders its live metrics
    (counters, gauges, per-stage latency quantiles). `--mode delta` shows
    the change since the previous delta poll; `--mode flight` dumps the
    in-memory flight recorder (the last ~1k protocol events) as JSONL.
    Repeating --addr fans in over several nodes (ingest and aggregator
    alike) and renders one table with a per-node column each plus a
    cluster sum row per metric. `--watch <secs>` re-polls at that cadence
    until interrupted. `serve`'s
    `--metrics-out <path>` appends one delta snapshot per second (tunable
    with --metrics-every-ms) as a JSONL time-series, and `--flight-out
    <path>` arms the postmortem dump written on panic, SIGTERM shutdown,
    or snapshot quarantine.

ATTRS SPEC:
    comma-separated list of `n:<domain>` (numerical) and `c:<domain>` (categorical),
    e.g. --attrs n:256,n:64,c:8,c:2

COLSPEC (for `query`):
    comma-separated `<csv column>:n:<bins>` or `<csv column>:c:<max categories>`,
    e.g. --columns age:n:16,education:c:8,income:n:32

WHERE (for `query`):
    a conjunction over the encoded domains, e.g.
    --where \"age BETWEEN 4 AND 11 AND education IN (0, 2)\"

ONLINE QUERY (no --csv):
    `query --attrs ...` connects to a running `felip serve` (or `felip
    aggregate`) and answers over the v5 Query wire verb from the server's
    incremental estimation engine. `--point 0=5,2=7` adds one equality per
    pair; `--marginal 0=2..8,1=0|2` adds inclusive ranges and category
    sets. The reply reports the answer's ingest epoch, the head epoch, and
    their difference (staleness). `--mode fresh` forces a consistent cut
    per query; `--watch <secs>` re-asks on one connection at that cadence.

GLOBAL FLAGS (any subcommand):
    --trace-out <path>   record a structured trace of the run (stage spans,
                         per-grid AFO choices, pipeline metrics) and write it
                         as JSON lines to <path>
    --metrics            print a stage-timing and metric summary table to
                         stderr when the command finishes
";

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parses `--key value` pairs; rejects stray positionals.
    pub fn parse(args: &[String]) -> Result<Flags> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(Error::InvalidParameter(format!(
                    "unexpected argument `{a}`"
                )));
            };
            let value = it
                .next()
                .ok_or_else(|| Error::InvalidParameter(format!("missing value for --{key}")))?;
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeatable flag, in argv order (`felip stat
    /// --addr a --addr b` fans in over both).
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// A required, parsed flag.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let raw = self
            .get(key)
            .ok_or_else(|| Error::InvalidParameter(format!("missing required flag --{key}")))?;
        raw.parse()
            .map_err(|_| Error::InvalidParameter(format!("cannot parse --{key} value `{raw}`")))
    }

    /// An optional, parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                Error::InvalidParameter(format!("cannot parse --{key} value `{raw}`"))
            }),
        }
    }
}

/// Parses the `--attrs n:256,c:8,...` schema specification.
pub fn parse_schema(spec: &str) -> Result<Schema> {
    let mut attrs = Vec::new();
    for (i, part) in spec.split(',').enumerate() {
        let (kind, domain) = part.split_once(':').ok_or_else(|| {
            Error::InvalidParameter(format!("attribute spec `{part}` is not `n:<d>` or `c:<d>`"))
        })?;
        let d: u32 = domain.parse().map_err(|_| {
            Error::InvalidParameter(format!("bad domain `{domain}` in attribute spec"))
        })?;
        let attr = match kind {
            "n" => Attribute::numerical(format!("a{i}"), d),
            "c" => Attribute::categorical(format!("a{i}"), d),
            other => {
                return Err(Error::InvalidParameter(format!(
                    "attribute kind `{other}` must be `n` or `c`"
                )))
            }
        };
        attrs.push(attr);
    }
    Schema::new(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&argv(&["--n", "100", "--epsilon", "1.5"])).unwrap();
        assert_eq!(f.require::<usize>("n").unwrap(), 100);
        assert_eq!(f.require::<f64>("epsilon").unwrap(), 1.5);
        assert_eq!(f.get_or::<usize>("lambda", 2).unwrap(), 2);
    }

    #[test]
    fn last_value_wins() {
        let f = Flags::parse(&argv(&["--n", "1", "--n", "2"])).unwrap();
        assert_eq!(f.require::<usize>("n").unwrap(), 2);
    }

    #[test]
    fn rejects_positionals_and_missing_values() {
        assert!(Flags::parse(&argv(&["run"])).is_err());
        assert!(Flags::parse(&argv(&["--n"])).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let f = Flags::parse(&argv(&[])).unwrap();
        assert!(f.require::<usize>("n").is_err());
    }

    #[test]
    fn schema_spec_round_trip() {
        let s = parse_schema("n:256,c:8,n:64").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.domain(0), 256);
        assert!(s.attr(1).kind.is_categorical());
        assert!(s.attr(2).kind.is_numerical());
    }

    #[test]
    fn schema_spec_errors() {
        assert!(parse_schema("x:4").is_err());
        assert!(parse_schema("n").is_err());
        assert!(parse_schema("n:abc").is_err());
        assert!(parse_schema("n:0").is_err());
    }
}
