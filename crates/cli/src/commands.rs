//! The `plan`, `run` and `compare` subcommands.

use felip::{simulate, CollectionPlan, FelipConfig, SelectivityPrior, Strategy};
use felip_baselines::hio::run_hio;
use felip_common::metrics::mae;
use felip_common::{Dataset, Error, Query, Result};
use felip_datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};

use crate::args::{parse_schema, Flags};

fn parse_strategy(s: &str) -> Result<Strategy> {
    match s {
        "oug" | "OUG" => Ok(Strategy::Oug),
        "ohg" | "OHG" => Ok(Strategy::Ohg),
        other => Err(Error::InvalidParameter(format!(
            "unknown strategy `{other}`"
        ))),
    }
}

fn parse_dataset(s: &str) -> Result<DatasetKind> {
    match s {
        "uniform" => Ok(DatasetKind::Uniform),
        "normal" => Ok(DatasetKind::Normal),
        "ipums" => Ok(DatasetKind::IpumsLike),
        "loan" => Ok(DatasetKind::LoanLike),
        other => Err(Error::InvalidParameter(format!(
            "unknown dataset `{other}`"
        ))),
    }
}

fn boxed(e: Error) -> Box<dyn std::error::Error> {
    Box::new(e)
}

/// `felip plan`: print the collection plan for a schema.
pub fn plan(args: &[String]) -> std::result::Result<(), Box<dyn std::error::Error>> {
    let flags = Flags::parse(args).map_err(boxed)?;
    let schema =
        parse_schema(flags.require::<String>("attrs").map_err(boxed)?.as_str()).map_err(boxed)?;
    let n: usize = flags.require("n").map_err(boxed)?;
    let epsilon: f64 = flags.require("epsilon").map_err(boxed)?;
    let strategy = parse_strategy(&flags.get_or("strategy", "ohg".to_string()).map_err(boxed)?)
        .map_err(boxed)?;
    let selectivity: f64 = flags.get_or("selectivity", 0.5).map_err(boxed)?;

    let config = FelipConfig::new(epsilon)
        .with_strategy(strategy)
        .with_selectivity(SelectivityPrior::Uniform(selectivity));
    let plan = CollectionPlan::build(&schema, n, &config, 0).map_err(boxed)?;

    println!(
        "plan: strategy={strategy} epsilon={epsilon} n={n} groups={} (~{} users each)",
        plan.num_groups(),
        n / plan.num_groups()
    );
    for (i, g) in plan.grids().iter().enumerate() {
        let dims: Vec<String> = g
            .axes()
            .iter()
            .map(|a| {
                format!(
                    "{}[{} cells/{} vals]",
                    schema.attr(a.attr).name,
                    a.cells(),
                    schema.domain(a.attr)
                )
            })
            .collect();
        println!(
            "  group {i:>2}: {} {} via {} ({} cells)",
            g.id(),
            dims.join(" × "),
            g.fo,
            g.num_cells()
        );
    }
    Ok(())
}

struct RunSetup {
    data: Dataset,
    queries: Vec<Query>,
    truth: Vec<f64>,
    epsilon: f64,
    seed: u64,
}

fn setup(flags: &Flags) -> Result<RunSetup> {
    let kind = parse_dataset(&flags.require::<String>("dataset")?)?;
    let n: usize = flags.require("n")?;
    let epsilon: f64 = flags.require("epsilon")?;
    let lambda: usize = flags.get_or("lambda", 2)?;
    let count: usize = flags.get_or("queries", 10)?;
    let selectivity: f64 = flags.get_or("selectivity", 0.5)?;
    let seed: u64 = flags.get_or("seed", 42)?;

    let data = kind.generate(GenOptions {
        n,
        seed,
        ..GenOptions::paper_default()
    });
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda,
            selectivity,
            count,
            seed,
            range_only: false,
        },
    )?;
    let truth = queries.iter().map(|q| q.true_answer(&data)).collect();
    Ok(RunSetup {
        data,
        queries,
        truth,
        epsilon,
        seed,
    })
}

/// `felip run`: one FELIP collection + workload, JSON report.
pub fn run(args: &[String]) -> std::result::Result<(), Box<dyn std::error::Error>> {
    let flags = Flags::parse(args).map_err(boxed)?;
    let strategy = parse_strategy(&flags.get_or("strategy", "ohg".to_string()).map_err(boxed)?)
        .map_err(boxed)?;
    let selectivity: f64 = flags.get_or("selectivity", 0.5).map_err(boxed)?;
    let s = setup(&flags).map_err(boxed)?;

    let config = FelipConfig::new(s.epsilon)
        .with_strategy(strategy)
        .with_selectivity(SelectivityPrior::Uniform(selectivity));
    let est = simulate(&s.data, &config, s.seed).map_err(boxed)?;
    let answers = est.answer_all(&s.queries).map_err(boxed)?;

    let per_query: Vec<serde_json::Value> = s
        .queries
        .iter()
        .zip(&answers)
        .zip(&s.truth)
        .map(|((q, a), t)| {
            serde_json::json!({
                "attrs": q.attrs(),
                "estimate": a,
                "truth": t,
                "abs_error": (a - t).abs(),
            })
        })
        .collect();
    let report = serde_json::json!({
        "strategy": strategy.to_string(),
        "epsilon": s.epsilon,
        "n": s.data.len(),
        "queries": per_query,
        "mae": mae(&answers, &s.truth),
    });
    println!("{}", serde_json::to_string_pretty(&report)?);
    Ok(())
}

/// `felip compare`: OUG vs OHG vs HIO on one dataset/workload.
pub fn compare(args: &[String]) -> std::result::Result<(), Box<dyn std::error::Error>> {
    let flags = Flags::parse(args).map_err(boxed)?;
    let s = setup(&flags).map_err(boxed)?;

    let mut rows = serde_json::Map::new();
    for strategy in [Strategy::Oug, Strategy::Ohg] {
        let config = FelipConfig::new(s.epsilon).with_strategy(strategy);
        let est = simulate(&s.data, &config, s.seed).map_err(boxed)?;
        let answers = est.answer_all(&s.queries).map_err(boxed)?;
        rows.insert(
            strategy.to_string(),
            serde_json::json!(mae(&answers, &s.truth)),
        );
    }
    let hio = run_hio(&s.data, s.epsilon, s.seed).map_err(boxed)?;
    let answers = hio.answer_all(&s.queries).map_err(boxed)?;
    rows.insert("HIO".into(), serde_json::json!(mae(&answers, &s.truth)));

    let report = serde_json::json!({
        "epsilon": s.epsilon,
        "n": s.data.len(),
        "query_count": s.queries.len(),
        "mae": rows,
    });
    println!("{}", serde_json::to_string_pretty(&report)?);
    Ok(())
}

/// Re-exported for integration tests of the CLI internals.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("oug").unwrap(), Strategy::Oug);
        assert_eq!(parse_strategy("OHG").unwrap(), Strategy::Ohg);
        assert!(parse_strategy("hio").is_err());
    }

    #[test]
    fn dataset_parsing() {
        assert_eq!(parse_dataset("ipums").unwrap(), DatasetKind::IpumsLike);
        assert!(parse_dataset("census").is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        let args: Vec<String> = [
            "--dataset",
            "uniform",
            "--n",
            "5000",
            "--epsilon",
            "1.0",
            "--queries",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn plan_command_end_to_end() {
        let args: Vec<String> = [
            "--attrs",
            "n:64,c:4,n:32",
            "--n",
            "10000",
            "--epsilon",
            "1.0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        plan(&args).unwrap();
    }

    #[test]
    fn run_rejects_missing_flags() {
        assert!(run(&["--dataset".to_string(), "uniform".to_string()]).is_err());
    }
}

/// Parses the `--columns age:n:16,edu:c:8` specification for `query`.
fn parse_columns(spec: &str) -> Result<Vec<felip_datasets::ColumnSpec>> {
    spec.split(',')
        .map(|part| {
            let bits: Vec<&str> = part.split(':').collect();
            let [name, kind, d] = bits.as_slice() else {
                return Err(Error::InvalidParameter(format!(
                    "column spec `{part}` is not `<name>:n:<bins>` or `<name>:c:<cats>`"
                )));
            };
            let d: u32 = d.parse().map_err(|_| {
                Error::InvalidParameter(format!("bad domain `{d}` in column spec `{part}`"))
            })?;
            match *kind {
                "n" => Ok(felip_datasets::ColumnSpec::Numerical {
                    name: name.to_string(),
                    bins: d,
                    range: None,
                }),
                "c" => Ok(felip_datasets::ColumnSpec::Categorical {
                    name: name.to_string(),
                    max_categories: d,
                }),
                other => Err(Error::InvalidParameter(format!(
                    "column kind `{other}` must be `n` or `c`"
                ))),
            }
        })
        .collect()
}

/// `felip query`: two modes sharing one verb.
///
/// * **Offline** (`--csv`): load a CSV, collect it once under ε-LDP,
///   answer a WHERE query against the encoded domains.
/// * **Online** (no `--csv`): connect to a running `felip serve` (or
///   `felip aggregate`) and answer via the v5 `Query` wire verb —
///   `--point`/`--marginal` predicates, `--watch` re-polling,
///   `--format table|json`.
pub fn query(args: &[String]) -> std::result::Result<(), Box<dyn std::error::Error>> {
    let flags = Flags::parse(args).map_err(boxed)?;
    if flags.get("csv").is_none() {
        return crate::serve_cmd::query_online(&flags);
    }
    let path: String = flags.require("csv").map_err(boxed)?;
    let columns =
        parse_columns(&flags.require::<String>("columns").map_err(boxed)?).map_err(boxed)?;
    let epsilon: f64 = flags.require("epsilon").map_err(boxed)?;
    let where_clause: String = flags.require("where").map_err(boxed)?;
    let strategy = parse_strategy(&flags.get_or("strategy", "ohg".to_string()).map_err(boxed)?)
        .map_err(boxed)?;
    let seed: u64 = flags.get_or("seed", 42).map_err(boxed)?;

    let csv_text = std::fs::read_to_string(&path)?;
    let (data, _book) = felip_datasets::load_csv_str(&csv_text, &columns).map_err(boxed)?;
    let q = felip_common::parse::parse_query(data.schema(), &where_clause).map_err(boxed)?;

    let config = FelipConfig::new(epsilon).with_strategy(strategy);
    let est = simulate(&data, &config, seed).map_err(boxed)?;
    let answer = est.answer(&q).map_err(boxed)?;
    let truth = q.true_answer(&data);

    let report = serde_json::json!({
        "csv": path,
        "n": data.len(),
        "epsilon": epsilon,
        "strategy": strategy.to_string(),
        "where": where_clause,
        "estimate": answer,
        "estimated_count": (answer * data.len() as f64).round() as u64,
        "true_answer": truth,
        "abs_error": (answer - truth).abs(),
    });
    println!("{}", serde_json::to_string_pretty(&report)?);
    Ok(())
}

#[cfg(test)]
mod query_tests {
    use super::*;

    #[test]
    fn parse_columns_spec() {
        let cols = parse_columns("age:n:16,edu:c:8").unwrap();
        assert_eq!(cols.len(), 2);
        assert!(matches!(
            cols[0],
            felip_datasets::ColumnSpec::Numerical { bins: 16, .. }
        ));
        assert!(matches!(
            cols[1],
            felip_datasets::ColumnSpec::Categorical {
                max_categories: 8,
                ..
            }
        ));
        assert!(parse_columns("age:n").is_err());
        assert!(parse_columns("age:x:4").is_err());
        assert!(parse_columns("age:n:zero").is_err());
    }

    #[test]
    fn query_command_end_to_end() {
        // Write a small CSV, then run the full pipeline against it.
        let dir = std::env::temp_dir().join(format!("felip-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("people.csv");
        let mut csv = String::from("age,edu\n");
        for i in 0..4000 {
            csv.push_str(&format!(
                "{},{}\n",
                20 + i % 50,
                ["HS", "BSc", "MSc"][i % 3]
            ));
        }
        std::fs::write(&path, csv).unwrap();
        let args: Vec<String> = [
            "--csv",
            path.to_str().unwrap(),
            "--columns",
            "age:n:10,edu:c:4",
            "--epsilon",
            "1.0",
            "--where",
            "age BETWEEN 2 AND 7 AND edu IN (0, 1)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        query(&args).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }
}
