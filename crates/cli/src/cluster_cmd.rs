//! The cluster-tier subcommands (DESIGN.md §16): `felip aggregate` runs
//! the delta-merging aggregator node, and `felip estimate` renders the
//! frequency estimates held in a (typically merged) FSNP snapshot.
//!
//! Both share the plan flags with `serve`/`load`/`verify`: the aggregator
//! pins the same `schema_hash()` the ingest nodes stamp on their delta
//! frames, and `estimate` must rebuild the identical plan to restore the
//! snapshot at all.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use felip::aggregator::OracleSet;
use felip_cluster::{AggregatorConfig, AggregatorServer};
use felip_obs::diag;
use felip_server::{signal, Snapshot};

use crate::args::Flags;
use crate::serve_cmd::plan_from_flags;

type CmdResult = std::result::Result<(), Box<dyn std::error::Error>>;

/// `felip aggregate`: merge ingest-node deltas until SIGINT/SIGTERM, then
/// persist and report the cluster-wide result.
pub fn aggregate(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let plan = plan_from_flags(&flags)?;
    let config = AggregatorConfig {
        addr: flags.get_or("addr", "127.0.0.1:4490".to_string())?,
        snapshot_path: flags.get("snapshot").map(PathBuf::from),
        state_path: flags.get("state").map(PathBuf::from),
        resume: flags.get("resume").map(PathBuf::from),
        persist_every: Duration::from_millis(flags.get_or("persist-every-ms", 500u64)?.max(1)),
        ..AggregatorConfig::default()
    };

    // Like `serve`, the aggregator's STAT verb reads the live recorder,
    // so telemetry is always on.
    felip_obs::enable();
    let server = AggregatorServer::bind(Arc::clone(&plan), config)?;
    let shutdown = signal::install_shutdown_handler();
    diag::line(&format!(
        "felip aggregate: listening on {} (plan hash {:016x}); SIGINT/SIGTERM persists and exits",
        server.local_addr(),
        plan.schema_hash()
    ));
    let run = server.run(Some(shutdown))?;

    let nodes: Vec<serde_json::Value> = run
        .nodes
        .iter()
        .map(|&(id, epoch, reports)| {
            serde_json::json!({ "node": id, "epoch": epoch, "reports": reports })
        })
        .collect();
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "command": "aggregate",
            "reports_merged": run.merged.reports_ingested(),
            "counts_digest": format!("{:016x}", run.merged.counts_digest()),
            "nodes": nodes,
            "connections": run.stats.connections,
            "deltas_applied": run.stats.deltas_applied,
            "deltas_duplicate": run.stats.deltas_duplicate,
            "deltas_resync": run.stats.deltas_resync,
            "frames_rejected": run.stats.frames_rejected,
        }))?
    );
    Ok(())
}

/// `felip estimate`: restore a snapshot (the aggregator's merged FSNP, or
/// any single-node one) and print its post-processed frequency estimates.
pub fn estimate(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let plan = plan_from_flags(&flags)?;
    let snapshot_path = PathBuf::from(flags.require::<String>("snapshot")?);
    let only_grid: Option<usize> = match flags.get("grid") {
        None => None,
        Some(_) => Some(flags.require("grid")?),
    };

    let snapshot = Snapshot::read(&snapshot_path)?;
    let reports = snapshot.reports_ingested();
    let oracles = Arc::new(OracleSet::build(&plan));
    let restored = snapshot.restore(Arc::clone(&plan), oracles)?;
    let digest = restored.counts_digest();
    let estimator = restored.estimate()?;

    let grids: Vec<serde_json::Value> = estimator
        .grids()
        .iter()
        .enumerate()
        .filter(|(i, _)| only_grid.is_none_or(|g| g == *i))
        .map(|(i, grid)| {
            serde_json::json!({
                "grid": i,
                "cells": grid.freqs().len(),
                "freqs": grid.freqs(),
            })
        })
        .collect();
    if grids.is_empty() {
        return Err(format!(
            "--grid {} is out of range ({} grids in plan)",
            only_grid.unwrap_or(0),
            estimator.grids().len()
        )
        .into());
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "command": "estimate",
            "snapshot": snapshot_path.display().to_string(),
            "reports": reports,
            "counts_digest": format!("{digest:016x}"),
            "grids": grids,
        }))?
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_cluster::{StreamerConfig, UpstreamStreamer};
    use felip_server::{CutState, Server, ServerConfig};
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    const PLAN: &[&str] = &["--attrs", "n:64,c:4", "--n", "2000", "--epsilon", "1.0"];

    fn with_plan(extra: &[&str]) -> Vec<String> {
        let mut v = argv(PLAN);
        v.extend(argv(extra));
        v
    }

    /// The full CLI-surface cluster path: an aggregator with a merged
    /// snapshot, two ingest nodes streaming deltas, `felip load` driving
    /// each, then `verify` and `estimate` consuming the merged FSNP.
    #[test]
    fn cluster_load_verify_estimate_round_trip() {
        let dir = std::env::temp_dir().join(format!("felip-cli-cluster-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let merged_snap = dir.join("merged.snap");

        let flags = Flags::parse(&with_plan(&[])).unwrap();
        let plan = plan_from_flags(&flags).unwrap();
        let agg = AggregatorServer::bind(
            Arc::clone(&plan),
            AggregatorConfig {
                snapshot_path: Some(merged_snap.clone()),
                persist_every: Duration::from_millis(50),
                ..AggregatorConfig::default()
            },
        )
        .unwrap();
        let upstream = agg.local_addr();
        let agg_stop = agg.shutdown_handle();
        let agg_thread = std::thread::spawn(move || agg.run(None).unwrap());

        // Two ingest nodes, 200 users each, split deterministically.
        for node in 0..2u64 {
            let streamer = UpstreamStreamer::start(StreamerConfig {
                upstream: upstream.to_string(),
                node_id: node + 1,
                plan_hash: plan.schema_hash(),
                ..StreamerConfig::default()
            });
            let config = ServerConfig {
                cut_hook: Some(streamer.hook()),
                cut_every: Duration::from_millis(10),
                ..ServerConfig::default()
            };
            let server = Server::bind(Arc::clone(&plan), config).unwrap();
            let addr = server.local_addr().to_string();
            let stop = server.shutdown_handle();
            let t = std::thread::spawn(move || server.run(None).unwrap());
            crate::serve_cmd::load(&with_plan(&[
                "--addr",
                &addr,
                "--users",
                "200",
                "--from",
                &(node * 200).to_string(),
                "--connections",
                "1",
                "--seed",
                "21",
            ]))
            .unwrap();
            stop.store(true, Ordering::SeqCst);
            let run = t.join().unwrap();
            let report = streamer
                .finish(
                    CutState {
                        counts: run.aggregator.counts().to_vec(),
                        group_sizes: run.aggregator.group_sizes().to_vec(),
                        reports: run.aggregator.reports_ingested() as u64,
                    },
                    Duration::from_secs(30),
                )
                .unwrap();
            assert_eq!(report.flushed_reports, 200);
        }

        agg_stop.store(true, Ordering::SeqCst);
        let run = agg_thread.join().unwrap();
        assert_eq!(run.merged.reports_ingested(), 400);
        assert!(merged_snap.exists());

        // The merged snapshot verifies bit-identically against the
        // single-node offline collection of the union stream...
        crate::serve_cmd::verify(&with_plan(&[
            "--snapshot",
            merged_snap.to_str().unwrap(),
            "--users",
            "400",
            "--seed",
            "21",
        ]))
        .unwrap();

        // ...and `felip estimate` serves estimates straight from it.
        estimate(&with_plan(&["--snapshot", merged_snap.to_str().unwrap()])).unwrap();
        estimate(&with_plan(&[
            "--snapshot",
            merged_snap.to_str().unwrap(),
            "--grid",
            "0",
        ]))
        .unwrap();
        let out_of_range = estimate(&with_plan(&[
            "--snapshot",
            merged_snap.to_str().unwrap(),
            "--grid",
            "999",
        ]));
        assert!(out_of_range.is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
