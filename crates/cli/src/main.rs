//! `felip` — end-to-end command line for the FELIP reproduction.
//!
//! ```text
//! felip plan    --attrs n:256,n:256,c:8 --n 100000 --epsilon 1.0 [--strategy ohg]
//! felip run     --dataset ipums --n 100000 --epsilon 1.0 --lambda 2 --queries 10
//! felip compare --dataset normal --n 100000 --epsilon 1.0 --lambda 3
//! felip query   --csv data.csv --columns age:n:16,edu:c:8 --epsilon 1.0 \
//!               --where "age BETWEEN 4 AND 11 AND edu IN (0, 1)"
//! ```
//!
//! * `plan` prints the collection plan FELIP would use for a schema: every
//!   grid, its size, and the protocol the adaptive oracle picked — useful to
//!   understand what the optimiser does before any data is collected.
//! * `run` generates a synthetic dataset, runs one FELIP collection under
//!   ε-LDP, answers a random query workload, and reports per-query estimates
//!   plus the MAE, as JSON.
//! * `compare` runs OUG, OHG and HIO on the same dataset/workload and
//!   reports their MAEs side by side.
//! * `query` loads a real CSV file, discretises it, collects it once under
//!   ε-LDP, and answers a SQL-`WHERE`-style query — the full adoption path.

use std::process::ExitCode;

use felip_obs::diag;

mod args;
mod cluster_cmd;
mod commands;
mod serve_cmd;

/// Global observability flags, valid on every subcommand. They are
/// stripped from argv *before* dispatch so the subcommands' strict
/// `--key value` flag grammar (which has no boolean flags) is unaffected.
struct ObsFlags {
    /// Write the JSONL trace here after the command finishes.
    trace_out: Option<String>,
    /// Print the metric/stage summary table to stderr at the end.
    metrics: bool,
}

fn extract_obs_flags(argv: &mut Vec<String>) -> Result<ObsFlags, String> {
    let mut trace_out = None;
    let mut metrics = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace-out" => {
                if i + 1 >= argv.len() {
                    return Err("missing value for --trace-out".into());
                }
                trace_out = Some(argv.remove(i + 1));
                argv.remove(i);
            }
            "--metrics" => {
                metrics = true;
                argv.remove(i);
            }
            _ => i += 1,
        }
    }
    Ok(ObsFlags { trace_out, metrics })
}

/// Writes the trace file and/or summary table the user asked for.
fn finish_obs(obs: &ObsFlags) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(path) = &obs.trace_out {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        felip_obs::global().export_jsonl(&mut f)?;
        f.flush()?;
    }
    if obs.metrics {
        diag::line(&felip_obs::global().summary_table());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let obs = match extract_obs_flags(&mut argv) {
        Ok(o) => o,
        Err(msg) => {
            diag::error(&msg);
            return ExitCode::from(2);
        }
    };
    if obs.trace_out.is_some() || obs.metrics {
        felip_obs::enable();
    }
    let Some((cmd, rest)) = argv.split_first() else {
        diag::line(args::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "plan" => commands::plan(rest),
        "run" => commands::run(rest),
        "compare" => commands::compare(rest),
        "query" => commands::query(rest),
        "serve" => serve_cmd::serve(rest),
        "aggregate" => cluster_cmd::aggregate(rest),
        "estimate" => cluster_cmd::estimate(rest),
        "load" => serve_cmd::load(rest),
        "verify" => serve_cmd::verify(rest),
        "stat" => serve_cmd::stat(rest),
        "--help" | "-h" | "help" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => {
            diag::line(&format!("unknown command `{other}`\n{}", args::USAGE));
            return ExitCode::from(2);
        }
    };
    // Emit observability output even when the command failed — a failed
    // run's trace is exactly the one worth reading.
    if let Err(e) = finish_obs(&obs) {
        diag::error(&format!("failed to write trace: {e}"));
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            diag::error(&e.to_string());
            ExitCode::FAILURE
        }
    }
}
