//! `felip` — end-to-end command line for the FELIP reproduction.
//!
//! ```text
//! felip plan    --attrs n:256,n:256,c:8 --n 100000 --epsilon 1.0 [--strategy ohg]
//! felip run     --dataset ipums --n 100000 --epsilon 1.0 --lambda 2 --queries 10
//! felip compare --dataset normal --n 100000 --epsilon 1.0 --lambda 3
//! felip query   --csv data.csv --columns age:n:16,edu:c:8 --epsilon 1.0 \
//!               --where "age BETWEEN 4 AND 11 AND edu IN (0, 1)"
//! ```
//!
//! * `plan` prints the collection plan FELIP would use for a schema: every
//!   grid, its size, and the protocol the adaptive oracle picked — useful to
//!   understand what the optimiser does before any data is collected.
//! * `run` generates a synthetic dataset, runs one FELIP collection under
//!   ε-LDP, answers a random query workload, and reports per-query estimates
//!   plus the MAE, as JSON.
//! * `compare` runs OUG, OHG and HIO on the same dataset/workload and
//!   reports their MAEs side by side.
//! * `query` loads a real CSV file, discretises it, collects it once under
//!   ε-LDP, and answers a SQL-`WHERE`-style query — the full adoption path.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", args::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "plan" => commands::plan(rest),
        "run" => commands::run(rest),
        "compare" => commands::compare(rest),
        "query" => commands::query(rest),
        "--help" | "-h" | "help" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
