//! Property tests for the cluster merge algebra: for arbitrary user
//! populations, shard counts, and shard assignments, merging N aggregators
//! restored from their FSNP snapshots is bit-identical to ingesting the
//! union on a single shard — in any merge order. This is the algebraic
//! heart of the §16 headline invariant (exact u64 counts + addition
//! commutes), exercised through the same snapshot encode/decode path the
//! FCLU container embeds.

use std::sync::Arc;

use proptest::prelude::*;

use felip::aggregator::{Aggregator, OracleSet};
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};
use felip_server::loadgen::user_report;
use felip_server::Snapshot;

fn plan() -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::categorical("c", 4),
    ])
    .unwrap();
    Arc::new(CollectionPlan::build(&schema, 1_000, &FelipConfig::new(1.0), 3).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// merge(restore(snap(shard_1)), …, restore(snap(shard_N))) ==
    /// single-shard ingestion of the union, bit for bit, regardless of how
    /// users are assigned to shards or which order the merge runs in.
    #[test]
    fn merged_restored_snapshots_match_union_ingestion(
        users in 1usize..120,
        shards in 1usize..5,
        seed in 0u64..1_000,
        assign_salt in 0u64..1_000,
        reverse_merge in any::<bool>(),
    ) {
        let plan = plan();
        let oracles = Arc::new(OracleSet::build(&plan));

        // Arbitrary (but deterministic) user → shard assignment.
        let assignment: Vec<usize> = (0..users)
            .map(|u| ((u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(assign_salt) % shards as u64) as usize)
            .collect();

        // The single-shard truth: every user ingested into one aggregator.
        let mut union = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        for u in 0..users {
            union.ingest(&user_report(&plan, u, seed).unwrap()).unwrap();
        }

        // Each shard ingests its assigned users, then round-trips through
        // an FSNP snapshot (encode → decode → restore) — the same bytes a
        // node persists and the FCLU container embeds.
        let mut restored: Vec<Aggregator> = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut agg = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
            for u in (0..users).filter(|&u| assignment[u] == shard) {
                agg.ingest(&user_report(&plan, u, seed).unwrap()).unwrap();
            }
            let snap = Snapshot::capture(&agg, plan.schema_hash());
            let reloaded = Snapshot::decode(&snap.encode()).unwrap();
            restored.push(reloaded.restore(Arc::clone(&plan), Arc::clone(&oracles)).unwrap());
        }
        if reverse_merge {
            restored.reverse();
        }

        let mut merged = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        for shard in &restored {
            merged.merge(shard).expect("merge");
        }

        prop_assert_eq!(merged.reports_ingested(), users);
        prop_assert_eq!(merged.counts(), union.counts());
        prop_assert_eq!(merged.group_sizes(), union.group_sizes());
        prop_assert_eq!(merged.counts_digest(), union.counts_digest());

        // Post-processing happens after the merge, so estimates are exact
        // too — the user-visible face of the invariant.
        let a = merged.estimate().unwrap();
        let b = union.estimate().unwrap();
        for (ga, gb) in a.grids().iter().zip(b.grids()) {
            prop_assert_eq!(ga.freqs(), gb.freqs());
        }
    }
}
