//! Shared harness for the cluster integration tests: boots real ingest
//! servers wired to a real aggregator over loopback TCP and drives a
//! deterministic loadgen split through them.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use felip::aggregator::Aggregator;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_cluster::{StreamerConfig, StreamerReport, UpstreamStreamer};
use felip_common::{Attribute, Schema};
use felip_server::loadgen::user_report;
use felip_server::{Client, CutState, Server, ServerConfig, ServerRun};

/// A small two-attribute plan every test shares.
pub fn plan() -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::categorical("c", 4),
    ])
    .expect("schema");
    Arc::new(CollectionPlan::build(&schema, 1_000, &FelipConfig::new(1.0), 5).expect("plan"))
}

/// The cut equivalent of a finished server run's merged aggregator — what
/// the final flush offers the streamer.
pub fn cut_of(agg: &Aggregator) -> CutState {
    CutState {
        counts: agg.counts().to_vec(),
        group_sizes: agg.group_sizes().to_vec(),
        reports: agg.reports_ingested() as u64,
    }
}

/// Round-robin partition of `0..total`: node `i` of `n` gets every user
/// `u` with `u % n == i`. Deterministic, so the union over nodes is
/// exactly the single-node user range.
pub fn split_users(total: usize, nodes: usize, node: usize) -> Vec<usize> {
    (0..total).filter(|u| u % nodes == node).collect()
}

/// How [`serve_and_stream`] ends the node's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeExit {
    /// Graceful: offer the final merged state and wait for the upstream
    /// ack (deadline-bounded).
    Flush,
    /// The kill path: drop pending cuts on the floor and join the worker
    /// without flushing — whatever the periodic cuts shipped is all the
    /// aggregator ever hears from this life.
    Abandon,
}

/// The outcome of one ingest-node life.
pub struct NodeOutcome {
    /// Kept alive so the node's temp dir outlives the assertion window.
    #[allow(dead_code)]
    pub run: ServerRun,
    /// `None` when the node was abandoned; otherwise the streamer report
    /// (`Err` carries the report when the flush deadline expired).
    pub report: Option<Result<StreamerReport, StreamerReport>>,
}

/// Boots an ingest server whose cut hook streams deltas to `upstream`,
/// serves `users` (batched through one client), shuts the server down
/// gracefully, and ends the streamer per `exit`.
pub fn serve_and_stream(
    plan: &Arc<CollectionPlan>,
    upstream: SocketAddr,
    node_id: u64,
    users: &[usize],
    seed: u64,
    mut server_cfg: ServerConfig,
    exit: NodeExit,
) -> NodeOutcome {
    let streamer = UpstreamStreamer::start(StreamerConfig {
        upstream: upstream.to_string(),
        node_id,
        plan_hash: plan.schema_hash(),
        io_timeout: Duration::from_secs(5),
        reconnect_delay: Duration::from_millis(10),
    });
    server_cfg.cut_hook = Some(streamer.hook());
    server_cfg.cut_every = Duration::from_millis(10);
    let server = Server::bind(Arc::clone(plan), server_cfg).expect("bind ingest node");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    let plan_hash = plan.schema_hash();
    if !users.is_empty() {
        let mut client = Client::connect(addr, plan_hash).expect("connect");
        for batch in users.chunks(25) {
            let reports: Vec<_> = batch
                .iter()
                .map(|&u| user_report(plan, u, seed).expect("report"))
                .collect();
            client.send_batch_retrying(&reports).expect("send");
        }
    }

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = server_thread.join().expect("join server");
    let report = match exit {
        NodeExit::Flush => Some(streamer.finish(cut_of(&run.aggregator), Duration::from_secs(60))),
        NodeExit::Abandon => {
            streamer.abandon();
            None
        }
    };
    NodeOutcome { run, report }
}

/// Like [`serve_and_stream`] (always flushing), but pauses the load after
/// `users[..split_at]` and calls `pause` before streaming the rest — the
/// chaos sweep parks every node on a barrier there while it bounces the
/// aggregator, so the catch-up path (handshake cursor mismatch → full
/// resync) is exercised deterministically rather than by timing luck.
// Shared across the integration-test binaries; not every binary calls it,
// and the chaos harness needs the full parameter set in one call.
#[allow(dead_code, clippy::too_many_arguments)]
pub fn serve_and_stream_paused(
    plan: &Arc<CollectionPlan>,
    upstream: SocketAddr,
    node_id: u64,
    users: &[usize],
    seed: u64,
    mut server_cfg: ServerConfig,
    split_at: usize,
    pause: impl FnOnce(),
) -> NodeOutcome {
    let streamer = UpstreamStreamer::start(StreamerConfig {
        upstream: upstream.to_string(),
        node_id,
        plan_hash: plan.schema_hash(),
        io_timeout: Duration::from_secs(5),
        reconnect_delay: Duration::from_millis(10),
    });
    server_cfg.cut_hook = Some(streamer.hook());
    server_cfg.cut_every = Duration::from_millis(10);
    let server = Server::bind(Arc::clone(plan), server_cfg).expect("bind ingest node");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    let plan_hash = plan.schema_hash();
    let mut client = Client::connect(addr, plan_hash).expect("connect");
    let mut send_all = |slice: &[usize]| {
        for batch in slice.chunks(25) {
            let reports: Vec<_> = batch
                .iter()
                .map(|&u| user_report(plan, u, seed).expect("report"))
                .collect();
            client.send_batch_retrying(&reports).expect("send");
        }
    };
    let split_at = split_at.min(users.len());
    send_all(&users[..split_at]);
    pause();
    send_all(&users[split_at..]);
    drop(client);

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = server_thread.join().expect("join server");
    let report = streamer.finish(cut_of(&run.aggregator), Duration::from_secs(60));
    NodeOutcome {
        run,
        report: Some(report),
    }
}
