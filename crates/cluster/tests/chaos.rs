//! The cluster chaos sweep (DESIGN.md §16): 64 seeds, each driving a real
//! multi-node topology over loopback TCP with seed-derived faults — one
//! ingest node killed mid-load (rejoining fresh or from its snapshot,
//! after a seed-chosen delay) and, on half the seeds, an aggregator bounce
//! (restarting with or without its persisted FCLU state). A two-barrier
//! phase split parks every node between its two load phases while the
//! bounce lands, so the post-restart catch-up path runs deterministically
//! on every bouncing seed. Every seed must end with merged counts
//! bit-identical to the offline single-node reference; the sweep then
//! asserts its own faults were non-vacuous.

mod common;

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use felip_cluster::{AggregatorConfig, AggregatorServer};
use felip_server::loadgen::offline_reference;
use felip_server::ServerConfig;

use common::{plan, serve_and_stream, serve_and_stream_paused, split_users, NodeExit, NodeOutcome};

/// splitmix64: the same seed-expansion the ingest-tier chaos sweep uses,
/// so every fault decision is a pure function of the seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregate fault/recovery counters the sweep asserts on afterwards.
#[derive(Default)]
struct SweepTotals {
    kills: u64,
    snapshot_rejoins: u64,
    fresh_rejoins: u64,
    agg_restarts: u64,
    agg_resumes: u64,
    full_resyncs: u64,
    deltas_acked: u64,
}

#[test]
fn sixty_four_seed_cluster_sweep_is_bit_identical() {
    let plan = plan();
    let dir = std::env::temp_dir().join(format!("felip-cluster-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut totals = SweepTotals::default();
    for seed in 0..64u64 {
        let mut rng = seed ^ 0xC1A0_5EED;
        let nodes = 2 + (splitmix(&mut rng) % 2) as usize; // 2..=3
        let total = 90 + (splitmix(&mut rng) % 4) as usize * 30; // 90..=180
        let victim = (splitmix(&mut rng) % nodes as u64) as usize;
        let victim_resumes = splitmix(&mut rng) % 2 == 0;
        let rejoin_delay = Duration::from_millis(splitmix(&mut rng) % 40);
        let bounce_agg = splitmix(&mut rng) % 2 == 0;
        let agg_resume = splitmix(&mut rng) % 2 == 0;

        totals.kills += 1;
        if victim_resumes {
            totals.snapshot_rejoins += 1;
        } else {
            totals.fresh_rejoins += 1;
        }

        let state_path = dir.join(format!("agg-{seed}.fclu"));
        let agg_cfg = AggregatorConfig {
            state_path: Some(state_path.clone()),
            persist_every: Duration::from_millis(20),
            ..AggregatorConfig::default()
        };
        let agg = AggregatorServer::bind(Arc::clone(&plan), agg_cfg).expect("bind aggregator");
        let upstream = agg.local_addr();
        let stop = agg.shutdown_handle();
        let mut agg_thread = Some(thread::spawn(move || {
            agg.run(None).expect("aggregator run")
        }));

        // Phase fences: every node parks between its two load phases at
        // `loaded`, the main thread bounces (or not), then `resume`
        // releases phase two — so on bouncing seeds every node's
        // remaining load and final flush land on the restarted instance.
        let loaded = Arc::new(Barrier::new(nodes + 1));
        let resume = Arc::new(Barrier::new(nodes + 1));

        let (outcomes, run) = thread::scope(|s| {
            let handles: Vec<_> = (0..nodes)
                .map(|i| {
                    let plan = Arc::clone(&plan);
                    let users = split_users(total, nodes, i);
                    let snap = dir.join(format!("node-{seed}-{i}.snap"));
                    let loaded = Arc::clone(&loaded);
                    let resume = Arc::clone(&resume);
                    s.spawn(move || -> NodeOutcome {
                        let node_id = i as u64 + 1;
                        if i != victim {
                            // A surviving node: one server lifetime whose
                            // load pauses across the bounce window.
                            let split_at = users.len() / 2;
                            return serve_and_stream_paused(
                                &plan,
                                upstream,
                                node_id,
                                &users,
                                seed,
                                ServerConfig::default(),
                                split_at,
                                || {
                                    loaded.wait();
                                    resume.wait();
                                },
                            );
                        }
                        // The victim's first life: half its share, then a
                        // kill (streamer abandoned, pending cuts lost).
                        let (first, rest) = users.split_at(users.len() / 2);
                        let killed_cfg = ServerConfig {
                            snapshot_path: Some(snap.clone()),
                            snapshot_every: Some(Duration::from_millis(15)),
                            ..ServerConfig::default()
                        };
                        serve_and_stream(
                            &plan,
                            upstream,
                            node_id,
                            first,
                            seed,
                            killed_cfg,
                            NodeExit::Abandon,
                        );
                        loaded.wait();
                        resume.wait();
                        thread::sleep(rejoin_delay);
                        // Second life: either resume the snapshot and send
                        // the remaining users, or come back empty-handed
                        // and re-ingest the whole share.
                        if victim_resumes {
                            let cfg = ServerConfig {
                                resume: Some(snap.clone()),
                                ..ServerConfig::default()
                            };
                            serve_and_stream(
                                &plan,
                                upstream,
                                node_id,
                                rest,
                                seed,
                                cfg,
                                NodeExit::Flush,
                            )
                        } else {
                            serve_and_stream(
                                &plan,
                                upstream,
                                node_id,
                                &users,
                                seed,
                                ServerConfig::default(),
                                NodeExit::Flush,
                            )
                        }
                    })
                })
                .collect();

            loaded.wait();
            if bounce_agg {
                stop.store(true, Ordering::SeqCst);
                if let Some(t) = agg_thread.take() {
                    t.join().expect("join bounced aggregator");
                }
                let cfg = AggregatorConfig {
                    addr: upstream.to_string(),
                    state_path: Some(state_path.clone()),
                    resume: agg_resume.then(|| state_path.clone()),
                    persist_every: Duration::from_millis(20),
                    ..AggregatorConfig::default()
                };
                let agg2 = AggregatorServer::bind(Arc::clone(&plan), cfg)
                    .expect("rebind aggregator on the same port");
                let stop2 = agg2.shutdown_handle();
                agg_thread = Some(thread::spawn(move || {
                    agg2.run(None).expect("restarted aggregator run")
                }));
                resume.wait();
                let outcomes: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("node thread"))
                    .collect();
                stop2.store(true, Ordering::SeqCst);
                (
                    outcomes,
                    agg_thread
                        .take()
                        .map(|t| t.join().expect("join aggregator")),
                )
            } else {
                resume.wait();
                let outcomes: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("node thread"))
                    .collect();
                stop.store(true, Ordering::SeqCst);
                (
                    outcomes,
                    agg_thread
                        .take()
                        .map(|t| t.join().expect("join aggregator")),
                )
            }
        });
        let run = run.expect("aggregator result");
        if bounce_agg {
            totals.agg_restarts += 1;
            if agg_resume {
                totals.agg_resumes += 1;
            }
        }

        // Every surviving life must have flushed its full share.
        for (i, outcome) in outcomes.iter().enumerate() {
            let report = outcome
                .report
                .clone()
                .expect("final life always flushes")
                .unwrap_or_else(|r| panic!("seed {seed} node {i} flush incomplete: {r:?}"));
            let share = split_users(total, nodes, i).len() as u64;
            assert_eq!(
                report.flushed_reports, share,
                "seed {seed} node {i} flushed reports"
            );
            totals.full_resyncs += report.full_resyncs;
            totals.deltas_acked += report.deltas_acked;
        }

        // The per-seed headline invariant: bit-identical to the offline
        // single-node reference despite every fault above.
        let expected = offline_reference(&plan, 0..total, seed).expect("offline");
        assert_eq!(
            run.merged.reports_ingested(),
            total,
            "seed {seed} merged report count"
        );
        assert_eq!(run.merged.counts(), expected.counts(), "seed {seed} counts");
        assert_eq!(
            run.merged.group_sizes(),
            expected.group_sizes(),
            "seed {seed} group sizes"
        );
        assert_eq!(
            run.merged.counts_digest(),
            expected.counts_digest(),
            "seed {seed} digest"
        );
        assert_eq!(run.nodes.len(), nodes, "seed {seed} node rows");
    }

    // The sweep must not have been vacuous: every fault class fired, and
    // recovery visibly used the resync machinery.
    assert_eq!(totals.kills, 64);
    assert!(totals.snapshot_rejoins >= 8, "{}", totals.snapshot_rejoins);
    assert!(totals.fresh_rejoins >= 8, "{}", totals.fresh_rejoins);
    assert!(totals.agg_restarts >= 16, "{}", totals.agg_restarts);
    assert!(totals.agg_resumes >= 4, "{}", totals.agg_resumes);
    assert!(
        totals.full_resyncs >= 64,
        "every kill implies at least one full resync: {}",
        totals.full_resyncs
    );
    assert!(totals.deltas_acked >= 2 * 64, "{}", totals.deltas_acked);

    let _ = std::fs::remove_dir_all(&dir);
}
