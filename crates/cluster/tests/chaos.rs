//! The cluster chaos sweep (DESIGN.md §16): 64 seeds, each driving a real
//! multi-node topology over loopback TCP with seed-derived faults — one
//! ingest node killed mid-load (rejoining fresh or from its snapshot,
//! after a seed-chosen delay) and, on half the seeds, an aggregator bounce
//! (restarting with or without its persisted FCLU state). A two-barrier
//! phase split parks every node between its two load phases while the
//! bounce lands, so the post-restart catch-up path runs deterministically
//! on every bouncing seed. Every seed must end with merged counts
//! bit-identical to the offline single-node reference; the sweep then
//! asserts its own faults were non-vacuous.

mod common;

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use felip::plan::CollectionPlan;
use felip_cluster::{AggregatorConfig, AggregatorServer};
use felip_common::{Predicate, Query};
use felip_server::loadgen::offline_reference;
use felip_server::wire::{
    self, CountDelta, DeltaFlavor, Frame, FrameKind, QueryAnswer, QueryMode, QueryRequest,
};
use felip_server::ServerConfig;

use common::{plan, serve_and_stream, serve_and_stream_paused, split_users, NodeExit, NodeOutcome};

/// The λ-D probe the sweep's query mixer asks on every seed.
fn probe_predicates() -> Vec<Predicate> {
    vec![
        Predicate::between(0, 4, 20),
        Predicate::in_set(1, vec![1, 2]),
    ]
}

/// One `Query` round-trip against an aggregator. `Ok(None)` is an `Error`
/// frame (nothing merged yet — the connection stays usable); `Err` is a
/// transport failure (e.g. the aggregator is mid-bounce).
fn ask_cluster(
    conn: &mut TcpStream,
    plan_hash: u64,
    query_id: u64,
    mode: QueryMode,
) -> Result<Option<QueryAnswer>, String> {
    wire::write_frame(
        conn,
        &Frame {
            kind: FrameKind::Query,
            plan_hash,
            payload: wire::encode_query(&QueryRequest {
                query_id,
                mode,
                predicates: probe_predicates(),
            })
            .map_err(|e| e.to_string())?,
        },
    )
    .map_err(|e| e.to_string())?;
    let reply = wire::read_frame(conn)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed mid-query".to_string())?;
    match reply.kind {
        FrameKind::QueryReply => wire::decode_query_reply(&reply.payload)
            .map(Some)
            .map_err(|e| e.to_string()),
        FrameKind::Error => Ok(None),
        other => Err(format!("unexpected reply to query: {other:?}")),
    }
}

/// A `Fresh` query retried until the aggregator's cut covers the full
/// stream — the settled, strongest-consistency ask of a finished seed.
fn settled_answer(upstream: SocketAddr, plan: &CollectionPlan, total: usize) -> QueryAnswer {
    for attempt in 0..200u64 {
        if let Ok(mut conn) = TcpStream::connect(upstream) {
            if let Ok(Some(ans)) = ask_cluster(
                &mut conn,
                plan.schema_hash(),
                0xF1AA + attempt,
                QueryMode::Fresh,
            ) {
                if ans.reports == total as u64 {
                    return ans;
                }
            }
        }
        thread::sleep(Duration::from_millis(2));
    }
    panic!("aggregator never answered the settled query at {total} reports");
}

/// splitmix64: the same seed-expansion the ingest-tier chaos sweep uses,
/// so every fault decision is a pure function of the seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregate fault/recovery counters the sweep asserts on afterwards.
#[derive(Default)]
struct SweepTotals {
    kills: u64,
    snapshot_rejoins: u64,
    fresh_rejoins: u64,
    agg_restarts: u64,
    agg_resumes: u64,
    full_resyncs: u64,
    deltas_acked: u64,
    queries_answered: u64,
}

#[test]
fn sixty_four_seed_cluster_sweep_is_bit_identical() {
    let plan = plan();
    let dir = std::env::temp_dir().join(format!("felip-cluster-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut totals = SweepTotals::default();
    for seed in 0..64u64 {
        let mut rng = seed ^ 0xC1A0_5EED;
        let nodes = 2 + (splitmix(&mut rng) % 2) as usize; // 2..=3
        let total = 90 + (splitmix(&mut rng) % 4) as usize * 30; // 90..=180
        let victim = (splitmix(&mut rng) % nodes as u64) as usize;
        let victim_resumes = splitmix(&mut rng).is_multiple_of(2);
        let rejoin_delay = Duration::from_millis(splitmix(&mut rng) % 40);
        let bounce_agg = splitmix(&mut rng).is_multiple_of(2);
        let agg_resume = splitmix(&mut rng).is_multiple_of(2);

        totals.kills += 1;
        if victim_resumes {
            totals.snapshot_rejoins += 1;
        } else {
            totals.fresh_rejoins += 1;
        }

        let state_path = dir.join(format!("agg-{seed}.fclu"));
        let agg_cfg = AggregatorConfig {
            state_path: Some(state_path.clone()),
            persist_every: Duration::from_millis(20),
            ..AggregatorConfig::default()
        };
        let agg = AggregatorServer::bind(Arc::clone(&plan), agg_cfg).expect("bind aggregator");
        let upstream = agg.local_addr();
        let stop = agg.shutdown_handle();
        let mut agg_thread = Some(thread::spawn(move || {
            agg.run(None).expect("aggregator run")
        }));

        // Phase fences: every node parks between its two load phases at
        // `loaded`, the main thread bounces (or not), then `resume`
        // releases phase two — so on bouncing seeds every node's
        // remaining load and final flush land on the restarted instance.
        let loaded = Arc::new(Barrier::new(nodes + 1));
        let resume = Arc::new(Barrier::new(nodes + 1));

        // The mixed query client: rides the whole seed (faults, kill,
        // bounce and all) asking `Cached` queries; every answer must sit
        // at a valid epoch no further than the ingest head and inside a
        // cut no larger than the stream.
        let qstop = Arc::new(AtomicBool::new(false));
        let answered = Arc::new(AtomicU64::new(0));

        let (outcomes, run, final_ans) = thread::scope(|s| {
            let mixer = {
                let qstop = Arc::clone(&qstop);
                let answered = Arc::clone(&answered);
                let plan_hash = plan.schema_hash();
                s.spawn(move || {
                    let mut query_id = 0x0A5C_0000u64;
                    while !qstop.load(Ordering::SeqCst) {
                        query_id += 1;
                        // Reconnect per ask: the aggregator may be
                        // mid-bounce, which is simply a skipped round.
                        if let Ok(mut conn) = TcpStream::connect(upstream) {
                            if let Ok(Some(ans)) =
                                ask_cluster(&mut conn, plan_hash, query_id, QueryMode::Cached)
                            {
                                assert!(
                                    ans.epoch <= ans.head_epoch,
                                    "answer served from the future: epoch {} > head {}",
                                    ans.epoch,
                                    ans.head_epoch
                                );
                                assert!(
                                    ans.reports <= total as u64,
                                    "cut larger than the stream: {} > {total}",
                                    ans.reports
                                );
                                assert!(
                                    (0.0..=1.0).contains(&ans.answer),
                                    "frequency out of range: {}",
                                    ans.answer
                                );
                                answered.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        thread::sleep(Duration::from_millis(3));
                    }
                })
            };
            let handles: Vec<_> = (0..nodes)
                .map(|i| {
                    let plan = Arc::clone(&plan);
                    let users = split_users(total, nodes, i);
                    let snap = dir.join(format!("node-{seed}-{i}.snap"));
                    let loaded = Arc::clone(&loaded);
                    let resume = Arc::clone(&resume);
                    s.spawn(move || -> NodeOutcome {
                        let node_id = i as u64 + 1;
                        if i != victim {
                            // A surviving node: one server lifetime whose
                            // load pauses across the bounce window.
                            let split_at = users.len() / 2;
                            return serve_and_stream_paused(
                                &plan,
                                upstream,
                                node_id,
                                &users,
                                seed,
                                ServerConfig::default(),
                                split_at,
                                || {
                                    loaded.wait();
                                    resume.wait();
                                },
                            );
                        }
                        // The victim's first life: half its share, then a
                        // kill (streamer abandoned, pending cuts lost).
                        let (first, rest) = users.split_at(users.len() / 2);
                        let killed_cfg = ServerConfig {
                            snapshot_path: Some(snap.clone()),
                            snapshot_every: Some(Duration::from_millis(15)),
                            ..ServerConfig::default()
                        };
                        serve_and_stream(
                            &plan,
                            upstream,
                            node_id,
                            first,
                            seed,
                            killed_cfg,
                            NodeExit::Abandon,
                        );
                        loaded.wait();
                        resume.wait();
                        thread::sleep(rejoin_delay);
                        // Second life: either resume the snapshot and send
                        // the remaining users, or come back empty-handed
                        // and re-ingest the whole share.
                        if victim_resumes {
                            let cfg = ServerConfig {
                                resume: Some(snap.clone()),
                                ..ServerConfig::default()
                            };
                            serve_and_stream(
                                &plan,
                                upstream,
                                node_id,
                                rest,
                                seed,
                                cfg,
                                NodeExit::Flush,
                            )
                        } else {
                            serve_and_stream(
                                &plan,
                                upstream,
                                node_id,
                                &users,
                                seed,
                                ServerConfig::default(),
                                NodeExit::Flush,
                            )
                        }
                    })
                })
                .collect();

            loaded.wait();
            if bounce_agg {
                stop.store(true, Ordering::SeqCst);
                if let Some(t) = agg_thread.take() {
                    t.join().expect("join bounced aggregator");
                }
                let cfg = AggregatorConfig {
                    addr: upstream.to_string(),
                    state_path: Some(state_path.clone()),
                    resume: agg_resume.then(|| state_path.clone()),
                    persist_every: Duration::from_millis(20),
                    ..AggregatorConfig::default()
                };
                let agg2 = AggregatorServer::bind(Arc::clone(&plan), cfg)
                    .expect("rebind aggregator on the same port");
                let stop2 = agg2.shutdown_handle();
                agg_thread = Some(thread::spawn(move || {
                    agg2.run(None).expect("restarted aggregator run")
                }));
                resume.wait();
                let outcomes: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("node thread"))
                    .collect();
                // Every node flushed: ask the settled question while the
                // aggregator is still serving, then let it drain.
                qstop.store(true, Ordering::SeqCst);
                mixer.join().expect("query mixer");
                let final_ans = settled_answer(upstream, &plan, total);
                stop2.store(true, Ordering::SeqCst);
                (
                    outcomes,
                    agg_thread
                        .take()
                        .map(|t| t.join().expect("join aggregator")),
                    final_ans,
                )
            } else {
                resume.wait();
                let outcomes: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("node thread"))
                    .collect();
                qstop.store(true, Ordering::SeqCst);
                mixer.join().expect("query mixer");
                let final_ans = settled_answer(upstream, &plan, total);
                stop.store(true, Ordering::SeqCst);
                (
                    outcomes,
                    agg_thread
                        .take()
                        .map(|t| t.join().expect("join aggregator")),
                    final_ans,
                )
            }
        });
        let run = run.expect("aggregator result");
        if bounce_agg {
            totals.agg_restarts += 1;
            if agg_resume {
                totals.agg_resumes += 1;
            }
        }

        // Every surviving life must have flushed its full share.
        for (i, outcome) in outcomes.iter().enumerate() {
            let report = outcome
                .report
                .clone()
                .expect("final life always flushes")
                .unwrap_or_else(|r| panic!("seed {seed} node {i} flush incomplete: {r:?}"));
            let share = split_users(total, nodes, i).len() as u64;
            assert_eq!(
                report.flushed_reports, share,
                "seed {seed} node {i} flushed reports"
            );
            totals.full_resyncs += report.full_resyncs;
            totals.deltas_acked += report.deltas_acked;
        }

        // The per-seed headline invariant: bit-identical to the offline
        // single-node reference despite every fault above.
        let expected = offline_reference(&plan, 0..total, seed).expect("offline");
        assert_eq!(
            run.merged.reports_ingested(),
            total,
            "seed {seed} merged report count"
        );
        assert_eq!(run.merged.counts(), expected.counts(), "seed {seed} counts");
        assert_eq!(
            run.merged.group_sizes(),
            expected.group_sizes(),
            "seed {seed} group sizes"
        );
        assert_eq!(
            run.merged.counts_digest(),
            expected.counts_digest(),
            "seed {seed} digest"
        );
        assert_eq!(run.nodes.len(), nodes, "seed {seed} node rows");

        // And the settled online answer equals the offline batch estimate
        // on that same full cut, bit for bit — the wire path, the merge,
        // and the incremental engine add nothing and lose nothing.
        let probe = Query::new(plan.schema(), probe_predicates()).expect("probe");
        assert_eq!(final_ans.reports, total as u64, "seed {seed} settled cut");
        assert_eq!(
            final_ans.answer.to_bits(),
            expected
                .estimate()
                .expect("offline estimate")
                .answer(&probe)
                .expect("offline answer")
                .to_bits(),
            "seed {seed}: online answer diverged from the offline estimate"
        );
        totals.queries_answered += answered.load(Ordering::SeqCst);
    }

    // The sweep must not have been vacuous: every fault class fired, and
    // recovery visibly used the resync machinery.
    assert_eq!(totals.kills, 64);
    assert!(totals.snapshot_rejoins >= 8, "{}", totals.snapshot_rejoins);
    assert!(totals.fresh_rejoins >= 8, "{}", totals.fresh_rejoins);
    assert!(totals.agg_restarts >= 16, "{}", totals.agg_restarts);
    assert!(totals.agg_resumes >= 4, "{}", totals.agg_resumes);
    assert!(
        totals.full_resyncs >= 64,
        "every kill implies at least one full resync: {}",
        totals.full_resyncs
    );
    assert!(totals.deltas_acked >= 2 * 64, "{}", totals.deltas_acked);
    // The query mixer must have landed real answers across the sweep — a
    // permanently-erroring query plane would otherwise pass silently.
    assert!(
        totals.queries_answered >= 64,
        "query mixer answered too little: {}",
        totals.queries_answered
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill+resume must never serve a pre-restore cached grid: the first
/// answer of the resumed aggregator's life is a cold build from the
/// restored FCLU state (epoch restarts at 1), bit-identical to the
/// offline batch estimate on the restored counts.
#[test]
fn aggregator_resume_answers_cold_from_restored_state() {
    let plan = plan();
    let plan_hash = plan.schema_hash();
    let dir =
        std::env::temp_dir().join(format!("felip-cluster-resume-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let state_path = dir.join("agg.fclu");

    let probe = Query::new(plan.schema(), probe_predicates()).expect("probe");
    let warm = offline_reference(&plan, 0..20, 9).expect("offline 20");
    let grown = offline_reference(&plan, 0..40, 9).expect("offline 40");
    let grown_bits = grown
        .estimate()
        .expect("offline estimate")
        .answer(&probe)
        .expect("offline answer")
        .to_bits();

    let send_full = |conn: &mut TcpStream, epoch: u64, agg: &felip::Aggregator| {
        wire::write_frame(
            conn,
            &Frame {
                kind: FrameKind::Delta,
                plan_hash,
                payload: wire::encode_delta(&CountDelta {
                    node_id: 7,
                    epoch,
                    flavor: DeltaFlavor::Full,
                    total: agg.reports_ingested() as u64,
                    counts: agg.counts().to_vec(),
                    group_sizes: agg.group_sizes().iter().map(|&s| s as u64).collect(),
                })
                .expect("encode delta"),
            },
        )
        .expect("send delta");
        let ack = wire::read_frame(conn)
            .expect("ack read")
            .expect("ack frame");
        assert_eq!(ack.kind, FrameKind::DeltaAck, "delta must be acked");
    };

    // Life 1: ingest two epochs, observing the engine advance 1 → 2, then
    // shut down (the aggregator persists once more on the way out).
    let cfg = AggregatorConfig {
        state_path: Some(state_path.clone()),
        persist_every: Duration::from_millis(10),
        ..AggregatorConfig::default()
    };
    let agg1 = AggregatorServer::bind(Arc::clone(&plan), cfg).expect("bind life 1");
    let upstream = agg1.local_addr();
    let stop1 = agg1.shutdown_handle();
    let life1 = thread::spawn(move || agg1.run(None).expect("life 1 run"));
    {
        let mut conn = TcpStream::connect(upstream).expect("connect life 1");
        wire::write_frame(
            &mut conn,
            &Frame {
                kind: FrameKind::Hello,
                plan_hash,
                payload: wire::encode_hello(7),
            },
        )
        .expect("hello");
        wire::read_frame(&mut conn)
            .expect("hello ack")
            .expect("ack");

        send_full(&mut conn, 1, &warm);
        let first = ask_cluster(&mut conn, plan_hash, 1, QueryMode::Cached)
            .expect("query 1")
            .expect("answer 1");
        assert_eq!(first.epoch, 1);
        assert_eq!(first.reports, 20);

        send_full(&mut conn, 2, &grown);
        let second = ask_cluster(&mut conn, plan_hash, 2, QueryMode::Cached)
            .expect("query 2")
            .expect("answer 2");
        assert_eq!(second.epoch, 2, "changed counts must advance the epoch");
        assert_eq!(second.reports, 40);
        assert_eq!(second.answer.to_bits(), grown_bits);
    }
    stop1.store(true, Ordering::SeqCst);
    life1.join().expect("join life 1");

    // Life 2: resume from the persisted state. The very first answer must
    // be a cold build — epoch 1, never the pre-restore cache's epoch 2 —
    // over the full restored 40-report cut.
    let cfg = AggregatorConfig {
        state_path: Some(state_path.clone()),
        resume: Some(state_path.clone()),
        persist_every: Duration::from_millis(10),
        ..AggregatorConfig::default()
    };
    let agg2 = AggregatorServer::bind(Arc::clone(&plan), cfg).expect("bind life 2");
    let upstream = agg2.local_addr();
    let stop2 = agg2.shutdown_handle();
    let life2 = thread::spawn(move || agg2.run(None).expect("life 2 run"));
    {
        let mut conn = TcpStream::connect(upstream).expect("connect life 2");
        let resumed = ask_cluster(&mut conn, plan_hash, 3, QueryMode::Cached)
            .expect("resumed query")
            .expect("resumed answer");
        assert_eq!(
            resumed.epoch, 1,
            "resumed aggregator served a pre-restore cached grid"
        );
        assert_eq!(resumed.head_epoch, 1);
        assert_eq!(resumed.reports, 40, "restored cut must cover the stream");
        assert_eq!(resumed.answer.to_bits(), grown_bits);
    }
    stop2.store(true, Ordering::SeqCst);
    life2.join().expect("join life 2");

    let _ = std::fs::remove_dir_all(&dir);
}
