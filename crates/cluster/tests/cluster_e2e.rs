//! End-to-end cluster tests over loopback TCP: a deterministic loadgen
//! split across N ingest nodes, streamed upstream as deltas, must merge to
//! counts bit-identical to the single-node run — including across node
//! kill+resume and an aggregator restart (DESIGN.md §16).

mod common;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use felip_cluster::{AggregatorConfig, AggregatorServer};
use felip_server::loadgen::offline_reference;
use felip_server::ServerConfig;

use common::{plan, serve_and_stream, split_users, NodeExit};

#[test]
fn three_node_split_merges_bit_identical_to_single_node() {
    let plan = plan();
    let total = 600;
    let seed = 42;
    let nodes = 3;

    let agg = AggregatorServer::bind(Arc::clone(&plan), AggregatorConfig::default())
        .expect("bind aggregator");
    let upstream = agg.local_addr();
    let stop = agg.shutdown_handle();
    let agg_thread = thread::spawn(move || agg.run(None).expect("aggregator run"));

    let outcomes = thread::scope(|s| {
        let handles: Vec<_> = (0..nodes)
            .map(|i| {
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    serve_and_stream(
                        &plan,
                        upstream,
                        i as u64 + 1,
                        &split_users(total, nodes, i),
                        seed,
                        ServerConfig::default(),
                        NodeExit::Flush,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect::<Vec<_>>()
    });

    stop.store(true, Ordering::SeqCst);
    let run = agg_thread.join().expect("join aggregator");

    // Every node flushed its whole share.
    for (i, outcome) in outcomes.iter().enumerate() {
        let share = split_users(total, nodes, i).len();
        assert_eq!(outcome.run.aggregator.reports_ingested(), share);
        let report = outcome
            .report
            .clone()
            .expect("flushed")
            .expect("flush acked");
        assert_eq!(report.flushed_reports, share as u64, "node {i} flush");
        assert!(report.deltas_acked >= 1);
    }

    // The headline invariant: merged counts are bit-identical to the
    // single-node (= offline union) run.
    let expected = offline_reference(&plan, 0..total, seed).expect("offline");
    assert_eq!(run.merged.reports_ingested(), total);
    assert_eq!(run.merged.counts(), expected.counts());
    assert_eq!(run.merged.group_sizes(), expected.group_sizes());
    assert_eq!(run.merged.counts_digest(), expected.counts_digest());

    // Post-processing (norm-sub consistency) runs after the merge, so the
    // estimates are exact too.
    let a = run.merged.estimate().expect("cluster estimate");
    let b = expected.estimate().expect("offline estimate");
    for (ga, gb) in a.grids().iter().zip(b.grids()) {
        assert_eq!(ga.freqs(), gb.freqs(), "cluster estimates must be exact");
    }

    assert_eq!(run.nodes.len(), nodes);
    assert!(run.stats.deltas_applied >= nodes as u64);
}

#[test]
fn killed_node_rejoins_with_full_resync_and_loses_nothing() {
    let plan = plan();
    let total = 400;
    let seed = 7;
    let dir = std::env::temp_dir().join(format!("felip-cluster-rejoin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("node2.snap");

    let agg = AggregatorServer::bind(Arc::clone(&plan), AggregatorConfig::default())
        .expect("bind aggregator");
    let upstream = agg.local_addr();
    let stop = agg.shutdown_handle();
    let agg_thread = thread::spawn(move || agg.run(None).expect("aggregator run"));

    // Node 1 serves its full share normally.
    let node1_users = split_users(total, 2, 0);
    let node2_users = split_users(total, 2, 1);
    let (first_half, second_half) = node2_users.split_at(node2_users.len() / 2);

    let node2_report = thread::scope(|s| {
        let n1 = {
            let plan = Arc::clone(&plan);
            let users = node1_users.clone();
            s.spawn(move || {
                serve_and_stream(
                    &plan,
                    upstream,
                    1,
                    &users,
                    seed,
                    ServerConfig::default(),
                    NodeExit::Flush,
                )
            })
        };

        // Node 2, first life: half its share, snapshotting, then killed —
        // the streamer is abandoned with cuts possibly unflushed.
        let killed_cfg = ServerConfig {
            snapshot_path: Some(snap.clone()),
            snapshot_every: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        };
        let killed = serve_and_stream(
            &plan,
            upstream,
            2,
            first_half,
            seed,
            killed_cfg,
            NodeExit::Abandon,
        );
        assert_eq!(killed.run.aggregator.reports_ingested(), first_half.len());
        assert!(snap.exists(), "kill must leave a snapshot behind");

        // Second life: resume the snapshot, serve the rest, flush. The
        // fresh streamer's cursor disagrees with the aggregator's, so the
        // rejoin goes through a full cumulative resync.
        let resumed_cfg = ServerConfig {
            snapshot_path: Some(snap.clone()),
            resume: Some(snap.clone()),
            ..ServerConfig::default()
        };
        let resumed = serve_and_stream(
            &plan,
            upstream,
            2,
            second_half,
            seed,
            resumed_cfg,
            NodeExit::Flush,
        );
        assert_eq!(resumed.run.aggregator.reports_ingested(), node2_users.len());

        n1.join()
            .expect("node 1")
            .report
            .expect("flushed")
            .expect("node 1 flush");
        resumed
            .report
            .clone()
            .expect("flushed")
            .expect("node 2 flush")
    });

    stop.store(true, Ordering::SeqCst);
    let run = agg_thread.join().expect("join aggregator");

    assert_eq!(node2_report.flushed_reports, node2_users.len() as u64);
    // The first life streamed at least one delta, so the resumed cursor
    // cannot agree and the rejoin must have used the full-resync path.
    assert!(
        node2_report.full_resyncs >= 1,
        "rejoin must replace the aggregator's stale view: {node2_report:?}"
    );

    let expected = offline_reference(&plan, 0..total, seed).expect("offline");
    assert_eq!(run.merged.reports_ingested(), total);
    assert_eq!(run.merged.counts(), expected.counts());
    assert_eq!(run.merged.group_sizes(), expected.group_sizes());
    assert_eq!(run.merged.counts_digest(), expected.counts_digest());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregator_restart_mid_load_converges_with_resume() {
    let plan = plan();
    let total = 500;
    let seed = 13;
    let dir = std::env::temp_dir().join(format!("felip-cluster-aggrestart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let state_path = dir.join("cluster.fclu");

    let first_cfg = AggregatorConfig {
        state_path: Some(state_path.clone()),
        persist_every: Duration::from_millis(25),
        ..AggregatorConfig::default()
    };
    let agg = AggregatorServer::bind(Arc::clone(&plan), first_cfg).expect("bind aggregator");
    let upstream = agg.local_addr();
    let stop = agg.shutdown_handle();
    let agg_thread = thread::spawn(move || agg.run(None).expect("first aggregator run"));

    let (outcomes, run) = thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    serve_and_stream(
                        &plan,
                        upstream,
                        i as u64 + 1,
                        &split_users(total, 2, i),
                        seed,
                        ServerConfig::default(),
                        NodeExit::Flush,
                    )
                })
            })
            .collect();

        // Bounce the aggregator while the nodes are (likely) mid-load. The
        // invariant below holds regardless of exactly when this lands: the
        // nodes' final flush happens against the restarted instance.
        thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::SeqCst);
        agg_thread.join().expect("join first aggregator");

        let second_cfg = AggregatorConfig {
            addr: upstream.to_string(),
            state_path: Some(state_path.clone()),
            resume: Some(state_path.clone()),
            persist_every: Duration::from_millis(25),
            ..AggregatorConfig::default()
        };
        let agg2 = AggregatorServer::bind(Arc::clone(&plan), second_cfg)
            .expect("rebind aggregator on the same port");
        let stop2 = agg2.shutdown_handle();
        let agg2_thread = thread::spawn(move || agg2.run(None).expect("second aggregator run"));

        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect();
        stop2.store(true, Ordering::SeqCst);
        let run = agg2_thread.join().expect("join second aggregator");
        (outcomes, run)
    });

    for (i, outcome) in outcomes.iter().enumerate() {
        outcome
            .report
            .clone()
            .expect("flushed")
            .unwrap_or_else(|r| panic!("node {i} flush did not complete: {r:?}"));
    }

    let expected = offline_reference(&plan, 0..total, seed).expect("offline");
    assert_eq!(run.merged.reports_ingested(), total);
    assert_eq!(run.merged.counts(), expected.counts());
    assert_eq!(run.merged.group_sizes(), expected.group_sizes());
    assert_eq!(run.merged.counts_digest(), expected.counts_digest());

    let _ = std::fs::remove_dir_all(&dir);
}
