//! `felip-cluster`: two-tier distributed ingestion (DESIGN.md §16).
//!
//! N ingest nodes each run the existing `felip-server` reactor; an
//! aggregator node merges their counts into one cluster-wide
//! [`felip::aggregator::Aggregator`]. Ingest nodes stream epoch-numbered
//! count *deltas* — derived from the server's consistent cuts — upstream
//! over the wire protocol's v4 `Delta`/`DeltaAck` verbs, with full
//! cumulative resync as the rejoin/catch-up path.
//!
//! The headline invariant: because FELIP count vectors are exact `u64`
//! tallies and merging is addition, a deterministic loadgen split across N
//! nodes produces merged counts **bit-identical** to the single-node run —
//! including across node kill+resume and aggregator restart, which the
//! 64-seed chaos sweep in `tests/chaos.rs` verifies per seed.
//!
//! * [`state`] — per-node cumulative state, epoch discipline, FCLU
//!   persistence.
//! * [`server`] — the aggregator's accept loop and session handling.
//! * [`streamer`] — the ingest-node side: cut coalescing, delta
//!   derivation, reconnect/resync.

#![warn(missing_docs)]

#[cfg(all(test, feature = "model"))]
mod model_tests;
mod query;
pub mod server;
pub mod state;
pub mod streamer;

pub use server::{
    AggregatorConfig, AggregatorError, AggregatorRun, AggregatorServer, AggregatorStats,
};
pub use state::{ApplyResult, ClusterState, CLUSTER_MAGIC, CLUSTER_VERSION};
pub use streamer::{StreamerConfig, StreamerReport, UpstreamStreamer};
