//! The ingest-node side of the cluster tier: a background thread that
//! turns periodic [`CutState`]s into epoch-numbered `Delta` frames and
//! ships them upstream with the same exactly-once-or-rejected discipline
//! clients use for report batches (DESIGN.md §16).
//!
//! ## Coalescing
//!
//! Cut states are cumulative, so the streamer never needs a queue: the
//! latest pending cut supersedes every older one. The cut hook just
//! replaces a single slot; the worker thread drains it and derives the
//! increment against the last *acked* cut. A slow upstream therefore
//! costs larger (not more) deltas — backpressure by widening, never by
//! blocking the ingest server's cut thread.
//!
//! ## Reconnect and the in-flight window
//!
//! At most one delta is in flight. If the connection dies between send and
//! ack, the next handshake disambiguates: the aggregator's `Hello` ack
//! echoes the node's last applied epoch, so the streamer learns whether
//! the in-flight delta landed (commit it locally) or not (resend). Any
//! epoch disagreement beyond that one-slot window — a resumed node, a
//! fresh aggregator, a rejected gap — falls back to a full cumulative
//! delta, whose replacement semantics re-converge the aggregator's view
//! of this node in one frame.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use felip_sync::{thread, Arc, Condvar, Mutex};

use felip_server::server::{CutHook, CutState};
use felip_server::wire::{
    decode_ack, decode_delta_ack, encode_hello, read_frame, write_frame, CountDelta, DeltaFlavor,
    DeltaStatus, Frame, FrameKind, WireError,
};

/// How the streamer reaches its aggregator.
#[derive(Debug, Clone)]
pub struct StreamerConfig {
    /// Aggregator address, e.g. `127.0.0.1:7900`.
    pub upstream: String,
    /// This ingest node's stable identity (the cluster-tier analogue of a
    /// client id; survives restarts so the epoch cursor stays meaningful).
    pub node_id: u64,
    /// The collection plan's schema hash, stamped on every frame.
    pub plan_hash: u64,
    /// Socket read/write deadline per frame exchange.
    pub io_timeout: Duration,
    /// Backoff between reconnect attempts while the aggregator is away.
    pub reconnect_delay: Duration,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        StreamerConfig {
            upstream: "127.0.0.1:7900".to_string(),
            node_id: 1,
            plan_hash: 0,
            io_timeout: Duration::from_secs(5),
            reconnect_delay: Duration::from_millis(50),
        }
    }
}

/// What the worker thread reports back through [`UpstreamStreamer::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamerReport {
    /// Deltas acked upstream (incremental + full).
    pub deltas_acked: u64,
    /// Full resyncs among them.
    pub full_resyncs: u64,
    /// Reports covered by the highest acked cut.
    pub flushed_reports: u64,
}

/// Shared slot between the cut hook (producer) and the worker (consumer).
struct Shared {
    pending: Mutex<Pending>,
    cv: Condvar,
}

struct Pending {
    /// The newest cut not yet acked upstream (cumulative, so it replaces
    /// any older pending cut).
    latest: Option<CutState>,
    /// Set by [`UpstreamStreamer::finish`]; the worker exits once the
    /// pending slot is drained (or immediately if nothing is pending).
    stop: bool,
    /// Progress the worker publishes for `finish` to wait on.
    report: StreamerReport,
}

/// The background delta shipper. Construct with [`UpstreamStreamer::start`],
/// install [`UpstreamStreamer::hook`] as the serve run's cut hook, and call
/// [`UpstreamStreamer::finish`] with the final merged state once the serve
/// run returns.
pub struct UpstreamStreamer {
    shared: Arc<Shared>,
    handle: Option<thread::JoinHandle<()>>,
}

impl UpstreamStreamer {
    /// Spawns the worker thread.
    pub fn start(cfg: StreamerConfig) -> UpstreamStreamer {
        let shared = Arc::new(Shared {
            pending: Mutex::new(Pending {
                latest: None,
                stop: false,
                report: StreamerReport::default(),
            }),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = thread::spawn(move || Worker::new(cfg, worker_shared).run());
        UpstreamStreamer {
            shared,
            handle: Some(handle),
        }
    }

    /// A [`CutHook`] that offers each periodic cut to the worker.
    pub fn hook(&self) -> CutHook {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |cut: CutState| {
            let mut pending = shared.pending.lock();
            pending.latest = Some(cut);
            shared.cv.notify_all();
        })
    }

    /// Offers one cut directly (what the hook does; public for the final
    /// flush and for tests).
    pub fn offer(&self, cut: CutState) {
        let mut pending = self.shared.pending.lock();
        pending.latest = Some(cut);
        self.shared.cv.notify_all();
    }

    /// Offers `final_cut`, waits up to `deadline` for it to be acked
    /// upstream, then stops and joins the worker. Returns the worker's
    /// report; `Err` carries the report when the flush did not complete in
    /// time (the aggregator stayed unreachable).
    pub fn finish(
        mut self,
        final_cut: CutState,
        deadline: Duration,
    ) -> Result<StreamerReport, StreamerReport> {
        let target = final_cut.reports;
        self.offer(final_cut);
        let start = Instant::now();
        let flushed = {
            let mut pending = self.shared.pending.lock();
            loop {
                if pending.report.flushed_reports >= target && pending.latest.is_none() {
                    break true;
                }
                if start.elapsed() >= deadline {
                    break false;
                }
                let (guard, _timeout) = self
                    .shared
                    .cv
                    .wait_timeout(pending, Duration::from_millis(20));
                pending = guard;
            }
        };
        {
            let mut pending = self.shared.pending.lock();
            pending.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let report = self.shared.pending.lock().report.clone();
        if flushed {
            Ok(report)
        } else {
            Err(report)
        }
    }

    /// Stops the worker without waiting for pending cuts — the "node was
    /// killed" path the chaos harness exercises.
    pub fn abandon(mut self) {
        {
            let mut pending = self.shared.pending.lock();
            pending.stop = true;
            pending.latest = None;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Worker-local shipping state.
struct Worker {
    cfg: StreamerConfig,
    shared: Arc<Shared>,
    /// The last cut the aggregator acked (None = nothing acked yet; the
    /// implicit zero cut).
    acked: Option<CutState>,
    /// The aggregator's last applied epoch for this node, as of the most
    /// recent handshake or ack.
    acked_epoch: u64,
    /// Sent but unacked: `(epoch, cut)` — resolved at the next handshake.
    inflight: Option<(u64, CutState)>,
    /// The next delta must be a full cumulative replacement.
    force_full: bool,
    conn: Option<TcpStream>,
}

impl Worker {
    fn new(cfg: StreamerConfig, shared: Arc<Shared>) -> Worker {
        Worker {
            cfg,
            shared,
            acked: None,
            acked_epoch: 0,
            inflight: None,
            force_full: false,
            conn: None,
        }
    }

    fn run(mut self) {
        loop {
            // Take the newest pending cut (coalesced), or exit on stop.
            let cut = {
                let mut pending = self.shared.pending.lock();
                loop {
                    if let Some(cut) = pending.latest.take() {
                        break cut;
                    }
                    if pending.stop {
                        return;
                    }
                    let (guard, _timeout) = self
                        .shared
                        .cv
                        .wait_timeout(pending, Duration::from_millis(50));
                    pending = guard;
                }
            };
            // Nothing new since the last ack: skip the exchange entirely.
            if self.acked.as_ref() == Some(&cut) {
                self.publish(|_| {});
                continue;
            }
            // Ship, retrying until acked or stopped. A newer pending cut
            // does not abort the attempt — cumulative cuts mean the next
            // loop iteration simply ships the newer one on top.
            loop {
                match self.ship(&cut) {
                    Ok(full) => {
                        let reports = cut.reports;
                        self.publish(move |r| {
                            r.deltas_acked += 1;
                            if full {
                                r.full_resyncs += 1;
                            }
                            r.flushed_reports = reports;
                        });
                        break;
                    }
                    Err(_e) => {
                        self.conn = None;
                        if self.shared.pending.lock().stop {
                            return;
                        }
                        thread::sleep(self.cfg.reconnect_delay);
                    }
                }
            }
        }
    }

    fn publish(&self, f: impl FnOnce(&mut StreamerReport)) {
        let mut pending = self.shared.pending.lock();
        f(&mut pending.report);
        self.shared.cv.notify_all();
    }

    /// One shipping attempt for `cut`; returns whether a full resync was
    /// used. Any error leaves the connection torn down for a clean retry.
    fn ship(&mut self, cut: &CutState) -> Result<bool, WireError> {
        if self.conn.is_none() {
            self.handshake()?;
        }
        let full = self.force_full || self.acked.is_none();
        let delta = self.build_delta(cut, full)?;
        let epoch = delta.epoch;
        let frame = Frame {
            kind: FrameKind::Delta,
            plan_hash: self.cfg.plan_hash,
            payload: felip_server::wire::encode_delta(&delta)?,
        };
        let stream = match self.conn.as_mut() {
            Some(s) => s,
            // Unreachable (handshake just set it); treated as a retryable
            // transport error rather than a panic.
            None => return Err(WireError::Io(std::io::ErrorKind::NotConnected.into())),
        };
        write_frame(stream, &frame)?;
        self.inflight = Some((epoch, cut.clone()));
        felip_obs::counter!("cluster.delta.sent", 1, "deltas");
        let reply = match read_frame(stream)? {
            Some(reply) => reply,
            None => return Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        };
        match reply.kind {
            FrameKind::DeltaAck => {
                let (ack_epoch, last_applied, status) = decode_delta_ack(&reply.payload)?;
                if ack_epoch != epoch {
                    return Err(WireError::Malformed(format!(
                        "delta ack for epoch {ack_epoch}, expected {epoch}"
                    )));
                }
                self.inflight = None;
                match status {
                    DeltaStatus::Applied | DeltaStatus::Duplicate => {
                        self.acked = Some(cut.clone());
                        self.acked_epoch = last_applied;
                        self.force_full = false;
                        Ok(full)
                    }
                    DeltaStatus::ResyncRequired => {
                        // Cursor disagreement: next attempt replaces our
                        // whole view of this node.
                        self.acked_epoch = last_applied;
                        self.force_full = true;
                        Err(WireError::Rejected("aggregator demands resync".into()))
                    }
                }
            }
            FrameKind::Error => Err(WireError::Rejected(
                String::from_utf8_lossy(&reply.payload).into_owned(),
            )),
            other => Err(WireError::Malformed(format!(
                "unexpected {other:?} reply to delta"
            ))),
        }
    }

    /// Connects and handshakes, resolving the in-flight window against the
    /// aggregator's echoed epoch cursor.
    fn handshake(&mut self) -> Result<(), WireError> {
        let stream = TcpStream::connect(&self.cfg.upstream)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.io_timeout))?;
        stream.set_write_timeout(Some(self.cfg.io_timeout))?;
        let mut stream = stream;
        let hello = Frame {
            kind: FrameKind::Hello,
            plan_hash: self.cfg.plan_hash,
            payload: encode_hello(self.cfg.node_id),
        };
        write_frame(&mut stream, &hello)?;
        let reply = match read_frame(&mut stream)? {
            Some(reply) => reply,
            None => return Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        };
        let remote_last = match reply.kind {
            FrameKind::Ack => decode_ack(&reply.payload)?.0,
            FrameKind::Error => {
                return Err(WireError::Rejected(
                    String::from_utf8_lossy(&reply.payload).into_owned(),
                ))
            }
            other => {
                return Err(WireError::Malformed(format!(
                    "unexpected {other:?} reply to hello"
                )))
            }
        };
        match self.inflight.take() {
            // The lost-ack case: the delta we never heard back about did
            // land — commit it locally and continue incrementally.
            Some((epoch, cut)) if remote_last == epoch => {
                self.acked = Some(cut);
                self.acked_epoch = remote_last;
            }
            _ => {
                if remote_last != self.acked_epoch {
                    // Any other disagreement (fresh aggregator, resumed
                    // node, state from a previous life): replace wholesale.
                    self.acked_epoch = remote_last;
                    self.force_full = true;
                }
            }
        }
        self.conn = Some(stream);
        Ok(())
    }

    /// Derives the wire delta for `cut`: the element-wise increment over
    /// the last acked cut, or the full cumulative state.
    fn build_delta(&mut self, cut: &CutState, full: bool) -> Result<CountDelta, WireError> {
        let epoch = self.acked_epoch + 1;
        if full {
            return Ok(CountDelta {
                node_id: self.cfg.node_id,
                epoch,
                flavor: DeltaFlavor::Full,
                total: cut.reports,
                counts: cut.counts.clone(),
                group_sizes: cut.group_sizes.iter().map(|&s| s as u64).collect(),
            });
        }
        // Cuts are monotone (counts only grow), so subtraction cannot
        // underflow; if it ever does the local bookkeeping is wrong and a
        // full resync repairs it.
        let base = match self.acked.as_ref() {
            Some(base) => base,
            None => return Err(WireError::Malformed("incremental without a base".into())),
        };
        let mut counts = Vec::with_capacity(cut.counts.len());
        for (cur_grid, base_grid) in cut.counts.iter().zip(&base.counts) {
            let mut grid = Vec::with_capacity(cur_grid.len());
            for (&c, &b) in cur_grid.iter().zip(base_grid) {
                match c.checked_sub(b) {
                    Some(d) => grid.push(d),
                    None => {
                        self.force_full = true;
                        return Err(WireError::Malformed(
                            "cut regressed below acked base".into(),
                        ));
                    }
                }
            }
            counts.push(grid);
        }
        let mut group_sizes = Vec::with_capacity(cut.group_sizes.len());
        for (&c, &b) in cut.group_sizes.iter().zip(&base.group_sizes) {
            match (c as u64).checked_sub(b as u64) {
                Some(d) => group_sizes.push(d),
                None => {
                    self.force_full = true;
                    return Err(WireError::Malformed(
                        "cut regressed below acked base".into(),
                    ));
                }
            }
        }
        let total = match cut.reports.checked_sub(base.reports) {
            Some(t) => t,
            None => {
                self.force_full = true;
                return Err(WireError::Malformed(
                    "cut regressed below acked base".into(),
                ));
            }
        };
        Ok(CountDelta {
            node_id: self.cfg.node_id,
            epoch,
            flavor: DeltaFlavor::Incremental,
            total,
            counts,
            group_sizes,
        })
    }
}
