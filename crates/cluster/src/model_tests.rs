//! Model-checked concurrency tests for the cluster tier (DESIGN.md §14,
//! §16): the `felip-sync` scheduler explores every interleaving (up to its
//! preemption bound) of delta applies and merged-state captures, so the
//! epoch-handoff and merge-vs-apply invariants hold by exhaustion.
//!
//! Compiled only under `--features model`; `cargo test -p felip-cluster
//! --features model model_` runs just these.

use felip_sync::model;
use felip_sync::{thread, Arc};

use felip::aggregator::OracleSet;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};
use felip_server::wire::{CountDelta, DeltaFlavor, DeltaStatus};

use crate::state::ClusterState;

/// A tiny but real plan shared by every schedule of a check (immutable, so
/// building it once outside the explored closure keeps schedules cheap).
fn tiny_plan() -> (Arc<CollectionPlan>, Arc<OracleSet>) {
    let schema = Schema::new(vec![Attribute::numerical("a", 8)]).expect("static schema");
    let plan = Arc::new(
        CollectionPlan::build(&schema, 4, &FelipConfig::new(1.0), 5).expect("static plan"),
    );
    let oracles = Arc::new(OracleSet::build(&plan));
    (plan, oracles)
}

/// A delta whose single grid carries `value` in cell 0 and one report.
fn unit_delta(
    plan: &Arc<CollectionPlan>,
    node: u64,
    epoch: u64,
    flavor: DeltaFlavor,
    value: u64,
    reports: u64,
) -> CountDelta {
    let counts: Vec<Vec<u64>> = plan
        .grids()
        .iter()
        .enumerate()
        .map(|(g, grid)| {
            let mut cells = vec![0u64; grid.num_cells() as usize];
            if g == 0 && !cells.is_empty() {
                cells[0] = value;
            }
            cells
        })
        .collect();
    let mut group_sizes = vec![0u64; plan.num_groups()];
    if let Some(first) = group_sizes.first_mut() {
        *first = reports;
    }
    CountDelta {
        node_id: node,
        epoch,
        flavor,
        total: reports,
        counts,
        group_sizes,
    }
}

/// Two connections racing the *same* node's next epoch (a reconnect racing
/// a not-yet-dead predecessor) serialise on the cluster lock: exactly one
/// apply wins, the other is a duplicate, and the counts reflect the winner
/// exactly once — under every interleaving.
#[test]
fn model_racing_same_epoch_applies_exactly_once() {
    let (plan, oracles) = tiny_plan();
    let stats = model::check(|| {
        let state = ClusterState::new(Arc::clone(&plan), Arc::clone(&oracles));
        let d = unit_delta(&plan, 7, 1, DeltaFlavor::Incremental, 3, 1);
        let (a, b) = thread::scope(|s| {
            let ta = s.spawn(|| state.apply(&d).expect("valid delta").status);
            let tb = s.spawn(|| state.apply(&d).expect("valid delta").status);
            (ta.join().expect("join a"), tb.join().expect("join b"))
        });
        let statuses = [a, b];
        assert_eq!(
            statuses
                .iter()
                .filter(|s| **s == DeltaStatus::Applied)
                .count(),
            1,
            "exactly one racer may apply epoch 1: {statuses:?}"
        );
        assert_eq!(
            statuses
                .iter()
                .filter(|s| **s == DeltaStatus::Duplicate)
                .count(),
            1,
            "the loser must be re-acked as a duplicate: {statuses:?}"
        );
        let merged = state.merged().expect("merged");
        assert_eq!(merged.counts()[0][0], 3, "counts applied exactly once");
        assert_eq!(state.last_epoch(7), 1);
    })
    .expect("no violation");
    assert!(stats.schedules > 1, "the race must actually interleave");
}

/// A merged-state capture racing a delta apply never observes torn state:
/// the merge sees either the whole delta or none of it, and the epoch
/// cursor agrees with the counts it covers.
#[test]
fn model_merge_never_tears_an_apply() {
    let (plan, oracles) = tiny_plan();
    let stats = model::check(|| {
        let state = ClusterState::new(Arc::clone(&plan), Arc::clone(&oracles));
        state
            .apply(&unit_delta(&plan, 1, 1, DeltaFlavor::Incremental, 5, 2))
            .expect("seed delta");
        let d2 = unit_delta(&plan, 1, 2, DeltaFlavor::Incremental, 4, 1);
        thread::scope(|s| {
            let applier = s.spawn(|| {
                state.apply(&d2).expect("valid delta");
            });
            let observer = s.spawn(|| {
                let merged = state.merged().expect("merged");
                let epoch = state.last_epoch(1);
                let cell = merged.counts()[0][0];
                // Before the apply: 5 at epoch ≥ 1. After: 9 at epoch 2.
                // Anything else is a torn read.
                assert!(
                    cell == 5 || cell == 9,
                    "merge saw half an apply: cell {cell}"
                );
                if cell == 9 {
                    // counts() includes d2, so the cursor must as well by
                    // the time the apply finishes — but the observer reads
                    // the epoch *after* the merge, so 9 implies epoch 2.
                    assert_eq!(epoch, 2, "counts ahead of the epoch cursor");
                }
            });
            applier.join().expect("join applier");
            observer.join().expect("join observer");
        });
        let merged = state.merged().expect("merged");
        assert_eq!(merged.counts()[0][0], 9);
        assert_eq!(state.last_epoch(1), 2);
    })
    .expect("no violation");
    assert!(stats.schedules > 1);
}

/// The epoch handoff across a full resync: a late incremental from the
/// node's previous life racing the full replacement can never double-count
/// — the full's higher epoch makes the stale incremental a duplicate, in
/// every interleaving.
#[test]
fn model_full_resync_wins_over_stale_incremental() {
    let (plan, oracles) = tiny_plan();
    let stats = model::check(|| {
        let state = ClusterState::new(Arc::clone(&plan), Arc::clone(&oracles));
        state
            .apply(&unit_delta(&plan, 3, 1, DeltaFlavor::Incremental, 2, 1))
            .expect("seed delta");
        // The node died after epoch 1 and rejoined with its cumulative
        // truth at epoch 2 (full); a zombie connection re-sends epoch 2 as
        // an incremental at the same time.
        let full = unit_delta(&plan, 3, 2, DeltaFlavor::Full, 6, 3);
        let stale = unit_delta(&plan, 3, 2, DeltaFlavor::Incremental, 4, 2);
        thread::scope(|s| {
            let tf = s.spawn(|| state.apply(&full).expect("valid full"));
            let ts = s.spawn(|| state.apply(&stale).expect("valid stale"));
            let rf = tf.join().expect("join full");
            let rs = ts.join().expect("join stale");
            let cell = state.merged().expect("merged").counts()[0][0];
            match (rf.status, rs.status) {
                // Full first: the stale resend is a duplicate of epoch 2.
                (DeltaStatus::Applied, DeltaStatus::Duplicate) => {
                    assert_eq!(cell, 6, "replacement state must stand alone")
                }
                // Stale incremental first (2+4=6), then the full replaces
                // wholesale at the same value — still exactly 6.
                (DeltaStatus::Duplicate, DeltaStatus::Applied) => assert_eq!(cell, 6),
                other => panic!("impossible outcome pair {other:?}, cell {cell}"),
            }
            assert_eq!(state.last_epoch(3), 2);
        });
    })
    .expect("no violation");
    assert!(stats.schedules > 1);
}
