//! The aggregator tier's cluster-wide state: one cumulative [`Aggregator`]
//! per ingest node, merged on demand into the cluster view (DESIGN.md §16).
//!
//! ## Why per-node cumulative state
//!
//! FELIP count vectors are exact `u64` tallies, so the cluster total is
//! *defined* as the sum of each node's cumulative counts — addition
//! commutes and associates, which is what makes the merged result
//! bit-identical to a single-node run over the union stream regardless of
//! delta arrival order. Keeping the per-node cumulative state (rather than
//! a single running sum) buys the loss-free rejoin path: a node that lost
//! track of what it already streamed (crash, resume from an older
//! snapshot, aggregator restart) sends its full cumulative state and the
//! aggregator *replaces* its view of that node. Replacement is idempotent
//! and self-correcting in both directions — it can never double-count and
//! converges to exact counts as soon as the node itself has re-ingested
//! its share.
//!
//! ## Epoch discipline
//!
//! Deltas are epoch-numbered per node, mirroring the client batch-cursor
//! machinery: `epoch ≤ last` is a duplicate (re-acked, not re-applied),
//! an incremental delta must be exactly `last + 1` (a gap demands a full
//! resync), and a full delta is accepted at any `epoch > last`.
//!
//! ## Durability (FCLU)
//!
//! The aggregator persists its per-node states in one checksummed `FCLU`
//! container — a sequence of embedded FSNP snapshots plus epochs:
//!
//! ```text
//! magic:u32 "FCLU" | version:u8 | reserved:[u8;3] | plan_hash:u64
//! num_nodes:u32  then per node:
//!   node_id:u64  epoch:u64  snap_len:u32  FSNP bytes (Snapshot::encode)
//! crc32:u32 over everything above
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::{Arc, Mutex};

use felip::aggregator::{Aggregator, OracleSet};
use felip::plan::CollectionPlan;
use felip_server::snapshot::Snapshot;
use felip_server::wire::{self, CountDelta, DeltaFlavor, DeltaStatus, WireError};

/// Cluster-state magic: the bytes `FCLU` read as a little-endian u32.
pub const CLUSTER_MAGIC: u32 = u32::from_le_bytes(*b"FCLU");

/// Current cluster-state container version.
pub const CLUSTER_VERSION: u8 = 1;

/// One ingest node as the aggregator sees it: its cumulative counts and
/// the last delta epoch applied.
struct NodeState {
    agg: Aggregator,
    epoch: u64,
}

/// The fate of one delta, plus the node's resulting cursor — what the
/// `DeltaAck` echoes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyResult {
    /// Applied / duplicate / resync-required.
    pub status: DeltaStatus,
    /// The node's highest applied epoch after this delta.
    pub last_applied: u64,
}

/// Cluster-wide merge state: per-node cumulative aggregators behind one
/// lock, so a delta apply and a merged-snapshot capture can never observe
/// each other half-done (the race the model tests pin down).
pub struct ClusterState {
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    plan_hash: u64,
    nodes: Mutex<BTreeMap<u64, NodeState>>,
    /// Bumped (under the nodes lock) every time a delta is applied — the
    /// cheap "did the merged view change?" token the query cache keys on.
    version: AtomicU64,
}

impl ClusterState {
    /// An empty cluster state for `plan`.
    pub fn new(plan: Arc<CollectionPlan>, oracles: Arc<OracleSet>) -> ClusterState {
        let plan_hash = plan.schema_hash();
        ClusterState {
            plan,
            oracles,
            plan_hash,
            nodes: Mutex::new(BTreeMap::new()),
            version: AtomicU64::new(0),
        }
    }

    /// `plan.schema_hash()` — what every frame is checked against.
    pub fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// The shared plan handle.
    pub fn plan_handle(&self) -> Arc<CollectionPlan> {
        Arc::clone(&self.plan)
    }

    /// The shared oracle-set handle.
    pub fn oracles_handle(&self) -> Arc<OracleSet> {
        Arc::clone(&self.oracles)
    }

    /// The current change version: bumped on every applied delta. A query
    /// cache whose version still matches knows the merged view is
    /// unchanged without merging anything.
    pub fn change_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The node's highest applied epoch (0 for an unknown node) — what the
    /// `Hello` ack echoes so a reconnecting node resyncs its cursor.
    pub fn last_epoch(&self, node_id: u64) -> u64 {
        self.nodes
            .lock()
            .get(&node_id)
            .map(|n| n.epoch)
            .unwrap_or(0)
    }

    /// `(node_id, epoch, reports)` per known node, sorted by node id.
    pub fn node_rows(&self) -> Vec<(u64, u64, u64)> {
        self.nodes
            .lock()
            .iter()
            .map(|(&id, n)| (id, n.epoch, n.agg.reports_ingested() as u64))
            .collect()
    }

    /// Applies one delta under the epoch discipline described in the
    /// module docs. Counts validation (grid/group shapes against the plan,
    /// total vs. group sizes) happens before any state changes, so a
    /// malformed delta can neither corrupt counts nor advance the cursor.
    pub fn apply(&self, delta: &CountDelta) -> Result<ApplyResult, WireError> {
        let group_sizes = converted_group_sizes(&delta.group_sizes)?;
        let sum: u64 = delta
            .group_sizes
            .iter()
            .try_fold(0u64, |acc, &s| acc.checked_add(s))
            .ok_or_else(|| WireError::Malformed("delta group sizes overflow u64".to_string()))?;
        if sum != delta.total {
            return Err(WireError::Malformed(format!(
                "delta total {} disagrees with group sizes summing to {sum}",
                delta.total
            )));
        }
        // Restoring through the aggregator validates every shape against
        // the plan; the restored value doubles as the merge operand.
        let incoming = Aggregator::restore(
            Arc::clone(&self.plan),
            Arc::clone(&self.oracles),
            delta.counts.clone(),
            group_sizes,
        )
        .map_err(|e| WireError::Malformed(e.to_string()))?;

        let mut nodes = self.nodes.lock();
        let node = nodes.entry(delta.node_id).or_insert_with(|| NodeState {
            agg: Aggregator::with_oracles(Arc::clone(&self.plan), Arc::clone(&self.oracles)),
            epoch: 0,
        });
        if delta.epoch <= node.epoch {
            felip_obs::counter!("cluster.delta.duplicate", 1, "deltas");
            return Ok(ApplyResult {
                status: DeltaStatus::Duplicate,
                last_applied: node.epoch,
            });
        }
        match delta.flavor {
            DeltaFlavor::Full => {
                // Replacement: the node's cumulative truth wins wholesale.
                node.agg = incoming;
                node.epoch = delta.epoch;
            }
            DeltaFlavor::Incremental => {
                if Some(delta.epoch) != node.epoch.checked_add(1) {
                    felip_obs::counter!("cluster.delta.resync", 1, "deltas");
                    return Ok(ApplyResult {
                        status: DeltaStatus::ResyncRequired,
                        last_applied: node.epoch,
                    });
                }
                if let Err(e) = node.agg.merge(&incoming) {
                    // The failed merge left this node's cumulative state
                    // unspecified: discard it so the next delta (rejected
                    // below as non-successor) forces a full resync instead
                    // of merging onto corrupt counts.
                    nodes.remove(&delta.node_id);
                    return Err(WireError::Malformed(format!(
                        "delta apply failed, full resync required: {e}"
                    )));
                }
                node.epoch = delta.epoch;
            }
        }
        // Bumped while the nodes guard is still held, so a
        // `merged_versioned` cut can never pair old counts with the new
        // version (or vice versa).
        self.version.fetch_add(1, Ordering::Release);
        felip_obs::counter!("cluster.delta.applied", 1, "deltas");
        let last_applied = node.epoch;
        // Keep the merged-view gauge live during ingestion, not just on
        // snapshot/shutdown merges — `felip stat` mid-run reads it.
        let total: u64 = nodes.values().fold(0u64, |acc, n| {
            // ARITH: live gauge only — a saturated reading still tells the
            // operator the tier is ingesting; exact totals come from merges.
            acc.saturating_add(n.agg.reports_ingested() as u64)
        });
        felip_obs::gauge!("cluster.merge.reports", total, "reports");
        Ok(ApplyResult {
            status: DeltaStatus::Applied,
            last_applied,
        })
    }

    /// The cluster-wide merge: the sum of every node's cumulative state.
    /// Taken under the nodes lock, so it is a consistent cut — no delta is
    /// ever half-included. `Err` means a cross-node count overflowed `u64`
    /// (per-node state is untouched).
    pub fn merged(&self) -> Result<Aggregator, felip_common::Error> {
        Ok(self.merged_versioned()?.0)
    }

    /// [`merged`](ClusterState::merged) plus the change version read under
    /// the same nodes guard — the exact token the merged counts correspond
    /// to, for query-cache keying.
    pub fn merged_versioned(&self) -> Result<(Aggregator, u64), felip_common::Error> {
        let nodes = self.nodes.lock();
        let version = self.version.load(Ordering::Acquire);
        let mut merged =
            Aggregator::with_oracles(Arc::clone(&self.plan), Arc::clone(&self.oracles));
        for node in nodes.values() {
            merged.merge(&node.agg)?;
        }
        felip_obs::gauge!(
            "cluster.merge.reports",
            merged.reports_ingested(),
            "reports"
        );
        Ok((merged, version))
    }

    /// A plain merged FSNP snapshot (no dedup cursors — those live on the
    /// ingest tier), for `felip estimate` / `felip verify`.
    pub fn capture_merged(&self) -> Result<Snapshot, felip_common::Error> {
        Ok(Snapshot::capture(&self.merged()?, self.plan_hash))
    }

    /// Serialises the full per-node container (FCLU).
    pub fn encode(&self) -> Vec<u8> {
        let nodes = self.nodes.lock();
        let mut buf = Vec::new();
        buf.extend_from_slice(&CLUSTER_MAGIC.to_le_bytes());
        buf.push(CLUSTER_VERSION);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&self.plan_hash.to_le_bytes());
        buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
        for (&id, node) in nodes.iter() {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&node.epoch.to_le_bytes());
            let snap = Snapshot::capture(&node.agg, self.plan_hash).encode();
            buf.extend_from_slice(&(snap.len() as u32).to_le_bytes());
            buf.extend_from_slice(&snap);
        }
        let crc = wire::crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and validates an FCLU container into a live cluster state.
    pub fn decode(
        bytes: &[u8],
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
    ) -> Result<ClusterState, WireError> {
        if bytes.len() < 20 {
            return Err(WireError::Truncated {
                have: bytes.len(),
                need: 20,
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let expected = wire::crc32(body);
        let actual = le_u32(&bytes[bytes.len() - 4..]);
        if expected != actual {
            return Err(WireError::BadCrc { expected, actual });
        }
        let magic = le_u32(&body[0..4]);
        if magic != CLUSTER_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if body[4] != CLUSTER_VERSION {
            return Err(WireError::BadVersion(body[4]));
        }
        if body[5..8] != [0u8; 3] {
            return Err(WireError::Malformed("reserved bytes are nonzero".into()));
        }
        let plan_hash = le_u64(&body[8..16]);
        let ours = plan.schema_hash();
        if plan_hash != ours {
            return Err(WireError::PlanMismatch {
                ours,
                theirs: plan_hash,
            });
        }
        let num_nodes = le_u32(&body[16..20]) as usize;
        let mut pos = 20usize;
        let mut nodes = BTreeMap::new();
        for _ in 0..num_nodes {
            if body.len() - pos < 20 {
                return Err(WireError::Truncated {
                    have: body.len() - pos,
                    need: 20,
                });
            }
            let node_id = le_u64(&body[pos..pos + 8]);
            let epoch = le_u64(&body[pos + 8..pos + 16]);
            let snap_len = le_u32(&body[pos + 16..pos + 20]) as usize;
            pos += 20;
            if body.len() - pos < snap_len {
                return Err(WireError::Truncated {
                    have: body.len() - pos,
                    need: snap_len,
                });
            }
            let snap = Snapshot::decode(&body[pos..pos + snap_len])?;
            pos += snap_len;
            let agg = snap.restore(Arc::clone(&plan), Arc::clone(&oracles))?;
            if nodes.insert(node_id, NodeState { agg, epoch }).is_some() {
                return Err(WireError::Malformed(format!(
                    "node {node_id} appears twice in cluster state"
                )));
            }
        }
        if pos != body.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after cluster state",
                body.len() - pos
            )));
        }
        // A restored state starts its version counter over at zero; the
        // query engine paired with it must likewise start cold (epoch 0)
        // so a resumed aggregator can never serve a pre-restore cached
        // grid against the reset counter.
        Ok(ClusterState {
            plan,
            oracles,
            plan_hash: ours,
            nodes: Mutex::new(nodes),
            version: AtomicU64::new(0),
        })
    }

    /// Writes the container atomically (temp + fsync + rename), same
    /// discipline as FSNP snapshots.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a container from disk.
    pub fn read(
        path: &Path,
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
    ) -> Result<ClusterState, WireError> {
        let bytes = std::fs::read(path)?;
        ClusterState::decode(&bytes, plan, oracles)
    }
}

/// Delta group sizes travel as `u64`; the aggregator stores `usize`.
fn converted_group_sizes(sizes: &[u64]) -> Result<Vec<usize>, WireError> {
    sizes
        .iter()
        .map(|&s| {
            usize::try_from(s)
                .map_err(|_| WireError::Malformed(format!("group size {s} exceeds usize")))
        })
        .collect()
}

#[inline]
fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

#[inline]
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip::config::FelipConfig;
    use felip_common::{Attribute, Schema};

    fn tiny_plan() -> Arc<CollectionPlan> {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 4),
        ])
        .unwrap();
        Arc::new(CollectionPlan::build(&schema, 60, &FelipConfig::new(1.0), 3).unwrap())
    }

    fn state() -> ClusterState {
        let plan = tiny_plan();
        let oracles = Arc::new(OracleSet::build(&plan));
        ClusterState::new(plan, oracles)
    }

    fn delta_of(
        state: &ClusterState,
        node: u64,
        epoch: u64,
        flavor: DeltaFlavor,
        users: std::ops::Range<usize>,
        seed: u64,
    ) -> CountDelta {
        let agg =
            felip_server::loadgen::offline_reference(&state.plan_handle(), users, seed).unwrap();
        CountDelta {
            node_id: node,
            epoch,
            flavor,
            total: agg.reports_ingested() as u64,
            counts: agg.counts().to_vec(),
            group_sizes: agg.group_sizes().iter().map(|&s| s as u64).collect(),
        }
    }

    #[test]
    fn incremental_epochs_apply_exactly_once() {
        let st = state();
        let d1 = delta_of(&st, 1, 1, DeltaFlavor::Incremental, 0..10, 7);
        let d2 = delta_of(&st, 1, 2, DeltaFlavor::Incremental, 10..20, 7);
        assert_eq!(st.apply(&d1).unwrap().status, DeltaStatus::Applied);
        // A resent epoch is a duplicate: re-acked, never re-applied.
        let dup = st.apply(&d1).unwrap();
        assert_eq!(dup.status, DeltaStatus::Duplicate);
        assert_eq!(dup.last_applied, 1);
        assert_eq!(st.apply(&d2).unwrap().status, DeltaStatus::Applied);
        let expect = felip_server::loadgen::offline_reference(&st.plan_handle(), 0..20, 7).unwrap();
        assert_eq!(st.merged().expect("merged").counts(), expect.counts());
        assert_eq!(
            st.merged().expect("merged").group_sizes(),
            expect.group_sizes()
        );
    }

    #[test]
    fn incremental_gap_demands_resync_and_full_replaces() {
        let st = state();
        let d1 = delta_of(&st, 1, 1, DeltaFlavor::Incremental, 0..10, 3);
        assert_eq!(st.apply(&d1).unwrap().status, DeltaStatus::Applied);
        // Epoch 3 skips 2: the cursor must not move.
        let gap = delta_of(&st, 1, 3, DeltaFlavor::Incremental, 10..20, 3);
        let r = st.apply(&gap).unwrap();
        assert_eq!(r.status, DeltaStatus::ResyncRequired);
        assert_eq!(r.last_applied, 1);
        // The full fallback replaces the node's whole view, at any higher
        // epoch — regardless of what the earlier incremental contained.
        let full = delta_of(&st, 1, 5, DeltaFlavor::Full, 0..20, 3);
        assert_eq!(st.apply(&full).unwrap().status, DeltaStatus::Applied);
        assert_eq!(st.last_epoch(1), 5);
        let expect = felip_server::loadgen::offline_reference(&st.plan_handle(), 0..20, 3).unwrap();
        assert_eq!(st.merged().expect("merged").counts(), expect.counts());
    }

    #[test]
    fn malformed_deltas_cannot_move_the_cursor() {
        let st = state();
        let mut bad = delta_of(&st, 1, 1, DeltaFlavor::Incremental, 0..5, 1);
        bad.total += 1; // disagrees with group sizes
        assert!(st.apply(&bad).is_err());
        assert_eq!(st.last_epoch(1), 0);
        let mut bad_shape = delta_of(&st, 1, 1, DeltaFlavor::Incremental, 0..5, 1);
        bad_shape.counts.pop(); // wrong grid count for the plan
        assert!(st.apply(&bad_shape).is_err());
        assert_eq!(st.last_epoch(1), 0);
    }

    #[test]
    fn fclu_round_trips_and_rejects_corruption() {
        let st = state();
        for node in 1..=3u64 {
            let lo = (node as usize - 1) * 10;
            let d = delta_of(&st, node, 1, DeltaFlavor::Full, lo..lo + 10, 11);
            st.apply(&d).unwrap();
        }
        let bytes = st.encode();
        let restored = ClusterState::decode(
            &bytes,
            st.plan_handle(),
            Arc::new(OracleSet::build(&st.plan_handle())),
        )
        .unwrap();
        assert_eq!(restored.node_rows(), st.node_rows());
        assert_eq!(
            restored.merged().expect("merged").counts(),
            st.merged().expect("merged").counts()
        );
        assert_eq!(
            restored.merged().expect("merged").counts_digest(),
            st.merged().expect("merged").counts_digest()
        );
        // Any flipped byte is caught by the CRC (or a structural check).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                ClusterState::decode(
                    &bad,
                    st.plan_handle(),
                    Arc::new(OracleSet::build(&st.plan_handle()))
                )
                .is_err(),
                "flip at {i} accepted"
            );
        }
        for cut in (0..bytes.len()).step_by(13) {
            assert!(ClusterState::decode(
                &bytes[..cut],
                st.plan_handle(),
                Arc::new(OracleSet::build(&st.plan_handle()))
            )
            .is_err());
        }
    }

    #[test]
    fn fclu_survives_a_disk_round_trip() {
        let st = state();
        let d = delta_of(&st, 9, 4, DeltaFlavor::Full, 0..25, 2);
        st.apply(&d).unwrap();
        let dir = std::env::temp_dir().join(format!("felip-fclu-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.fclu");
        st.write_atomic(&path).unwrap();
        let restored = ClusterState::read(
            &path,
            st.plan_handle(),
            Arc::new(OracleSet::build(&st.plan_handle())),
        )
        .unwrap();
        assert_eq!(restored.last_epoch(9), 4);
        assert_eq!(
            restored.merged().expect("merged").counts(),
            st.merged().expect("merged").counts()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
