//! The aggregator-tier server: accepts ingest-node connections, applies
//! their epoch-numbered deltas to the shared [`ClusterState`], answers
//! `STAT` with process-wide telemetry, and periodically persists both the
//! FCLU per-node container and a plain merged FSNP snapshot.
//!
//! Delta traffic is low-rate by construction (one frame per node per cut
//! interval), so connections are served by a portable thread-per-connection
//! loop over [`TcpTransport`] — the epoll reactor stays an ingest-tier
//! specialisation.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use felip_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use felip_sync::{thread, Arc};

use felip::aggregator::{Aggregator, OracleSet};
use felip::plan::CollectionPlan;
use felip_server::stat::stat_payload;
use felip_server::transport::{RecvOutcome, TcpTransport, Transport};
use felip_server::wire::{
    decode_delta, decode_hello, decode_query, decode_stat, encode_ack, encode_delta_ack,
    encode_query_reply, Frame, FrameKind, WireError,
};

use crate::query::ClusterQuery;
use crate::state::ClusterState;

/// How an aggregator run is wired together.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Listen address (`:0` picks a free port).
    pub addr: String,
    /// Where to persist the merged FSNP snapshot; `None` disables it.
    pub snapshot_path: Option<PathBuf>,
    /// Where to persist the FCLU per-node container; `None` disables it.
    pub state_path: Option<PathBuf>,
    /// FCLU container to restore per-node states (and epochs) from.
    pub resume: Option<PathBuf>,
    /// Cadence of periodic persists (requires a path to write).
    pub persist_every: Duration,
    /// Deadline for finishing a frame once its first byte arrived.
    pub read_timeout: Duration,
    /// Deadline for writing a reply frame.
    pub write_timeout: Duration,
    /// Idle-connection reap window. Generous by default: an ingest node
    /// only speaks once per cut interval.
    pub idle_timeout: Duration,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot_path: None,
            state_path: None,
            resume: None,
            persist_every: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Counters for a completed aggregator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Node connections accepted.
    pub connections: u64,
    /// Deltas applied (incremental + full).
    pub deltas_applied: u64,
    /// Duplicate deltas re-acked.
    pub deltas_duplicate: u64,
    /// Incremental gaps answered with resync-required.
    pub deltas_resync: u64,
    /// Frames rejected with an error reply.
    pub frames_rejected: u64,
}

#[derive(Default)]
struct AtomicAggStats {
    connections: AtomicU64,
    deltas_applied: AtomicU64,
    deltas_duplicate: AtomicU64,
    deltas_resync: AtomicU64,
    frames_rejected: AtomicU64,
}

impl AtomicAggStats {
    fn snapshot(&self) -> AggregatorStats {
        AggregatorStats {
            connections: self.connections.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            deltas_duplicate: self.deltas_duplicate.load(Ordering::Relaxed),
            deltas_resync: self.deltas_resync.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
        }
    }
}

/// The result of a completed (gracefully shut down) aggregator run.
pub struct AggregatorRun {
    /// The cluster-wide merged aggregator.
    pub merged: Aggregator,
    /// `(node_id, epoch, reports)` rows at shutdown.
    pub nodes: Vec<(u64, u64, u64)>,
    /// Run totals.
    pub stats: AggregatorStats,
}

/// Errors starting or running the aggregator.
#[derive(Debug)]
pub enum AggregatorError {
    /// Socket/filesystem failure.
    Io(io::Error),
    /// FCLU/FSNP state could not be read, validated, or restored.
    State(WireError),
}

impl std::fmt::Display for AggregatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregatorError::Io(e) => write!(f, "io error: {e}"),
            AggregatorError::State(e) => write!(f, "state error: {e}"),
        }
    }
}

impl std::error::Error for AggregatorError {}

impl From<io::Error> for AggregatorError {
    fn from(e: io::Error) -> Self {
        AggregatorError::Io(e)
    }
}

impl From<WireError> for AggregatorError {
    fn from(e: WireError) -> Self {
        AggregatorError::State(e)
    }
}

/// A bound (listening, not yet serving) aggregator.
pub struct AggregatorServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ClusterState>,
    query: Arc<ClusterQuery>,
    config: AggregatorConfig,
    shutdown: Arc<AtomicBool>,
}

impl AggregatorServer {
    /// Binds the listen socket, restoring per-node state when configured.
    pub fn bind(
        plan: Arc<CollectionPlan>,
        config: AggregatorConfig,
    ) -> Result<AggregatorServer, AggregatorError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let oracles = Arc::new(OracleSet::build(&plan));
        let state = match &config.resume {
            Some(path) => {
                let restored = ClusterState::read(path, Arc::clone(&plan), oracles)?;
                felip_obs::counter!("cluster.state.restored", 1, "containers");
                restored
            }
            None => ClusterState::new(Arc::clone(&plan), oracles),
        };
        // The query engine is always built cold here — even (especially)
        // on the resume path, so a restarted aggregator can never answer
        // from a grid cached before the restore.
        let query = Arc::new(ClusterQuery::new(&state));
        Ok(AggregatorServer {
            listener,
            local_addr,
            state: Arc::new(state),
            query,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the run when set.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared cluster state (tests peek at it mid-run).
    pub fn state(&self) -> Arc<ClusterState> {
        Arc::clone(&self.state)
    }

    /// Serves until the shutdown flag (or `external_shutdown`) is set,
    /// then persists the final state and returns the merged result.
    pub fn run(
        self,
        external_shutdown: Option<&AtomicBool>,
    ) -> Result<AggregatorRun, AggregatorError> {
        let mut run_span = felip_obs::span!("cluster.run");
        let stats = AtomicAggStats::default();
        let connected = AtomicU64::new(0);
        let stop_persist = AtomicBool::new(false);
        let should_stop = || {
            self.shutdown.load(Ordering::SeqCst)
                || external_shutdown.is_some_and(|f| f.load(Ordering::SeqCst))
        };
        self.listener.set_nonblocking(true)?;

        thread::scope(|scope| -> Result<(), AggregatorError> {
            // Periodic persist: FCLU container + merged FSNP snapshot.
            if self.config.state_path.is_some() || self.config.snapshot_path.is_some() {
                let state = Arc::clone(&self.state);
                let state_path = self.config.state_path.clone();
                let snapshot_path = self.config.snapshot_path.clone();
                let every = self.config.persist_every;
                let stop = &stop_persist;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(25));
                        if last.elapsed() < every {
                            continue;
                        }
                        last = Instant::now();
                        if let Err(e) =
                            persist(&state, state_path.as_deref(), snapshot_path.as_deref())
                        {
                            felip_obs::diag::warn(&format!("cluster persist failed: {e}"));
                        }
                    }
                });
            }

            let mut conns = Vec::new();
            while !should_stop() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        felip_obs::counter!("cluster.accept", 1, "connections");
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let state = Arc::clone(&self.state);
                        let query = Arc::clone(&self.query);
                        let stats = &stats;
                        let connected = &connected;
                        let stop = &should_stop;
                        let config = &self.config;
                        conns.push(scope.spawn(move || {
                            connected.fetch_add(1, Ordering::Relaxed);
                            felip_obs::gauge!(
                                "cluster.node.connected",
                                connected.load(Ordering::Relaxed) as usize,
                                "nodes"
                            );
                            if let Err(e) =
                                handle_conn(&stream, &state, &query, stats, stop, config)
                            {
                                felip_obs::diag::line(&format!("cluster connection closed: {e}"));
                            }
                            connected.fetch_sub(1, Ordering::Relaxed);
                            felip_obs::gauge!(
                                "cluster.node.connected",
                                connected.load(Ordering::Relaxed) as usize,
                                "nodes"
                            );
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(AggregatorError::Io(e)),
                }
            }
            for c in conns {
                let _ = c.join();
            }
            stop_persist.store(true, Ordering::SeqCst);
            Ok(())
        })?;

        // Final persist after every connection drained.
        persist(
            &self.state,
            self.config.state_path.as_deref(),
            self.config.snapshot_path.as_deref(),
        )?;
        let merged = self
            .state
            .merged()
            .map_err(|e| AggregatorError::State(WireError::Malformed(e.to_string())))?;
        run_span.field("reports", merged.reports_ingested());
        Ok(AggregatorRun {
            nodes: self.state.node_rows(),
            merged,
            stats: stats.snapshot(),
        })
    }
}

/// Writes the FCLU container and/or the merged FSNP snapshot.
fn persist(
    state: &ClusterState,
    state_path: Option<&std::path::Path>,
    snapshot_path: Option<&std::path::Path>,
) -> Result<(), AggregatorError> {
    if let Some(path) = state_path {
        state.write_atomic(path)?;
        felip_obs::counter!("cluster.state.persisted", 1, "containers");
    }
    if let Some(path) = snapshot_path {
        state
            .capture_merged()
            .map_err(|e| AggregatorError::State(WireError::Malformed(e.to_string())))?
            .write_verified(path, None)
            .map_err(AggregatorError::State)?;
    }
    Ok(())
}

/// Serves one node connection: Hello resyncs the epoch cursor, Delta
/// applies under the cluster lock, Stat answers pre-plan-check like the
/// ingest tier's admin plane, and Query — which needs no handshake, a
/// read-only client may connect just to ask — answers from the merged
/// cluster view.
fn handle_conn<F: Fn() -> bool>(
    stream: &std::net::TcpStream,
    state: &ClusterState,
    query: &ClusterQuery,
    stats: &AtomicAggStats,
    stop: &F,
    config: &AggregatorConfig,
) -> Result<(), WireError> {
    let mut transport = TcpTransport::new(
        stream,
        stop,
        config.read_timeout,
        config.write_timeout,
        config.idle_timeout,
    )?;
    let plan_hash = state.plan_hash();
    let mut hello_seen = false;
    loop {
        match transport.recv() {
            RecvOutcome::Frame(frame) => {
                let reject = |e: WireError, stats: &AtomicAggStats| {
                    stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                    Frame::error(plan_hash, &e.to_string())
                };
                // STAT first: plan-agnostic, handshake-agnostic.
                if frame.kind == FrameKind::Stat {
                    match decode_stat(&frame.payload) {
                        Ok(mode) => {
                            felip_obs::counter!("cluster.frame.stat", 1, "frames");
                            transport.send(&Frame {
                                kind: FrameKind::StatReply,
                                plan_hash,
                                payload: stat_payload(mode),
                            })?;
                            continue;
                        }
                        Err(e) => {
                            let reply = reject(e, stats);
                            let _ = transport.send(&reply);
                            return Ok(());
                        }
                    }
                }
                if frame.plan_hash != plan_hash {
                    let e = WireError::PlanMismatch {
                        ours: plan_hash,
                        theirs: frame.plan_hash,
                    };
                    let reply = reject(e, stats);
                    let _ = transport.send(&reply);
                    return Ok(());
                }
                match frame.kind {
                    FrameKind::Hello => match decode_hello(&frame.payload) {
                        Ok(node_id) => {
                            hello_seen = true;
                            let last = state.last_epoch(node_id);
                            transport.send(&Frame {
                                kind: FrameKind::Ack,
                                plan_hash,
                                payload: encode_ack(last, 0),
                            })?;
                        }
                        Err(e) => {
                            let reply = reject(e, stats);
                            let _ = transport.send(&reply);
                            return Ok(());
                        }
                    },
                    FrameKind::Delta => {
                        if !hello_seen {
                            let e = WireError::Malformed("delta before hello handshake".into());
                            let reply = reject(e, stats);
                            let _ = transport.send(&reply);
                            return Ok(());
                        }
                        let delta = match decode_delta(&frame.payload) {
                            Ok(d) => d,
                            Err(e) => {
                                let reply = reject(e, stats);
                                let _ = transport.send(&reply);
                                return Ok(());
                            }
                        };
                        let epoch = delta.epoch;
                        let t0 = Instant::now();
                        match state.apply(&delta) {
                            Ok(result) => {
                                felip_obs::hist!(
                                    "cluster.delta.apply",
                                    t0.elapsed().as_micros() as u64,
                                    "us"
                                );
                                match result.status {
                                    felip_server::wire::DeltaStatus::Applied => {
                                        stats.deltas_applied.fetch_add(1, Ordering::Relaxed);
                                    }
                                    felip_server::wire::DeltaStatus::Duplicate => {
                                        stats.deltas_duplicate.fetch_add(1, Ordering::Relaxed);
                                    }
                                    felip_server::wire::DeltaStatus::ResyncRequired => {
                                        stats.deltas_resync.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                transport.send(&Frame {
                                    kind: FrameKind::DeltaAck,
                                    plan_hash,
                                    payload: encode_delta_ack(
                                        epoch,
                                        result.last_applied,
                                        result.status,
                                    ),
                                })?;
                            }
                            Err(e) => {
                                let reply = reject(e, stats);
                                let _ = transport.send(&reply);
                                return Ok(());
                            }
                        }
                    }
                    FrameKind::Query => {
                        let req = match decode_query(&frame.payload) {
                            Ok(r) => r,
                            Err(e) => {
                                let reply = reject(e, stats);
                                let _ = transport.send(&reply);
                                return Ok(());
                            }
                        };
                        match query.answer(state, &req) {
                            Ok(ans) => {
                                transport.send(&Frame {
                                    kind: FrameKind::QueryReply,
                                    plan_hash,
                                    payload: encode_query_reply(&ans),
                                })?;
                            }
                            Err(e) => {
                                // Unanswerable (bad predicates, no reports
                                // yet): answer an Error frame but keep the
                                // connection — the client may retry.
                                felip_obs::counter!("cluster.query.errors", 1, "queries");
                                transport.send(&Frame::error(plan_hash, &e.to_string()))?;
                            }
                        }
                    }
                    other => {
                        let e = WireError::Malformed(format!("node sent {other:?} frame"));
                        let reply = reject(e, stats);
                        let _ = transport.send(&reply);
                        return Ok(());
                    }
                }
            }
            RecvOutcome::Eof | RecvOutcome::Shutdown => return Ok(()),
            RecvOutcome::NoData => continue,
            RecvOutcome::Idle => {
                felip_obs::counter!("cluster.conn.reaped", 1, "connections");
                return Ok(());
            }
            RecvOutcome::Err(e) => {
                stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = transport.send(&Frame::error(plan_hash, &e.to_string()));
                return Err(e);
            }
        }
    }
}

// The ClusterState lock guard must not be held across `transport.send`
// (a blocked peer would stall every other node's applies); `state.apply`
// and `state.last_epoch` each take and release the lock internally, so
// the reply path above is lock-free by construction.
#[cfg(test)]
mod tests {
    use super::*;
    use felip::config::FelipConfig;
    use felip_common::{Attribute, Schema};
    use felip_server::wire::{
        encode_delta, encode_hello as hello_payload, CountDelta, DeltaFlavor,
    };

    fn tiny_plan() -> Arc<CollectionPlan> {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 4),
        ])
        .unwrap();
        Arc::new(CollectionPlan::build(&schema, 60, &FelipConfig::new(1.0), 3).unwrap())
    }

    #[test]
    fn aggregator_answers_hello_delta_and_shutdown() {
        let plan = tiny_plan();
        let plan_hash = plan.schema_hash();
        let server = AggregatorServer::bind(
            Arc::clone(&plan),
            AggregatorConfig {
                idle_timeout: Duration::from_secs(5),
                ..AggregatorConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let stop = server.shutdown_handle();
        let state = server.state();

        let agg = felip_server::loadgen::offline_reference(&plan, 0..15, 5).unwrap();
        let delta = CountDelta {
            node_id: 42,
            epoch: 1,
            flavor: DeltaFlavor::Full,
            total: agg.reports_ingested() as u64,
            counts: agg.counts().to_vec(),
            group_sizes: agg.group_sizes().iter().map(|&s| s as u64).collect(),
        };

        thread::scope(|s| {
            let handle = s.spawn(|| server.run(None).unwrap());
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Hello,
                    plan_hash,
                    payload: hello_payload(42),
                },
            )
            .unwrap();
            let reply = felip_server::wire::read_frame(&mut conn).unwrap().unwrap();
            assert_eq!(reply.kind, FrameKind::Ack);
            assert_eq!(
                felip_server::wire::decode_ack(&reply.payload).unwrap(),
                (0, 0)
            );

            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Delta,
                    plan_hash,
                    payload: encode_delta(&delta).unwrap(),
                },
            )
            .unwrap();
            let reply = felip_server::wire::read_frame(&mut conn).unwrap().unwrap();
            assert_eq!(reply.kind, FrameKind::DeltaAck);
            let (epoch, last, status) =
                felip_server::wire::decode_delta_ack(&reply.payload).unwrap();
            assert_eq!((epoch, last), (1, 1));
            assert_eq!(status, felip_server::wire::DeltaStatus::Applied);

            assert_eq!(state.last_epoch(42), 1);
            drop(conn);
            stop.store(true, Ordering::SeqCst);
            let run = handle.join().unwrap();
            assert_eq!(run.merged.counts(), agg.counts());
            assert_eq!(run.stats.deltas_applied, 1);
        });
    }

    #[test]
    fn queries_answer_from_merged_view_bit_identically() {
        use felip_common::Predicate;
        use felip_server::wire::{decode_query_reply, encode_query, QueryMode, QueryRequest};

        let plan = tiny_plan();
        let plan_hash = plan.schema_hash();
        let server =
            AggregatorServer::bind(Arc::clone(&plan), AggregatorConfig::default()).unwrap();
        let addr = server.local_addr();
        let stop = server.shutdown_handle();

        let preds = vec![
            Predicate::between(0, 4, 20),
            Predicate::in_set(1, vec![1, 2]),
        ];
        let query = felip_common::Query::new(plan.schema(), preds.clone()).unwrap();

        let ask = |conn: &mut std::net::TcpStream, id: u64, mode: QueryMode| {
            felip_server::wire::write_frame(
                conn,
                &Frame {
                    kind: FrameKind::Query,
                    plan_hash,
                    payload: encode_query(&QueryRequest {
                        query_id: id,
                        mode,
                        predicates: preds.clone(),
                    })
                    .unwrap(),
                },
            )
            .unwrap();
            felip_server::wire::read_frame(conn).unwrap().unwrap()
        };

        thread::scope(|s| {
            let handle = s.spawn(|| server.run(None).unwrap());
            let mut conn = std::net::TcpStream::connect(addr).unwrap();

            // No deltas applied yet: the query answers an Error frame but
            // the connection stays usable.
            let reply = ask(&mut conn, 1, QueryMode::Cached);
            assert_eq!(reply.kind, FrameKind::Error);

            // Apply node 7's cumulative state (no hello needed for
            // queries, but deltas require one).
            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Hello,
                    plan_hash,
                    payload: hello_payload(7),
                },
            )
            .unwrap();
            felip_server::wire::read_frame(&mut conn).unwrap().unwrap();
            let agg = felip_server::loadgen::offline_reference(&plan, 0..15, 5).unwrap();
            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Delta,
                    plan_hash,
                    payload: encode_delta(&CountDelta {
                        node_id: 7,
                        epoch: 1,
                        flavor: DeltaFlavor::Full,
                        total: agg.reports_ingested() as u64,
                        counts: agg.counts().to_vec(),
                        group_sizes: agg.group_sizes().iter().map(|&s| s as u64).collect(),
                    })
                    .unwrap(),
                },
            )
            .unwrap();
            felip_server::wire::read_frame(&mut conn).unwrap().unwrap();

            // Cold query: epoch 1, bit-identical to the offline batch
            // estimate on the same counts.
            let offline = agg.estimate().unwrap().answer(&query).unwrap();
            let reply = ask(&mut conn, 2, QueryMode::Cached);
            assert_eq!(reply.kind, FrameKind::QueryReply);
            let ans = decode_query_reply(&reply.payload).unwrap();
            assert_eq!(ans.query_id, 2);
            assert_eq!(ans.epoch, 1);
            assert_eq!(ans.head_epoch, 1);
            assert_eq!(ans.reports, 15);
            assert_eq!(ans.answer.to_bits(), offline.to_bits());

            // Warm query: same epoch, same bits, no re-estimation.
            let warm = decode_query_reply(&ask(&mut conn, 3, QueryMode::Cached).payload).unwrap();
            assert_eq!(warm.epoch, 1);
            assert_eq!(warm.answer.to_bits(), offline.to_bits());

            // Fresh mode with unchanged counts still does not invent a new
            // epoch: the engine sees identical grids.
            let fresh = decode_query_reply(&ask(&mut conn, 4, QueryMode::Fresh).payload).unwrap();
            assert_eq!(fresh.epoch, 1);
            assert_eq!(fresh.answer.to_bits(), offline.to_bits());

            // A second node's delta invalidates the cache: epoch 2,
            // bit-identical to the two-node merged offline estimate.
            let agg2 = felip_server::loadgen::offline_reference(&plan, 15..30, 5).unwrap();
            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Delta,
                    plan_hash,
                    payload: encode_delta(&CountDelta {
                        node_id: 8,
                        epoch: 1,
                        flavor: DeltaFlavor::Full,
                        total: agg2.reports_ingested() as u64,
                        counts: agg2.counts().to_vec(),
                        group_sizes: agg2.group_sizes().iter().map(|&s| s as u64).collect(),
                    })
                    .unwrap(),
                },
            )
            .unwrap();
            felip_server::wire::read_frame(&mut conn).unwrap().unwrap();
            let merged = felip_server::loadgen::offline_reference(&plan, 0..30, 5).unwrap();
            let offline2 = merged.estimate().unwrap().answer(&query).unwrap();
            let ans2 = decode_query_reply(&ask(&mut conn, 5, QueryMode::Cached).payload).unwrap();
            assert_eq!(ans2.epoch, 2);
            assert_eq!(ans2.reports, 30);
            assert_eq!(ans2.answer.to_bits(), offline2.to_bits());

            drop(conn);
            stop.store(true, Ordering::SeqCst);
            handle.join().unwrap();
        });
    }

    #[test]
    fn delta_before_hello_is_rejected() {
        let plan = tiny_plan();
        let plan_hash = plan.schema_hash();
        let server =
            AggregatorServer::bind(Arc::clone(&plan), AggregatorConfig::default()).unwrap();
        let addr = server.local_addr();
        let stop = server.shutdown_handle();
        thread::scope(|s| {
            let handle = s.spawn(|| server.run(None).unwrap());
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            let delta = CountDelta {
                node_id: 1,
                epoch: 1,
                flavor: DeltaFlavor::Full,
                total: 0,
                counts: tiny_plan()
                    .grids()
                    .iter()
                    .map(|g| vec![0; g.num_cells() as usize])
                    .collect(),
                group_sizes: vec![0; tiny_plan().num_groups()],
            };
            felip_server::wire::write_frame(
                &mut conn,
                &Frame {
                    kind: FrameKind::Delta,
                    plan_hash,
                    payload: encode_delta(&delta).unwrap(),
                },
            )
            .unwrap();
            let reply = felip_server::wire::read_frame(&mut conn).unwrap().unwrap();
            assert_eq!(reply.kind, FrameKind::Error);
            drop(conn);
            stop.store(true, Ordering::SeqCst);
            let run = handle.join().unwrap();
            assert_eq!(run.stats.frames_rejected, 1);
            assert_eq!(run.merged.reports_ingested(), 0);
        });
    }
}
