//! Online query serving on the aggregator tier: the cluster-side twin of
//! the ingest server's `QueryService` (DESIGN.md §17).
//!
//! The aggregator answers v5 `Query` frames from the cluster-wide merged
//! view. The cache key is the [`ClusterState`] **change version** — bumped
//! under the nodes lock on every applied delta — instead of the ingest
//! tier's accepted-report head token; the consistent cut is
//! [`ClusterState::merged_versioned`], which reads counts and version
//! under one guard. The engine lock is held across cut + refresh + version
//! update, so an answer can never pair epoch-N counts with an epoch-N−1
//! cached grid.
//!
//! An aggregator that resumes from an FCLU container builds a fresh, cold
//! engine (epoch 0, nothing cached), so a restart can never serve a
//! pre-restore cached grid — the chaos sweep's kill+resume legs assert
//! this per seed.

use felip_sync::Mutex;

use felip::query::QueryEngine;
use felip_common::Query;
use felip_server::wire::{QueryAnswer, QueryMode, QueryRequest, WireError};

use crate::state::ClusterState;

/// The engine plus the cluster change version its cached epoch was built
/// from, guarded together so epoch and version can never tear apart.
struct EngineState {
    engine: QueryEngine,
    version: u64,
}

/// The aggregator's query-answering state: one incremental estimation
/// engine over the cluster-wide merged counts.
pub(crate) struct ClusterQuery {
    engine: Mutex<EngineState>,
}

impl ClusterQuery {
    /// A cold query engine for `state`'s plan. Always cold — including
    /// when `state` was restored from disk, which is what keeps a resumed
    /// aggregator from serving pre-restore cached grids.
    pub(crate) fn new(state: &ClusterState) -> ClusterQuery {
        ClusterQuery {
            engine: Mutex::new(EngineState {
                engine: QueryEngine::new(state.plan_handle(), state.oracles_handle()),
                version: 0,
            }),
        }
    }

    /// Answers one query from the merged cluster view, serving the cached
    /// epoch when no delta has been applied since it was built and
    /// refreshing from a fresh `merged_versioned` cut otherwise. Errors
    /// (invalid predicates, no reports yet) are `Malformed` — the
    /// connection handler answers them with an `Error` frame without
    /// closing the connection.
    pub(crate) fn answer(
        &self,
        state: &ClusterState,
        req: &QueryRequest,
    ) -> Result<QueryAnswer, WireError> {
        let plan = state.plan_handle();
        let query = Query::new(plan.schema(), req.predicates.clone())
            .map_err(|e| WireError::Malformed(format!("invalid query: {e}")))?;

        let mut st = self.engine.lock();
        if req.mode == QueryMode::Cached && st.version == state.change_version() {
            if let Some(est) = st.engine.estimator() {
                let answer = est
                    .answer(&query)
                    .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
                let epoch = st.engine.epoch();
                felip_obs::counter!("cluster.query.answered", 1, "queries");
                return Ok(QueryAnswer {
                    query_id: req.query_id,
                    answer,
                    epoch,
                    head_epoch: epoch,
                    reports: st.engine.reports(),
                });
            }
        }

        // Stale cache (or Fresh mode): one versioned merge, then an
        // incremental refresh that re-estimates only the changed grids.
        let (merged, version) = state
            .merged_versioned()
            .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        let out = st
            .engine
            .refresh_from(&merged)
            .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        st.version = version;
        let answer = out
            .estimator
            .answer(&query)
            .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        // Deltas may have landed while post-processing ran; surface that
        // as one epoch of staleness so the client can tell.
        let head_epoch = out.epoch + u64::from(state.change_version() != st.version);
        felip_obs::counter!("cluster.query.answered", 1, "queries");
        Ok(QueryAnswer {
            query_id: req.query_id,
            answer,
            epoch: out.epoch,
            head_epoch,
            reports: out.reports,
        })
    }
}
