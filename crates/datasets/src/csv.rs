//! Loading real tabular data: a minimal CSV reader plus the discretisation
//! step FELIP needs (§4 assumes every attribute is a finite ordered or
//! categorical domain).
//!
//! The paper evaluates on IPUMS census microdata and the Lending-Club loan
//! CSV. Those files cannot ship with this repository, but anyone holding
//! them (or any other tabular extract) can load them here: numerical
//! columns are discretised into `d` equal-width bins over an explicit or
//! observed value range, string columns are dictionary-encoded into
//! category ids (with an optional cap; overflow values map to the last
//! "other" bucket). The produced [`CodeBook`] translates query constants
//! back and forth.

use std::collections::HashMap;

use felip_common::{Attribute, Dataset, Error, Result, Schema};

/// How to ingest one CSV column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// Parse as a real number and discretise into `bins` equal-width bins.
    /// `range` fixes the `[min, max]` span; `None` infers it from the data
    /// (two-pass).
    Numerical {
        /// CSV header name.
        name: String,
        /// Number of bins `d`.
        bins: u32,
        /// Optional fixed value range; values outside are clamped.
        range: Option<(f64, f64)>,
    },
    /// Dictionary-encode distinct strings, in order of first appearance.
    /// At most `max_categories` ids are assigned; further distinct values
    /// share the last id (an "other" bucket).
    Categorical {
        /// CSV header name.
        name: String,
        /// Domain cap `d` (≥ 2).
        max_categories: u32,
    },
}

impl ColumnSpec {
    fn name(&self) -> &str {
        match self {
            ColumnSpec::Numerical { name, .. } => name,
            ColumnSpec::Categorical { name, .. } => name,
        }
    }
}

/// The mapping from raw CSV values to encoded domain values, returned
/// alongside the dataset so queries can be phrased in raw terms.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeBook {
    columns: Vec<ColumnCodes>,
}

/// Per-column encoding metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnCodes {
    /// Numerical column: the `[min, max]` range split into `bins` bins.
    Numerical {
        /// Lower bound of the encoded range.
        min: f64,
        /// Upper bound of the encoded range.
        max: f64,
        /// Bin count.
        bins: u32,
    },
    /// Categorical column: category string → id.
    Categorical {
        /// Dictionary in id order; `ids.len() <= max_categories`.
        categories: Vec<String>,
    },
}

impl CodeBook {
    /// Encoding metadata for column `idx` (schema order).
    pub fn column(&self, idx: usize) -> &ColumnCodes {
        &self.columns[idx]
    }

    /// Encodes a raw numerical value into its bin for column `idx`.
    pub fn encode_numerical(&self, idx: usize, value: f64) -> Result<u32> {
        match &self.columns[idx] {
            ColumnCodes::Numerical { min, max, bins } => Ok(bin_of(value, *min, *max, *bins)),
            ColumnCodes::Categorical { .. } => {
                Err(Error::InvalidQuery(format!("column {idx} is categorical")))
            }
        }
    }

    /// Encodes a raw category string into its id for column `idx`;
    /// unknown categories map to the overflow bucket (last id).
    pub fn encode_category(&self, idx: usize, value: &str) -> Result<u32> {
        match &self.columns[idx] {
            ColumnCodes::Categorical { categories } => Ok(categories
                .iter()
                .position(|c| c == value)
                .unwrap_or(categories.len().saturating_sub(1))
                as u32),
            ColumnCodes::Numerical { .. } => {
                Err(Error::InvalidQuery(format!("column {idx} is numerical")))
            }
        }
    }
}

fn bin_of(value: f64, min: f64, max: f64, bins: u32) -> u32 {
    if !value.is_finite() || value <= min {
        return 0;
    }
    if value >= max {
        return bins - 1;
    }
    let t = (value - min) / (max - min);
    ((t * bins as f64) as u32).min(bins - 1)
}

/// Splits one CSV line into fields, honouring double-quoted fields with
/// `""` escapes. No multi-line fields (records are newline-separated).
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Loads a CSV document (header row required) into a [`Dataset`] following
/// `specs`, which also defines the attribute order of the schema.
///
/// Rows with unparsable numerical fields are rejected with an error naming
/// the line. Numerical ranges left as `None` are inferred in a first pass.
pub fn load_csv_str(csv: &str, specs: &[ColumnSpec]) -> Result<(Dataset, CodeBook)> {
    if specs.is_empty() {
        return Err(Error::InvalidParameter("no columns requested".into()));
    }
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| Error::InvalidParameter("CSV has no header row".into()))?;
    let header_fields = split_line(header);
    let col_idx: Vec<usize> = specs
        .iter()
        .map(|s| {
            header_fields
                .iter()
                .position(|h| h.trim() == s.name())
                .ok_or_else(|| {
                    Error::InvalidParameter(format!("CSV has no column named `{}`", s.name()))
                })
        })
        .collect::<Result<_>>()?;

    let rows: Vec<Vec<String>> = lines.map(split_line).collect();

    // Pass 1: infer missing numerical ranges and build category dictionaries.
    let mut codes: Vec<ColumnCodes> = Vec::with_capacity(specs.len());
    for (spec, &ci) in specs.iter().zip(&col_idx) {
        match spec {
            ColumnSpec::Numerical { name, bins, range } => {
                if *bins == 0 {
                    return Err(Error::InvalidParameter(format!(
                        "column `{name}` needs at least one bin"
                    )));
                }
                let (min, max) = match range {
                    Some((lo, hi)) if lo < hi => (*lo, *hi),
                    Some(_) => {
                        return Err(Error::InvalidParameter(format!(
                            "column `{name}` has an empty range"
                        )))
                    }
                    None => {
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        for (li, row) in rows.iter().enumerate() {
                            let v = parse_field(row, ci, name, li)?;
                            min = min.min(v);
                            max = max.max(v);
                        }
                        // `!(min < max)` (rather than `min >= max`) also
                        // rejects NaN bounds, keeping binning well-defined.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(min < max) {
                            // Constant column: widen so binning is defined.
                            (min, min + 1.0)
                        } else {
                            (min, max)
                        }
                    }
                };
                codes.push(ColumnCodes::Numerical {
                    min,
                    max,
                    bins: *bins,
                });
            }
            ColumnSpec::Categorical {
                name,
                max_categories,
            } => {
                if *max_categories < 2 {
                    return Err(Error::InvalidParameter(format!(
                        "column `{name}` needs at least two categories"
                    )));
                }
                let mut dict: Vec<String> = Vec::new();
                let mut seen: HashMap<String, ()> = HashMap::new();
                for row in &rows {
                    let raw = row.get(ci).map(|s| s.trim()).unwrap_or("");
                    if !seen.contains_key(raw) && (dict.len() as u32) < *max_categories {
                        dict.push(raw.to_string());
                        seen.insert(raw.to_string(), ());
                    }
                }
                if dict.is_empty() {
                    dict.push(String::new());
                }
                codes.push(ColumnCodes::Categorical { categories: dict });
            }
        }
    }

    // Schema from the encoded domains.
    let attrs: Vec<Attribute> = specs
        .iter()
        .zip(&codes)
        .map(|(spec, code)| match (spec, code) {
            (ColumnSpec::Numerical { name, bins, .. }, _) => Attribute::numerical(name, *bins),
            (
                ColumnSpec::Categorical {
                    name,
                    max_categories,
                },
                ColumnCodes::Categorical { categories },
            ) => {
                // The domain covers the dictionary plus an overflow slot when
                // the cap was hit.
                let d = (categories.len() as u32).min(*max_categories).max(2);
                Attribute::categorical(name, d)
            }
            _ => unreachable!("spec/code kinds align by construction"),
        })
        .collect();
    let schema = Schema::new(attrs)?;
    let book = CodeBook { columns: codes };

    // Pass 2: encode rows.
    let mut data = Dataset::empty(schema.clone());
    let mut encoded = vec![0u32; specs.len()];
    for (li, row) in rows.iter().enumerate() {
        for (ai, (spec, &ci)) in specs.iter().zip(&col_idx).enumerate() {
            encoded[ai] = match spec {
                ColumnSpec::Numerical { name, .. } => {
                    let v = parse_field(row, ci, name, li)?;
                    book.encode_numerical(ai, v)?
                }
                ColumnSpec::Categorical { .. } => {
                    let raw = row.get(ci).map(|s| s.trim()).unwrap_or("");
                    let id = book.encode_category(ai, raw)?;
                    id.min(schema.domain(ai) - 1)
                }
            };
        }
        data.push(&encoded)?;
    }
    Ok((data, book))
}

fn parse_field(row: &[String], ci: usize, name: &str, line: usize) -> Result<f64> {
    let raw = row
        .get(ci)
        .ok_or_else(|| Error::InvalidRecord(format!("row {line} is missing column `{name}`")))?;
    raw.trim().parse().map_err(|_| {
        Error::InvalidRecord(format!(
            "row {line}, column `{name}`: `{raw}` is not a number"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
age,education,income,city
29,Bachelors,60000,\"Fortaleza, CE\"
55,Doctorate,100000,Recife
48,Masters,80000,Fortaleza
35,Some-college,50000,Recife
23,Bachelors,45000,Natal
";

    fn specs() -> Vec<ColumnSpec> {
        vec![
            ColumnSpec::Numerical {
                name: "age".into(),
                bins: 8,
                range: Some((0.0, 80.0)),
            },
            ColumnSpec::Categorical {
                name: "education".into(),
                max_categories: 8,
            },
            ColumnSpec::Numerical {
                name: "income".into(),
                bins: 4,
                range: None,
            },
        ]
    }

    #[test]
    fn loads_and_discretises() {
        let (data, book) = load_csv_str(CSV, &specs()).unwrap();
        assert_eq!(data.len(), 5);
        assert_eq!(data.schema().len(), 3);
        assert_eq!(data.schema().domain(0), 8);
        // age 29 in [0, 80) with 8 bins → bin 2.
        assert_eq!(data.value(0, 0), 2);
        // education dictionary in first-appearance order.
        assert_eq!(book.encode_category(1, "Bachelors").unwrap(), 0);
        assert_eq!(book.encode_category(1, "Doctorate").unwrap(), 1);
        assert_eq!(data.value(1, 1), 1);
        // income range inferred [45000, 100000]; 100000 lands in the top bin.
        assert_eq!(data.value(1, 2), 3);
        assert_eq!(data.value(4, 2), 0);
    }

    #[test]
    fn quoted_fields_with_commas() {
        let fields = split_line("29,\"Fortaleza, CE\",\"say \"\"hi\"\"\"");
        assert_eq!(fields, vec!["29", "Fortaleza, CE", "say \"hi\""]);
    }

    #[test]
    fn category_cap_creates_other_bucket() {
        let specs = vec![ColumnSpec::Categorical {
            name: "education".into(),
            max_categories: 2,
        }];
        let (data, book) = load_csv_str(CSV, &specs).unwrap();
        assert_eq!(data.schema().domain(0), 2);
        // Bachelors = 0, Doctorate = 1, everything else overflows to 1.
        assert_eq!(book.encode_category(0, "Masters").unwrap(), 1);
        assert!(data.rows().all(|r| r[0] < 2));
    }

    #[test]
    fn numerical_clamping_and_codebook() {
        let (_, book) = load_csv_str(CSV, &specs()).unwrap();
        assert_eq!(book.encode_numerical(0, -5.0).unwrap(), 0);
        assert_eq!(book.encode_numerical(0, 500.0).unwrap(), 7);
        assert!(book.encode_numerical(1, 3.0).is_err());
        assert!(book.encode_category(0, "x").is_err());
        match book.column(2) {
            ColumnCodes::Numerical { min, max, bins } => {
                assert_eq!(*bins, 4);
                assert_eq!(*min, 45_000.0);
                assert_eq!(*max, 100_000.0);
            }
            _ => panic!("wrong code kind"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(load_csv_str("", &specs()).is_err());
        assert!(load_csv_str(CSV, &[]).is_err());
        assert!(load_csv_str(
            CSV,
            &[ColumnSpec::Numerical {
                name: "missing".into(),
                bins: 4,
                range: None
            }]
        )
        .is_err());
        assert!(load_csv_str(
            "a\nnot_a_number\n",
            &[ColumnSpec::Numerical {
                name: "a".into(),
                bins: 4,
                range: None
            }]
        )
        .is_err());
        assert!(load_csv_str(
            CSV,
            &[ColumnSpec::Numerical {
                name: "age".into(),
                bins: 0,
                range: None
            }]
        )
        .is_err());
        assert!(load_csv_str(
            CSV,
            &[ColumnSpec::Numerical {
                name: "age".into(),
                bins: 4,
                range: Some((5.0, 5.0))
            }]
        )
        .is_err());
        assert!(load_csv_str(
            CSV,
            &[ColumnSpec::Categorical {
                name: "education".into(),
                max_categories: 1
            }]
        )
        .is_err());
    }

    #[test]
    fn constant_numerical_column() {
        let csv = "x\n7\n7\n7\n";
        let (data, _) = load_csv_str(
            csv,
            &[ColumnSpec::Numerical {
                name: "x".into(),
                bins: 4,
                range: None,
            }],
        )
        .unwrap();
        assert_eq!(data.len(), 3);
        assert!(data.rows().all(|r| r[0] < 4));
    }

    #[test]
    fn loaded_dataset_runs_through_felip_types() {
        // Smoke: the loaded dataset is a first-class Dataset (queries work).
        use felip_common::parse::parse_query;
        let (data, _) = load_csv_str(CSV, &specs()).unwrap();
        let q = parse_query(data.schema(), "age BETWEEN 2 AND 5 AND education IN (0, 1)").unwrap();
        let t = q.true_answer(&data);
        assert!(t > 0.0 && t <= 1.0);
    }
}
