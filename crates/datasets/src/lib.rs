#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Dataset generators and query workloads for the FELIP evaluation (§6.1).
//!
//! The paper evaluates on two synthetic datasets (Uniform, Normal) and two
//! real ones (IPUMS census microdata, Lending-Club loans). The real datasets
//! are not redistributable, so this crate ships *shape-preserving synthetic
//! equivalents* ([`ipums_like`], [`loan_like`]): generators reproducing the
//! properties the mechanisms are sensitive to — marginal skew, heterogeneous
//! categorical masses, and cross-attribute correlation — as documented in
//! DESIGN.md. All four generators share one parameterisation
//! ([`GenOptions`]) so the evaluation can sweep the attribute count, domain
//! sizes, and population size exactly as §6.2 does.
//!
//! [`workload`] generates the random λ-dimensional query sets with
//! controlled per-attribute selectivity used by every experiment.

pub mod csv;
pub mod generators;
pub mod workload;

pub use csv::{load_csv_str, CodeBook, ColumnCodes, ColumnSpec};
pub use generators::{ipums_like, loan_like, normal, uniform, DatasetKind, GenOptions};
pub use workload::{generate_queries, WorkloadOptions};
