//! Random query workload generation (§6.2).
//!
//! Every experiment evaluates a set `Q` of random λ-dimensional queries with
//! a controlled per-attribute selectivity `s`: for a numerical attribute the
//! predicate is a random interval covering `s·d` values; for a categorical
//! attribute it is a random `IN` set of `max(1, round(s·d))` categories.

use rand::seq::SliceRandom;
use rand::Rng;

use felip_common::rng::seeded_rng;
use felip_common::{AttrKind, Error, Predicate, Query, Result, Schema};

/// Parameters of a query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadOptions {
    /// Query dimension λ (number of predicates per query).
    pub lambda: usize,
    /// Per-attribute selectivity `s ∈ (0, 1]`.
    pub selectivity: f64,
    /// Number of queries |Q|.
    pub count: usize,
    /// Master seed.
    pub seed: u64,
    /// When `true`, only numerical attributes are queried (the range-only
    /// setting of §6.3 used for the TDG/HDG comparison).
    pub range_only: bool,
}

impl WorkloadOptions {
    /// The paper's defaults: λ = 2, s = 0.5, |Q| = 10.
    pub fn paper_default() -> Self {
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 10,
            seed: 0xC0FFEE,
            range_only: false,
        }
    }
}

/// Generates `opts.count` random λ-D queries over `schema`.
///
/// Returns an error when λ exceeds the number of eligible attributes or the
/// selectivity is out of range.
pub fn generate_queries(schema: &Schema, opts: WorkloadOptions) -> Result<Vec<Query>> {
    if !(opts.selectivity > 0.0 && opts.selectivity <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "selectivity {} outside (0, 1]",
            opts.selectivity
        )));
    }
    if opts.lambda == 0 {
        return Err(Error::InvalidParameter(
            "query dimension must be positive".into(),
        ));
    }
    let eligible: Vec<usize> = if opts.range_only {
        schema.numerical_indices()
    } else {
        (0..schema.len()).collect()
    };
    if opts.lambda > eligible.len() {
        return Err(Error::InvalidParameter(format!(
            "query dimension {} exceeds the {} eligible attributes",
            opts.lambda,
            eligible.len()
        )));
    }
    let mut rng = seeded_rng(opts.seed);
    let mut queries = Vec::with_capacity(opts.count);
    for _ in 0..opts.count {
        let mut attrs = eligible.clone();
        attrs.shuffle(&mut rng);
        attrs.truncate(opts.lambda);
        let preds = attrs
            .into_iter()
            .map(|a| random_predicate(schema, a, opts.selectivity, &mut rng))
            .collect();
        queries.push(Query::new(schema, preds)?);
    }
    Ok(queries)
}

/// One random predicate on `attr` with selectivity `s`.
fn random_predicate(schema: &Schema, attr: usize, s: f64, rng: &mut impl Rng) -> Predicate {
    let a = schema.attr(attr);
    let d = a.domain;
    let width = (((d as f64) * s).round() as u32).clamp(1, d);
    match a.kind {
        AttrKind::Numerical => {
            let lo = rng.gen_range(0..=(d - width));
            Predicate::between(attr, lo, lo + width - 1)
        }
        AttrKind::Categorical => {
            let mut vals: Vec<u32> = (0..d).collect();
            vals.shuffle(rng);
            vals.truncate(width as usize);
            Predicate::in_set(attr, vals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::{Attribute, PredicateTarget};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 100),
            Attribute::numerical("y", 50),
            Attribute::categorical("c", 8),
            Attribute::categorical("e", 4),
        ])
        .unwrap()
    }

    #[test]
    fn generates_requested_count_and_dimension() {
        let qs = generate_queries(
            &schema(),
            WorkloadOptions {
                lambda: 3,
                selectivity: 0.5,
                count: 25,
                seed: 1,
                range_only: false,
            },
        )
        .unwrap();
        assert_eq!(qs.len(), 25);
        assert!(qs.iter().all(|q| q.dim() == 3));
    }

    #[test]
    fn selectivity_is_respected() {
        let qs = generate_queries(
            &schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.3,
                count: 50,
                seed: 2,
                range_only: false,
            },
        )
        .unwrap();
        for q in &qs {
            for p in q.predicates() {
                let sel = p.selectivity(&schema());
                // round(s·d)/d is within one value of s.
                let d = schema().domain(p.attr) as f64;
                assert!(
                    (sel - 0.3).abs() <= 0.5 / d + 1e-9,
                    "sel {sel} on attr {}",
                    p.attr
                );
            }
        }
    }

    #[test]
    fn range_only_restricts_to_numerical() {
        let qs = generate_queries(
            &schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: 20,
                seed: 3,
                range_only: true,
            },
        )
        .unwrap();
        for q in &qs {
            for p in q.predicates() {
                assert!(p.attr < 2, "range-only query used attribute {}", p.attr);
                assert!(matches!(p.target, PredicateTarget::Range { .. }));
            }
        }
    }

    #[test]
    fn categorical_predicates_are_sets() {
        let qs = generate_queries(
            &schema(),
            WorkloadOptions {
                lambda: 4,
                selectivity: 0.5,
                count: 10,
                seed: 4,
                range_only: false,
            },
        )
        .unwrap();
        for q in &qs {
            for p in q.predicates() {
                match schema().attr(p.attr).kind {
                    AttrKind::Numerical => {
                        assert!(matches!(p.target, PredicateTarget::Range { .. }))
                    }
                    AttrKind::Categorical => {
                        let PredicateTarget::Set(vals) = &p.target else {
                            panic!("categorical predicate must be a set");
                        };
                        let d = schema().domain(p.attr);
                        assert_eq!(vals.len() as u32, (d as f64 * 0.5).round() as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_selectivity_yields_singletons() {
        let qs = generate_queries(
            &schema(),
            WorkloadOptions {
                lambda: 1,
                selectivity: 0.001,
                count: 20,
                seed: 5,
                range_only: false,
            },
        )
        .unwrap();
        for q in &qs {
            assert_eq!(q.predicates()[0].target.selected_count(), 1);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let o = WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 5,
            seed: 9,
            range_only: false,
        };
        assert_eq!(
            generate_queries(&schema(), o),
            generate_queries(&schema(), o)
        );
    }

    #[test]
    fn rejects_bad_options() {
        let s = schema();
        let base = WorkloadOptions::paper_default();
        assert!(generate_queries(
            &s,
            WorkloadOptions {
                selectivity: 0.0,
                ..base
            }
        )
        .is_err());
        assert!(generate_queries(
            &s,
            WorkloadOptions {
                selectivity: 1.5,
                ..base
            }
        )
        .is_err());
        assert!(generate_queries(&s, WorkloadOptions { lambda: 0, ..base }).is_err());
        assert!(generate_queries(&s, WorkloadOptions { lambda: 5, ..base }).is_err());
        assert!(generate_queries(
            &s,
            WorkloadOptions {
                lambda: 3,
                range_only: true,
                ..base
            }
        )
        .is_err());
    }
}
