//! The four evaluation dataset generators.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

use felip_common::rng::seeded_rng;
use felip_common::{Attribute, Dataset, Schema};

/// Shared generator parameterisation, mirroring the §6.2 sweeps:
/// attribute count 3–10, numerical domains 2⁴–2¹⁰ (and up to 1600),
/// categorical domains 2–8, population 10⁴–10⁷.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenOptions {
    /// Number of records (users) `n`.
    pub n: usize,
    /// Number of numerical attributes `k_n`.
    pub numerical: usize,
    /// Number of categorical attributes `k_c`.
    pub categorical: usize,
    /// Domain size of every numerical attribute.
    pub numerical_domain: u32,
    /// Domain size of every categorical attribute.
    pub categorical_domain: u32,
    /// Master seed; generation is fully deterministic.
    pub seed: u64,
}

impl GenOptions {
    /// The paper's default configuration: 6 attributes (3 numerical + 3
    /// categorical), numerical domain 256, categorical domain 8, n = 10⁶.
    /// Callers usually shrink `n` for quick runs.
    pub fn paper_default() -> Self {
        GenOptions {
            n: 1_000_000,
            numerical: 3,
            categorical: 3,
            numerical_domain: 256,
            categorical_domain: 8,
            seed: 0xFE11_F001,
        }
    }

    /// Total attribute count `k`.
    pub fn attrs(&self) -> usize {
        self.numerical + self.categorical
    }

    /// Builds the schema: numerical attributes `n0..`, then categorical
    /// `c0..`.
    pub fn schema(&self) -> Schema {
        let mut attrs = Vec::with_capacity(self.attrs());
        for i in 0..self.numerical {
            attrs.push(Attribute::numerical(format!("n{i}"), self.numerical_domain));
        }
        for i in 0..self.categorical {
            attrs.push(Attribute::categorical(
                format!("c{i}"),
                self.categorical_domain,
            ));
        }
        Schema::new(attrs).expect("generated schema is valid")
    }
}

/// Which of the four evaluation datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// All values i.i.d. uniform over each attribute's domain.
    Uniform,
    /// Values from a (discretised, clipped) normal centred mid-domain.
    Normal,
    /// Census-shaped synthetic stand-in for the IPUMS USA extract.
    IpumsLike,
    /// Lending-shaped synthetic stand-in for the Lending-Club extract.
    LoanLike,
}

impl DatasetKind {
    /// Generates the dataset.
    pub fn generate(self, opts: GenOptions) -> Dataset {
        match self {
            DatasetKind::Uniform => uniform(opts),
            DatasetKind::Normal => normal(opts),
            DatasetKind::IpumsLike => ipums_like(opts),
            DatasetKind::LoanLike => loan_like(opts),
        }
    }

    /// All four kinds, in the order the paper's figures list them.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Uniform,
            DatasetKind::Normal,
            DatasetKind::IpumsLike,
            DatasetKind::LoanLike,
        ]
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetKind::Uniform => write!(f, "uniform"),
            DatasetKind::Normal => write!(f, "normal"),
            DatasetKind::IpumsLike => write!(f, "ipums"),
            DatasetKind::LoanLike => write!(f, "loan"),
        }
    }
}

/// Uniform synthetic dataset: every attribute value i.i.d. uniform.
pub fn uniform(opts: GenOptions) -> Dataset {
    let schema = opts.schema();
    let mut rng = seeded_rng(opts.seed);
    let mut data = Dataset::empty(schema.clone());
    let mut row = vec![0u32; schema.len()];
    for _ in 0..opts.n {
        for (slot, attr) in row.iter_mut().zip(schema.attrs()) {
            *slot = rng.gen_range(0..attr.domain);
        }
        data.push_unchecked(&row);
    }
    data
}

/// Normal synthetic dataset (§6.1): each attribute drawn from a normal with
/// mean at the middle of the domain and the distribution "set to cover all
/// the domain" (σ = d/6 puts ±3σ at the domain edges), discretised and
/// clipped. Applies to categorical attributes as well, giving them skewed
/// category masses.
pub fn normal(opts: GenOptions) -> Dataset {
    let schema = opts.schema();
    let mut rng = seeded_rng(opts.seed);
    let mut data = Dataset::empty(schema.clone());
    let dists: Vec<Normal<f64>> = schema
        .attrs()
        .iter()
        .map(|a| {
            let d = a.domain as f64;
            Normal::new(d / 2.0, (d / 6.0).max(0.5)).expect("valid normal parameters")
        })
        .collect();
    let mut row = vec![0u32; schema.len()];
    for _ in 0..opts.n {
        for ((slot, dist), attr) in row.iter_mut().zip(&dists).zip(schema.attrs()) {
            *slot = clip(dist.sample(&mut rng), attr.domain);
        }
        data.push_unchecked(&row);
    }
    data
}

/// Census-shaped synthetic dataset standing in for IPUMS USA (§6.1).
///
/// Shape properties reproduced from the census extract:
/// * a latent "person profile" couples age, income, education and the
///   categorical attributes (the mechanisms' consistency and response-matrix
///   stages only react to such cross-attribute correlation);
/// * numerical marginals alternate between a bimodal age-like shape, a
///   right-skewed log-normal income-like shape, and a plateau shape;
/// * categorical masses are strongly non-uniform (Zipf-ish), as census
///   race/class-of-worker fields are.
pub fn ipums_like(opts: GenOptions) -> Dataset {
    let schema = opts.schema();
    let mut rng = seeded_rng(opts.seed);
    let mut data = Dataset::empty(schema.clone());
    let income_dist = LogNormal::new(0.0, 0.6).expect("valid log-normal");
    let mut row = vec![0u32; schema.len()];
    for _ in 0..opts.n {
        // Latent socioeconomic factor in [0, 1].
        let z: f64 = rng.gen::<f64>();
        // `i` selects the marginal *shape* (i % 3), not just the slot.
        #[allow(clippy::needless_range_loop)]
        for i in 0..opts.numerical {
            let d = opts.numerical_domain as f64;
            let v = match i % 3 {
                // Age-like: two bumps (young adults / middle age) tied to z.
                0 => {
                    let centre = if z < 0.45 { 0.3 } else { 0.55 };
                    d * (centre + 0.12 * rng.sample::<f64, _>(rand_distr::StandardNormal))
                }
                // Income-like: right-skewed, scaled by the latent factor.
                1 => d * 0.25 * (0.4 + z) * income_dist.sample(&mut rng),
                // Hours-worked-like plateau: uniform core with soft edges.
                _ => d * (0.1 + 0.8 * rng.gen::<f64>() * (0.5 + 0.5 * z)),
            };
            row[i] = clip(v, opts.numerical_domain);
        }
        for i in 0..opts.categorical {
            let d = opts.categorical_domain;
            let v = match i % 3 {
                // Sex-like: nearly balanced binary-ish split over d.
                0 => {
                    if rng.gen_bool(0.51) {
                        0
                    } else {
                        1 + rng.gen_range(0..d.max(2) - 1)
                    }
                }
                // Education-like: correlated with the latent factor.
                1 => clip(
                    z * d as f64 + rng.sample::<f64, _>(rand_distr::StandardNormal),
                    d,
                ),
                // Race-like: Zipf-ish heavy head.
                _ => zipf_like(&mut rng, d),
            };
            row[opts.numerical + i] = v;
        }
        data.push_unchecked(&row);
    }
    data
}

/// Lending-shaped synthetic dataset standing in for Lending-Club (§6.1).
///
/// Shape properties: loan amounts cluster at round figures (spiky marginal),
/// interest rate anti-correlates with a credit-grade latent, credit scores
/// are high and left-skewed, and loan grade/purpose categoricals have heavy
/// heads.
pub fn loan_like(opts: GenOptions) -> Dataset {
    let schema = opts.schema();
    let mut rng = seeded_rng(opts.seed);
    let mut data = Dataset::empty(schema.clone());
    let amount_dist = LogNormal::new(0.0, 0.5).expect("valid log-normal");
    let mut row = vec![0u32; schema.len()];
    for _ in 0..opts.n {
        // Latent creditworthiness in [0, 1]; most borrowers are mid-to-good.
        let credit: f64 = 1.0 - rng.gen::<f64>() * rng.gen::<f64>();
        // `i` selects the marginal *shape* (i % 3), not just the slot.
        #[allow(clippy::needless_range_loop)]
        for i in 0..opts.numerical {
            let d = opts.numerical_domain as f64;
            let v = match i % 3 {
                // Loan-amount-like: log-normal snapped towards round values.
                0 => {
                    let raw = d * 0.3 * amount_dist.sample(&mut rng);
                    let snap = (d / 16.0).max(1.0);
                    if rng.gen_bool(0.4) {
                        (raw / snap).round() * snap
                    } else {
                        raw
                    }
                }
                // Interest-rate-like: anti-correlated with credit.
                1 => {
                    d * (0.75 - 0.6 * credit)
                        + d * 0.06 * rng.sample::<f64, _>(rand_distr::StandardNormal)
                }
                // Credit-score-like: high, left-skewed.
                _ => {
                    d * (0.35 + 0.65 * credit.powf(0.7))
                        + d * 0.04 * rng.sample::<f64, _>(rand_distr::StandardNormal)
                }
            };
            row[i] = clip(v, opts.numerical_domain);
        }
        for i in 0..opts.categorical {
            let d = opts.categorical_domain;
            let v = match i % 3 {
                // Grade-like: tied to credit.
                0 => clip((1.0 - credit) * d as f64, d),
                // Term-like: two dominant values.
                1 => {
                    if rng.gen_bool(0.7) {
                        0
                    } else {
                        1.min(d - 1)
                    }
                }
                // Purpose-like: heavy-headed.
                _ => zipf_like(&mut rng, d),
            };
            row[opts.numerical + i] = v;
        }
        data.push_unchecked(&row);
    }
    data
}

/// Clips a real sample into the discrete domain `0..d`.
fn clip(v: f64, d: u32) -> u32 {
    if !v.is_finite() || v < 0.0 {
        return 0;
    }
    (v as u32).min(d - 1)
}

/// Zipf-ish categorical sampler: value `v` has mass ∝ 1/(v+1).
fn zipf_like(rng: &mut impl Rng, d: u32) -> u32 {
    let h: f64 = (1..=d).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.gen::<f64>() * h;
    for v in 0..d {
        u -= 1.0 / (v + 1) as f64;
        if u <= 0.0 {
            return v;
        }
    }
    d - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenOptions {
        GenOptions {
            n: 20_000,
            numerical: 3,
            categorical: 3,
            numerical_domain: 64,
            categorical_domain: 8,
            seed: 7,
        }
    }

    #[test]
    fn all_kinds_generate_valid_data() {
        for kind in DatasetKind::all() {
            let ds = kind.generate(small());
            assert_eq!(ds.len(), 20_000, "{kind}");
            assert_eq!(ds.schema().len(), 6);
            // Dataset::push_unchecked debug-asserts ranges; re-check here.
            for row in ds.rows().take(500) {
                ds.schema().check_record(row).unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ipums_like(small());
        let b = ipums_like(small());
        assert_eq!(a.flat(), b.flat());
        let mut other = small();
        other.seed = 8;
        let c = ipums_like(other);
        assert_ne!(a.flat(), c.flat());
    }

    #[test]
    fn uniform_is_flat() {
        let ds = uniform(small());
        let m = ds.marginal(0);
        let expect = 1.0 / 64.0;
        for (v, &f) in m.iter().enumerate() {
            assert!((f - expect).abs() < 0.01, "value {v}: {f}");
        }
    }

    #[test]
    fn normal_peaks_mid_domain() {
        let ds = normal(small());
        let m = ds.marginal(0);
        let centre: f64 = m[24..40].iter().sum();
        let edge: f64 = m[..8].iter().sum::<f64>() + m[56..].iter().sum::<f64>();
        assert!(centre > 0.5, "centre mass {centre}");
        assert!(edge < 0.1, "edge mass {edge}");
    }

    #[test]
    fn ipums_like_is_skewed_and_correlated() {
        let ds = ipums_like(small());
        // Numerical marginal 1 (income-like) is right-skewed: median below
        // the midpoint.
        let m = ds.marginal(1);
        let low: f64 = m[..32].iter().sum();
        assert!(low > 0.6, "income-like low-half mass {low}");
        // Education-like categorical (index numerical+1) correlates with the
        // income-like numerical: check a crude correlation over records.
        let (mut sum_xy, mut sum_x, mut sum_y) = (0.0f64, 0.0f64, 0.0f64);
        let n = ds.len() as f64;
        for row in ds.rows() {
            let x = row[1] as f64;
            let y = row[4] as f64;
            sum_xy += x * y;
            sum_x += x;
            sum_y += y;
        }
        let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
        assert!(
            cov > 0.0,
            "expected positive income↔education covariance, got {cov}"
        );
    }

    #[test]
    fn loan_like_rate_anticorrelates_with_score() {
        let ds = loan_like(small());
        // attr 1 = interest-rate-like, attr 2 = credit-score-like.
        let (mut sum_xy, mut sum_x, mut sum_y) = (0.0f64, 0.0f64, 0.0f64);
        let n = ds.len() as f64;
        for row in ds.rows() {
            let x = row[1] as f64;
            let y = row[2] as f64;
            sum_xy += x * y;
            sum_x += x;
            sum_y += y;
        }
        let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
        assert!(
            cov < 0.0,
            "expected negative rate↔score covariance, got {cov}"
        );
    }

    #[test]
    fn categorical_masses_nonuniform_on_real_like() {
        let ds = ipums_like(small());
        // Race-like attribute (numerical + 2) must have a heavy head.
        let m = ds.marginal(5);
        assert!(m[0] > 2.0 * m[4], "head {} vs tail {}", m[0], m[4]);
    }

    #[test]
    fn schema_layout() {
        let s = small().schema();
        assert_eq!(s.numerical_indices(), vec![0, 1, 2]);
        assert_eq!(s.categorical_indices(), vec![3, 4, 5]);
        assert_eq!(s.attr(0).name, "n0");
        assert_eq!(s.attr(3).name, "c0");
    }

    #[test]
    fn domain_sweep_shapes() {
        // The generators must stay valid across the fig-3 domain sweep.
        for d in [16u32, 25, 100, 1024] {
            let mut o = small();
            o.numerical_domain = d;
            o.n = 2_000;
            for kind in DatasetKind::all() {
                let ds = kind.generate(o);
                for row in ds.rows().take(200) {
                    ds.schema().check_record(row).unwrap();
                }
            }
        }
    }

    #[test]
    fn zipf_sampler_in_range() {
        let mut rng = seeded_rng(1);
        for _ in 0..1000 {
            assert!(zipf_like(&mut rng, 5) < 5);
        }
        // Degenerate domain of one.
        assert_eq!(zipf_like(&mut rng, 1), 0);
    }

    #[test]
    fn clip_handles_pathological_input() {
        assert_eq!(clip(f64::NAN, 10), 0);
        assert_eq!(clip(-3.0, 10), 0);
        assert_eq!(clip(1e12, 10), 9);
        assert_eq!(clip(4.7, 10), 4);
    }
}
