//! Per-grid granularity optimisation (§5.2).
//!
//! For each grid, FELIP balances two error sources when answering a query
//! with per-axis selectivity `r`:
//!
//! * **non-uniformity (bias) error** — mass mis-attributed inside cells that
//!   the query rectangle only partially covers, controlled by constants
//!   `α₁` (1-D) and `α₂` (2-D): finer grids → less bias;
//! * **noise + sampling error** — each cell inside the rectangle contributes
//!   one FO estimate with variance `m/n` × the protocol's variance factor:
//!   finer grids → more noisy cells in the sum.
//!
//! The five grid kinds have the closed error expressions of Eqs. (3), (4),
//! (9), (10), (11), (12). Minimisation follows the paper: the 1-D OLH case
//! has the closed form of Eq. (5); all other stationarity conditions are
//! solved numerically (bisection / golden-section line search, coordinate
//! descent for the 2-D systems). The continuous optimum is then refined to
//! the best *integer* granularity by direct evaluation — made possible by
//! variable-width binning, which accepts any `l ∈ 1..=d`.

use felip_common::AttrKind;
use felip_fo::variance::olh_variance_factor;
use felip_fo::FoKind;
use felip_numeric::{coordinate_descent2, minimize_unimodal, Descent2Options};

/// One axis of a grid being sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisInput {
    /// Domain size of the attribute.
    pub domain: u32,
    /// Categorical axes are never binned; numerical axes are.
    pub kind: AttrKind,
    /// Expected query selectivity on this axis (ratio of queried interval to
    /// domain), `0 < r ≤ 1`. The aggregator may set this from prior workload
    /// knowledge (§5, step 2); 0.5 is the uninformed default.
    pub selectivity: f64,
}

/// Everything the optimiser needs to size one grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingInput {
    /// Total user population `n`.
    pub n: usize,
    /// Number of user groups `m` (grids in the plan).
    pub m: usize,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Non-uniformity constant for 1-D grids (paper default 0.7).
    pub alpha1: f64,
    /// Non-uniformity constant for 2-D grids (paper default 0.03).
    pub alpha2: f64,
    /// First (or only) axis.
    pub x: AxisInput,
    /// Second axis for 2-D grids.
    pub y: Option<AxisInput>,
}

/// The chosen granularity of a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSize {
    /// Cells along the first axis.
    pub lx: u32,
    /// Cells along the second axis (2-D grids only).
    pub ly: Option<u32>,
}

impl GridSize {
    /// Total cell count `L`.
    pub fn cells(&self) -> u32 {
        self.lx * self.ly.unwrap_or(1)
    }
}

/// The squared-error model of §5.2, exposed so benches and tests can inspect
/// the objective the optimiser minimises.
#[derive(Debug, Clone, Copy)]
pub struct ErrorModel {
    input: SizingInput,
}

impl ErrorModel {
    /// Builds the model, validating parameters.
    ///
    /// # Panics
    /// Panics on non-positive ε, zero population/groups, or selectivities
    /// outside `(0, 1]` — configuration errors caught at plan time.
    pub fn new(input: SizingInput) -> Self {
        assert!(input.epsilon > 0.0, "epsilon must be positive");
        assert!(input.n > 0, "population must be non-empty");
        assert!(input.m > 0, "group count must be positive");
        let check_r = |r: f64| assert!(r > 0.0 && r <= 1.0, "selectivity {r} outside (0, 1]");
        check_r(input.x.selectivity);
        if let Some(y) = &input.y {
            check_r(y.selectivity);
        }
        ErrorModel { input }
    }

    /// Per-cell noise + sampling variance for a grid of `cells` cells under
    /// protocol `fo`: the §2.2 variance factor scaled by `m/n` (§5.1).
    pub fn noise_unit(&self, fo: FoKind, cells: f64) -> f64 {
        let factor = match fo {
            FoKind::Grr => {
                // Continuous extension of (e^ε + L − 2)/(e^ε − 1)².
                let e = self.input.epsilon.exp();
                (e + cells - 2.0) / ((e - 1.0) * (e - 1.0))
            }
            FoKind::Olh => olh_variance_factor(self.input.epsilon),
        };
        factor * self.input.m as f64 / self.input.n as f64
    }

    /// Squared error of a numerical 1-D grid with `lx` cells (Eqs. 3, 4).
    pub fn error_1d_num(&self, fo: FoKind, lx: f64) -> f64 {
        let rx = self.input.x.selectivity;
        let bias = self.input.alpha1 / lx;
        bias * bias + lx * rx * self.noise_unit(fo, lx)
    }

    /// Squared error of a numerical × numerical 2-D grid (Eqs. 9, 10).
    pub fn error_2d_num_num(&self, fo: FoKind, lx: f64, ly: f64) -> f64 {
        let rx = self.input.x.selectivity;
        let ry = self
            .input
            .y
            .expect("2-D model needs a second axis")
            .selectivity;
        let bias = 2.0 * self.input.alpha2 * (lx * rx + ly * ry) / (lx * ly);
        bias * bias + (lx * rx) * (ly * ry) * self.noise_unit(fo, lx * ly)
    }

    /// Squared error of a numerical × categorical 2-D grid where the
    /// numerical axis has `lx` cells and the categorical axis is fixed at
    /// its domain size (Eqs. 11, 12).
    pub fn error_2d_num_cat(&self, fo: FoKind, lx: f64, ly_cat: f64) -> f64 {
        let rx = self.input.x.selectivity;
        let ry = self
            .input
            .y
            .expect("2-D model needs a second axis")
            .selectivity;
        let bias = 2.0 * self.input.alpha2 * ry / lx;
        bias * bias + (lx * rx) * (ly_cat * ry) * self.noise_unit(fo, lx * ly_cat)
    }
}

/// The closed-form 1-D OLH optimum of Eq. (5):
/// `l = ∛( n α₁² (e^ε − 1)² / (2 m r e^ε) )`.
///
/// Exposed for tests and for TDG/HDG, whose global granularity formula is
/// this expression with `r = 0.5`.
pub fn closed_form_1d_olh(n: usize, m: usize, epsilon: f64, alpha1: f64, r: f64) -> f64 {
    let e = epsilon.exp();
    (n as f64 * alpha1 * alpha1 * (e - 1.0) * (e - 1.0) / (2.0 * m as f64 * r * e)).cbrt()
}

/// Optimises one grid's granularity for protocol `fo`, returning the chosen
/// integer size and the squared error it achieves.
///
/// Grid kinds are dispatched on the axis kinds:
/// * numerical 1-D — scalar minimisation (Eq. 5 / Eq. 6);
/// * categorical 1-D — fixed at the domain size;
/// * num × num — coordinate descent on the 2-variable system;
/// * num × cat / cat × num — categorical axis fixed, scalar solve for the
///   numerical axis;
/// * cat × cat — both axes fixed at their domains.
pub fn optimize_grid(input: SizingInput, fo: FoKind) -> (GridSize, f64) {
    let model = ErrorModel::new(input);
    match (input.x.kind, input.y.map(|y| y.kind)) {
        // --- 1-D ---
        (AttrKind::Categorical, None) => {
            let lx = input.x.domain;
            // Bias is zero (no binning): error is pure noise over the
            // selected categories.
            let err = input.x.selectivity * lx as f64 * model.noise_unit(fo, lx as f64);
            (GridSize { lx, ly: None }, err)
        }
        (AttrKind::Numerical, None) => {
            let d = input.x.domain as f64;
            // Seed with the OLH closed form, solve by golden section (the
            // objective is strictly unimodal on [1, d]).
            let cont = minimize_unimodal(1.0, d, 1e-6, |l| model.error_1d_num(fo, l));
            let lx = best_integer_1d(cont, input.x.domain, |l| model.error_1d_num(fo, l as f64));
            (GridSize { lx, ly: None }, model.error_1d_num(fo, lx as f64))
        }
        // --- 2-D ---
        (xk, Some(yk)) => {
            let y = input.y.expect("2-D input");
            match (xk, yk) {
                (AttrKind::Categorical, AttrKind::Categorical) => {
                    // No binning on either axis → no bias term; the error is
                    // the noise summed over the selected cells.
                    let (lx, ly) = (input.x.domain, y.domain);
                    let cells = (lx as f64) * (ly as f64);
                    let selected = input.x.selectivity * lx as f64 * y.selectivity * ly as f64;
                    let err = selected * model.noise_unit(fo, cells);
                    (GridSize { lx, ly: Some(ly) }, err)
                }
                (AttrKind::Numerical, AttrKind::Numerical) => {
                    let (dx, dy) = (input.x.domain as f64, y.domain as f64);
                    let (cx, cy) = coordinate_descent2(
                        (dx.sqrt(), dy.sqrt()),
                        Descent2Options {
                            x_bounds: (1.0, dx),
                            y_bounds: (1.0, dy),
                            tol: 1e-6,
                            max_sweeps: 64,
                        },
                        |lx, ly| model.error_2d_num_num(fo, lx, ly),
                    );
                    let (lx, ly) = best_integer_2d(cx, cy, input.x.domain, y.domain, |a, b| {
                        model.error_2d_num_num(fo, a as f64, b as f64)
                    });
                    (
                        GridSize { lx, ly: Some(ly) },
                        model.error_2d_num_num(fo, lx as f64, ly as f64),
                    )
                }
                (AttrKind::Numerical, AttrKind::Categorical) => {
                    let ly = y.domain;
                    let dx = input.x.domain as f64;
                    let cont = minimize_unimodal(1.0, dx, 1e-6, |lx| {
                        model.error_2d_num_cat(fo, lx, ly as f64)
                    });
                    let lx = best_integer_1d(cont, input.x.domain, |l| {
                        model.error_2d_num_cat(fo, l as f64, ly as f64)
                    });
                    (
                        GridSize { lx, ly: Some(ly) },
                        model.error_2d_num_cat(fo, lx as f64, ly as f64),
                    )
                }
                (AttrKind::Categorical, AttrKind::Numerical) => {
                    // Mirror of the previous case: swap roles, then swap back.
                    let swapped = SizingInput {
                        x: y,
                        y: Some(input.x),
                        ..input
                    };
                    let (sz, err) = optimize_grid(swapped, fo);
                    (
                        GridSize {
                            lx: sz.ly.expect("2-D"),
                            ly: Some(sz.lx),
                        },
                        err,
                    )
                }
            }
        }
    }
}

/// Picks the best integer granularity near the continuous optimum.
fn best_integer_1d(cont: f64, domain: u32, mut err: impl FnMut(u32) -> f64) -> u32 {
    let lo = (cont.floor().max(1.0) as u32).min(domain);
    let hi = (cont.ceil().max(1.0) as u32).min(domain);
    if lo == hi || err(lo) <= err(hi) {
        lo
    } else {
        hi
    }
}

/// Picks the best integer pair near the continuous 2-D optimum by direct
/// evaluation of the four floor/ceil combinations.
fn best_integer_2d(
    cx: f64,
    cy: f64,
    dx: u32,
    dy: u32,
    mut err: impl FnMut(u32, u32) -> f64,
) -> (u32, u32) {
    let cands_x = [
        (cx.floor().max(1.0) as u32).min(dx),
        (cx.ceil().max(1.0) as u32).min(dx),
    ];
    let cands_y = [
        (cy.floor().max(1.0) as u32).min(dy),
        (cy.ceil().max(1.0) as u32).min(dy),
    ];
    let mut best = (cands_x[0], cands_y[0]);
    let mut best_err = f64::INFINITY;
    for &a in &cands_x {
        for &b in &cands_y {
            let e = err(a, b);
            if e < best_err {
                best_err = e;
                best = (a, b);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(domain: u32, r: f64) -> AxisInput {
        AxisInput {
            domain,
            kind: AttrKind::Numerical,
            selectivity: r,
        }
    }

    fn cat(domain: u32, r: f64) -> AxisInput {
        AxisInput {
            domain,
            kind: AttrKind::Categorical,
            selectivity: r,
        }
    }

    fn base(x: AxisInput, y: Option<AxisInput>) -> SizingInput {
        SizingInput {
            n: 1_000_000,
            m: 15,
            epsilon: 1.0,
            alpha1: 0.7,
            alpha2: 0.03,
            x,
            y,
        }
    }

    #[test]
    fn one_dim_olh_matches_closed_form() {
        let input = base(num(1024, 0.5), None);
        let (size, _) = optimize_grid(input, FoKind::Olh);
        let expect = closed_form_1d_olh(input.n, input.m, input.epsilon, input.alpha1, 0.5);
        assert!(
            (size.lx as f64 - expect).abs() <= 1.0,
            "solver {} vs closed form {}",
            size.lx,
            expect
        );
    }

    #[test]
    fn one_dim_grr_is_coarser_than_olh() {
        // GRR's noise grows with L, so its optimal grid is never finer.
        let input = base(num(1024, 0.5), None);
        let (olh, _) = optimize_grid(input, FoKind::Olh);
        let (grr, _) = optimize_grid(input, FoKind::Grr);
        assert!(grr.lx <= olh.lx, "GRR {} vs OLH {}", grr.lx, olh.lx);
    }

    #[test]
    fn one_dim_clamps_to_domain() {
        // Tiny population → coarse grid; huge population small domain → l = d.
        let coarse = optimize_grid(base(num(1024, 0.5), None), FoKind::Olh).0;
        let mut rich = base(num(8, 0.5), None);
        rich.n = 100_000_000;
        let fine = optimize_grid(rich, FoKind::Olh).0;
        assert!(coarse.lx >= 1 && coarse.lx <= 1024);
        assert_eq!(fine.lx, 8);
    }

    #[test]
    fn categorical_1d_is_identity() {
        let (size, _) = optimize_grid(base(cat(7, 0.5), None), FoKind::Grr);
        assert_eq!(size.lx, 7);
        assert_eq!(size.ly, None);
    }

    #[test]
    fn cat_cat_uses_domains() {
        let (size, _) = optimize_grid(base(cat(5, 0.5), Some(cat(3, 0.5))), FoKind::Olh);
        assert_eq!((size.lx, size.ly), (5, Some(3)));
    }

    #[test]
    fn num_num_symmetric_inputs_give_symmetric_sizes() {
        let (size, _) = optimize_grid(base(num(256, 0.5), Some(num(256, 0.5))), FoKind::Olh);
        let (lx, ly) = (size.lx, size.ly.unwrap());
        assert!((lx as i64 - ly as i64).abs() <= 1, "{lx} vs {ly}");
        assert!(lx > 1 && lx < 256, "degenerate optimum {lx}");
    }

    #[test]
    fn num_cat_fixes_categorical_axis() {
        let (size, _) = optimize_grid(base(num(256, 0.5), Some(cat(4, 0.5))), FoKind::Olh);
        assert_eq!(size.ly, Some(4));
        assert!(size.lx >= 1 && size.lx <= 256);
    }

    #[test]
    fn cat_num_mirrors_num_cat() {
        let a = optimize_grid(base(num(256, 0.5), Some(cat(4, 0.5))), FoKind::Olh).0;
        let b = optimize_grid(base(cat(4, 0.5), Some(num(256, 0.5))), FoKind::Olh).0;
        assert_eq!(b.lx, 4);
        assert_eq!(b.ly, Some(a.lx));
    }

    #[test]
    fn higher_selectivity_coarser_grid() {
        // Broader queries touch more cells → more noise → coarser optimum.
        let fine = optimize_grid(base(num(1024, 0.1), None), FoKind::Olh).0;
        let coarse = optimize_grid(base(num(1024, 0.9), None), FoKind::Olh).0;
        assert!(
            coarse.lx < fine.lx,
            "coarse {} !< fine {}",
            coarse.lx,
            fine.lx
        );
    }

    #[test]
    fn more_users_finer_grid() {
        let mut small = base(num(1024, 0.5), None);
        small.n = 10_000;
        let mut big = small;
        big.n = 10_000_000;
        let ls = optimize_grid(small, FoKind::Olh).0.lx;
        let lb = optimize_grid(big, FoKind::Olh).0.lx;
        assert!(lb > ls, "big {lb} !> small {ls}");
    }

    #[test]
    fn integer_refinement_is_locally_optimal() {
        let input = base(num(1024, 0.5), None);
        let model = ErrorModel::new(input);
        let (size, err) = optimize_grid(input, FoKind::Olh);
        for neighbour in [size.lx.saturating_sub(1).max(1), (size.lx + 1).min(1024)] {
            if neighbour != size.lx {
                assert!(
                    model.error_1d_num(FoKind::Olh, neighbour as f64) >= err - 1e-15,
                    "neighbour {neighbour} beats chosen {}",
                    size.lx
                );
            }
        }
    }

    #[test]
    fn two_dim_stationarity() {
        // The chosen integer pair should (weakly) beat its 8 neighbours.
        let input = base(num(256, 0.5), Some(num(256, 0.5)));
        let model = ErrorModel::new(input);
        let (size, err) = optimize_grid(input, FoKind::Olh);
        let (lx, ly) = (size.lx, size.ly.unwrap());
        for a in [lx.saturating_sub(1).max(1), lx, (lx + 1).min(256)] {
            for b in [ly.saturating_sub(1).max(1), ly, (ly + 1).min(256)] {
                if (a, b) != (lx, ly) {
                    assert!(
                        model.error_2d_num_num(FoKind::Olh, a as f64, b as f64) >= err - 1e-12,
                        "neighbour ({a},{b}) beats ({lx},{ly})"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_size_cells() {
        assert_eq!(GridSize { lx: 5, ly: None }.cells(), 5);
        assert_eq!(GridSize { lx: 5, ly: Some(4) }.cells(), 20);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn rejects_zero_selectivity() {
        ErrorModel::new(base(num(16, 0.0), None));
    }
}
