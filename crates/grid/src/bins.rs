//! Variable-width binning of a discrete domain.
//!
//! A [`Binning`] partitions the domain `0..d` into `l ≤ d` contiguous cells.
//! When `l` does not divide `d` the first `d mod l` cells are one value
//! wider, so *any* granularity in `1..=d` is usable. This is the mechanism
//! behind FELIP's claim (§3.2/§5.8) of avoiding TDG/HDG's power-of-two
//! rounding: the optimiser's exact `l` is always realisable.

use felip_common::{Error, Result};

/// A partition of `0..domain` into contiguous cells.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Binning {
    /// Cell boundaries: `edges[i]..edges[i+1]` is cell `i`;
    /// `edges[0] == 0`, `edges[len-1] == domain`, strictly increasing.
    edges: Vec<u32>,
}

impl Binning {
    /// Near-equal-width binning of `0..domain` into `cells` cells.
    ///
    /// Cell widths differ by at most one: with `w = d / l` and `r = d % l`,
    /// the first `r` cells have width `w + 1` and the rest width `w`.
    pub fn equal(domain: u32, cells: u32) -> Result<Self> {
        if domain == 0 {
            return Err(Error::InvalidParameter("binning over empty domain".into()));
        }
        if cells == 0 || cells > domain {
            return Err(Error::InvalidParameter(format!(
                "cell count {cells} out of range 1..={domain}"
            )));
        }
        let w = domain / cells;
        let r = domain % cells;
        let mut edges = Vec::with_capacity(cells as usize + 1);
        let mut at = 0u32;
        edges.push(0);
        for i in 0..cells {
            at += w + u32::from(i < r);
            edges.push(at);
        }
        debug_assert_eq!(at, domain);
        Ok(Binning { edges })
    }

    /// Identity binning: one cell per value (used for categorical axes).
    pub fn identity(domain: u32) -> Result<Self> {
        Self::equal(domain, domain)
    }

    /// A binning from explicit edges. Must start at 0, be strictly
    /// increasing, and end at the domain size.
    pub fn from_edges(edges: Vec<u32>) -> Result<Self> {
        if edges.len() < 2 || edges[0] != 0 {
            return Err(Error::InvalidParameter(
                "binning edges must start at 0".into(),
            ));
        }
        if !edges.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::InvalidParameter(
                "binning edges must be strictly increasing".into(),
            ));
        }
        Ok(Binning { edges })
    }

    /// Number of cells `l`.
    pub fn cells(&self) -> u32 {
        (self.edges.len() - 1) as u32
    }

    /// Domain size `d`.
    pub fn domain(&self) -> u32 {
        *self.edges.last().expect("binning always has edges")
    }

    /// The cell containing `value`.
    ///
    /// # Panics
    /// Panics when `value >= domain` (debug builds assert; release builds
    /// return the last cell via the partition-point clamp only for valid
    /// input, so callers must validate).
    #[inline]
    pub fn cell_of(&self, value: u32) -> u32 {
        debug_assert!(
            value < self.domain(),
            "value {value} out of domain {}",
            self.domain()
        );
        // partition_point returns the first edge > value; subtract one edge
        // index to get the cell.
        (self.edges.partition_point(|&e| e <= value) - 1) as u32
    }

    /// Inclusive-exclusive value range `[lo, hi)` of cell `i`.
    pub fn cell_range(&self, i: u32) -> (u32, u32) {
        (self.edges[i as usize], self.edges[i as usize + 1])
    }

    /// Width (number of domain values) of cell `i`.
    pub fn width(&self, i: u32) -> u32 {
        self.edges[i as usize + 1] - self.edges[i as usize]
    }

    /// All cell edges.
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// Equal-*mass* binning: splits `0..weights.len()` into `cells` bins so
    /// that each bin carries roughly the same share of `weights` (the
    /// data-aware extension of DESIGN.md §8: mass-balanced cells avoid the
    /// low-true-count cells whose estimates are pure noise).
    ///
    /// Weights are clamped at zero; an all-zero histogram degenerates to
    /// [`Binning::equal`]. The result always has exactly
    /// `min(cells, domain)` bins with strictly increasing edges.
    pub fn equal_mass(weights: &[f64], cells: u32) -> Result<Self> {
        let d = weights.len() as u32;
        if d == 0 {
            return Err(Error::InvalidParameter("binning over empty domain".into()));
        }
        let cells = cells.clamp(1, d);
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return Binning::equal(d, cells);
        }
        let mut edges = Vec::with_capacity(cells as usize + 1);
        edges.push(0u32);
        let mut cum = 0.0;
        for (i, w) in weights.iter().enumerate() {
            cum += w.max(0.0);
            let v = i as u32 + 1; // candidate edge after value i
            let bins_closed = edges.len() as u32 - 1;
            if v >= d || bins_closed + 1 >= cells {
                break; // the final bin absorbs everything left
            }
            // Bins still to fill after closing the current one at v:
            let bins_after = cells - bins_closed - 1;
            let values_after = d - v;
            // Cut when the running mass is as close to the bin's target as
            // it will get — either we already reached it, or adding the
            // next value would overshoot by more than the current
            // undershoot. Also cut when forced: exactly one value must be
            // left for each remaining bin.
            let target = total * (bins_closed + 1) as f64 / cells as f64;
            let next = weights[v as usize].max(0.0);
            let closest_now = cum + 1e-12 >= target || (target - cum) <= (cum + next - target);
            let must_cut = values_after == bins_after;
            if (closest_now && values_after >= bins_after) || must_cut {
                edges.push(v);
            }
        }
        edges.push(d);
        Binning::from_edges(edges)
    }

    /// Cells overlapping the inclusive value range `[lo, hi]`, as
    /// `(cell, overlap_fraction)` where `overlap_fraction` is the share of
    /// the cell's width inside the range — the uniformity assumption used
    /// when a query rectangle partially intersects a cell (§5.2).
    pub fn overlaps(&self, lo: u32, hi: u32) -> Vec<(u32, f64)> {
        debug_assert!(lo <= hi && hi < self.domain());
        let first = self.cell_of(lo);
        let last = self.cell_of(hi);
        let mut out = Vec::with_capacity((last - first + 1) as usize);
        for c in first..=last {
            let (clo, chi) = self.cell_range(c); // [clo, chi)
            let olo = lo.max(clo);
            let ohi = (hi + 1).min(chi);
            let frac = (ohi - olo) as f64 / (chi - clo) as f64;
            out.push((c, frac));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_divisible() {
        let b = Binning::equal(100, 4).unwrap();
        assert_eq!(b.cells(), 4);
        assert_eq!(b.domain(), 100);
        assert_eq!(b.edges(), &[0, 25, 50, 75, 100]);
        assert_eq!(b.width(2), 25);
    }

    #[test]
    fn equal_non_divisible() {
        // 10 values into 3 cells: widths 4, 3, 3.
        let b = Binning::equal(10, 3).unwrap();
        assert_eq!(b.edges(), &[0, 4, 7, 10]);
        assert_eq!(b.width(0), 4);
        assert_eq!(b.width(1), 3);
        // Widths differ by at most one for many (d, l) combos.
        for d in 1..60u32 {
            for l in 1..=d {
                let b = Binning::equal(d, l).unwrap();
                let ws: Vec<u32> = (0..l).map(|i| b.width(i)).collect();
                let min = *ws.iter().min().unwrap();
                let max = *ws.iter().max().unwrap();
                assert!(max - min <= 1, "d={d} l={l} widths {ws:?}");
                assert_eq!(ws.iter().sum::<u32>(), d);
            }
        }
    }

    #[test]
    fn identity_binning() {
        let b = Binning::identity(5).unwrap();
        assert_eq!(b.cells(), 5);
        for v in 0..5 {
            assert_eq!(b.cell_of(v), v);
            assert_eq!(b.width(v), 1);
        }
    }

    #[test]
    fn cell_of_round_trips() {
        let b = Binning::equal(103, 7).unwrap();
        for v in 0..103u32 {
            let c = b.cell_of(v);
            let (lo, hi) = b.cell_range(c);
            assert!(lo <= v && v < hi, "value {v} not in cell {c} = [{lo},{hi})");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Binning::equal(0, 1).is_err());
        assert!(Binning::equal(10, 0).is_err());
        assert!(Binning::equal(10, 11).is_err());
    }

    #[test]
    fn from_edges_validation() {
        assert!(Binning::from_edges(vec![0, 5, 10]).is_ok());
        assert!(Binning::from_edges(vec![1, 5]).is_err());
        assert!(Binning::from_edges(vec![0]).is_err());
        assert!(Binning::from_edges(vec![0, 5, 5]).is_err());
        assert!(Binning::from_edges(vec![0, 7, 3]).is_err());
    }

    #[test]
    fn overlaps_full_and_partial() {
        let b = Binning::equal(100, 4).unwrap(); // cells of width 25
                                                 // Exact cell: full overlap.
        let o = b.overlaps(25, 49);
        assert_eq!(o, vec![(1, 1.0)]);
        // Range [10, 60] overlaps cells 0 (60%), 1 (100%), 2 (44%).
        let o = b.overlaps(10, 60);
        assert_eq!(o.len(), 3);
        assert_eq!(o[0].0, 0);
        assert!((o[0].1 - 0.6).abs() < 1e-12);
        assert!((o[1].1 - 1.0).abs() < 1e-12);
        assert!((o[2].1 - 11.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn overlaps_single_value() {
        let b = Binning::equal(10, 3).unwrap(); // widths 4,3,3
        let o = b.overlaps(5, 5);
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].0, 1);
        assert!((o[0].1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_mass_balances_skewed_histogram() {
        // Mass concentrated in the first quarter of a 16-value domain.
        let mut w = vec![0.01f64; 16];
        for slot in &mut w[..4] {
            *slot = 1.0;
        }
        let b = Binning::equal_mass(&w, 4).unwrap();
        assert_eq!(b.cells(), 4);
        // Per-bin mass should be far closer to 25% than equal-width's
        // (which would put ~99% into the first bin).
        let total: f64 = w.iter().sum();
        for c in 0..4 {
            let (lo, hi) = b.cell_range(c);
            let mass: f64 = w[lo as usize..hi as usize].iter().sum::<f64>() / total;
            assert!(mass > 0.05 && mass < 0.6, "bin {c} mass {mass}");
        }
        // The dense region is split finer than the sparse tail.
        assert!(b.width(0) < b.width(3), "widths {:?}", b.edges());
    }

    #[test]
    fn equal_mass_exact_bin_count() {
        for d in [3usize, 7, 16, 50] {
            for cells in 1..=d.min(12) as u32 {
                // All mass at the first value — worst case for cutting.
                let mut w = vec![0.0f64; d];
                w[0] = 1.0;
                let b = Binning::equal_mass(&w, cells).unwrap();
                assert_eq!(b.cells(), cells, "d={d} cells={cells} front-loaded");
                // All mass at the last value.
                let mut w = vec![0.0f64; d];
                w[d - 1] = 1.0;
                let b = Binning::equal_mass(&w, cells).unwrap();
                assert_eq!(b.cells(), cells, "d={d} cells={cells} back-loaded");
            }
        }
    }

    #[test]
    fn equal_mass_uniform_weights_equal_width() {
        let w = vec![1.0f64; 100];
        let b = Binning::equal_mass(&w, 4).unwrap();
        assert_eq!(b.edges(), Binning::equal(100, 4).unwrap().edges());
    }

    #[test]
    fn equal_mass_handles_degenerate_input() {
        // All-zero (or negative) weights fall back to equal width.
        let b = Binning::equal_mass(&[0.0, -1.0, 0.0, 0.0], 2).unwrap();
        assert_eq!(b.edges(), Binning::equal(4, 2).unwrap().edges());
        // Requesting more cells than values clamps.
        let b = Binning::equal_mass(&[1.0, 1.0], 9).unwrap();
        assert_eq!(b.cells(), 2);
        assert!(Binning::equal_mass(&[], 1).is_err());
    }

    #[test]
    fn overlaps_whole_domain_sums_to_cells() {
        let b = Binning::equal(97, 13).unwrap();
        let o = b.overlaps(0, 96);
        assert_eq!(o.len(), 13);
        assert!(o.iter().all(|&(_, f)| (f - 1.0).abs() < 1e-12));
    }
}
