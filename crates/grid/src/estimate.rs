//! An estimated grid: a spec plus per-cell frequency estimates.

use felip_common::{Predicate, PredicateTarget};

use crate::spec::GridSpec;

/// A grid together with the aggregator's frequency estimate for each cell
/// (fractions of the population; ideally non-negative and summing to 1 after
/// post-processing, but raw FO output may violate both).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedGrid {
    spec: GridSpec,
    freqs: Vec<f64>,
}

impl EstimatedGrid {
    /// Wraps per-cell estimates for `spec`.
    ///
    /// # Panics
    /// Panics when the estimate vector length does not match the cell count.
    pub fn new(spec: GridSpec, freqs: Vec<f64>) -> Self {
        assert_eq!(
            freqs.len(),
            spec.num_cells() as usize,
            "estimate vector length must equal the cell count"
        );
        EstimatedGrid { spec, freqs }
    }

    /// The grid specification.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Per-cell frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Mutable per-cell frequencies (used by post-processing).
    pub fn freqs_mut(&mut self) -> &mut [f64] {
        &mut self.freqs
    }

    /// Frequency of one cell.
    pub fn freq(&self, cell: u32) -> f64 {
        self.freqs[cell as usize]
    }

    /// Marginal frequencies along the axis covering `attr` (summing out the
    /// other axis for 2-D grids). Returns one entry per cell of that axis.
    ///
    /// # Panics
    /// Panics when the grid does not cover `attr`.
    pub fn marginal_along(&self, attr: usize) -> Vec<f64> {
        let axes = self.spec.axes();
        match axes {
            [a] => {
                assert_eq!(a.attr, attr, "grid does not cover attribute {attr}");
                self.freqs.clone()
            }
            [a, b] => {
                let lb = b.cells() as usize;
                if a.attr == attr {
                    self.freqs
                        .chunks_exact(lb)
                        .map(|row| row.iter().sum())
                        .collect()
                } else {
                    assert_eq!(b.attr, attr, "grid does not cover attribute {attr}");
                    let mut out = vec![0.0; lb];
                    for row in self.freqs.chunks_exact(lb) {
                        for (o, f) in out.iter_mut().zip(row) {
                            *o += f;
                        }
                    }
                    out
                }
            }
            _ => unreachable!("grids are 1-D or 2-D"),
        }
    }

    /// Per-cell weights in `[0, 1]` describing how much of each cell along
    /// the axis covering `attr` is selected by `pred`, under the in-cell
    /// uniformity assumption. Ranges produce fractional edge weights; sets
    /// on categorical axes produce 0/1 weights.
    pub fn axis_selection_weights(&self, attr: usize, pred: &Predicate) -> Vec<f64> {
        let axis = self
            .spec
            .axis_for(attr)
            .expect("grid must cover the predicate attribute");
        let l = axis.cells() as usize;
        let mut w = vec![0.0; l];
        match &pred.target {
            PredicateTarget::Range { lo, hi } => {
                for (cell, frac) in axis.binning.overlaps(*lo, *hi) {
                    w[cell as usize] = frac;
                }
            }
            PredicateTarget::Set(vals) => {
                for &v in vals {
                    let c = axis.binning.cell_of(v);
                    // With identity binning each categorical value is its own
                    // cell; a binned numerical axis accrues one value's share.
                    w[c as usize] += 1.0 / axis.binning.width(c) as f64;
                }
                for x in &mut w {
                    *x = x.min(1.0);
                }
            }
        }
        w
    }

    /// Answers a query touching only this grid's attributes, using the
    /// uniformity assumption for partially covered cells. This is how OUG
    /// answers 2-D sub-queries directly from a grid.
    pub fn answer(&self, preds: &[&Predicate]) -> f64 {
        let axes = self.spec.axes();
        match axes {
            [a] => {
                let p = preds
                    .iter()
                    .find(|p| p.attr == a.attr)
                    .expect("1-D grid answer needs a predicate on its attribute");
                let w = self.axis_selection_weights(a.attr, p);
                w.iter().zip(&self.freqs).map(|(w, f)| w * f).sum()
            }
            [a, b] => {
                let ones = vec![1.0; a.cells() as usize];
                let wa = preds
                    .iter()
                    .find(|p| p.attr == a.attr)
                    .map(|p| self.axis_selection_weights(a.attr, p))
                    .unwrap_or(ones);
                let wb = preds
                    .iter()
                    .find(|p| p.attr == b.attr)
                    .map(|p| self.axis_selection_weights(b.attr, p))
                    .unwrap_or_else(|| vec![1.0; b.cells() as usize]);
                let lb = b.cells() as usize;
                let mut total = 0.0;
                for (ix, wx) in wa.iter().enumerate() {
                    if *wx == 0.0 {
                        continue;
                    }
                    for (iy, wy) in wb.iter().enumerate() {
                        if *wy != 0.0 {
                            total += wx * wy * self.freqs[ix * lb + iy];
                        }
                    }
                }
                total
            }
            _ => unreachable!("grids are 1-D or 2-D"),
        }
    }

    /// Sum of all cell frequencies (≈ 1 after post-processing).
    pub fn total(&self) -> f64 {
        self.freqs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::{Attribute, Schema};
    use felip_fo::FoKind;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 100),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    #[test]
    fn marginals_of_2d_grid() {
        // 2 × 4 grid over (x, c): freqs laid out row-major.
        let spec = GridSpec::two_dim(&schema(), 0, 1, 2, 4, FoKind::Olh).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.1, 0.2, 0.0, 0.1, 0.05, 0.15, 0.3, 0.1]);
        let mx = g.marginal_along(0);
        assert_eq!(mx.len(), 2);
        assert!((mx[0] - 0.4).abs() < 1e-12);
        assert!((mx[1] - 0.6).abs() < 1e-12);
        let mc = g.marginal_along(1);
        assert_eq!(mc.len(), 4);
        assert!((mc[0] - 0.15).abs() < 1e-12);
        assert!((mc[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn answer_full_cover_range() {
        // 4-cell 1-D grid over x (cells of width 25).
        let spec = GridSpec::one_dim(&schema(), 0, 4, FoKind::Olh).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.25, 0.25, 0.25, 0.25]);
        let p = Predicate::between(0, 25, 74); // exactly cells 1 and 2
        assert!((g.answer(&[&p]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn answer_partial_cells_use_uniformity() {
        let spec = GridSpec::one_dim(&schema(), 0, 4, FoKind::Olh).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.4, 0.2, 0.2, 0.2]);
        // [0, 12] covers 13/25 of cell 0.
        let p = Predicate::between(0, 0, 12);
        assert!((g.answer(&[&p]) - 0.4 * 13.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn answer_categorical_set() {
        let spec = GridSpec::one_dim(&schema(), 1, 4, FoKind::Grr).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.1, 0.2, 0.3, 0.4]);
        let p = Predicate::in_set(1, vec![1, 3]);
        assert!((g.answer(&[&p]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn answer_2d_mixed() {
        let spec = GridSpec::two_dim(&schema(), 0, 1, 2, 4, FoKind::Olh).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.1, 0.2, 0.0, 0.1, 0.05, 0.15, 0.3, 0.1]);
        // Full range on x, category 1 or 2 on c.
        let px = Predicate::between(0, 0, 99);
        let pc = Predicate::in_set(1, vec![1, 2]);
        let expect = 0.2 + 0.0 + 0.15 + 0.3;
        assert!((g.answer(&[&px, &pc]) - expect).abs() < 1e-12);
        // Missing predicate on one axis = full axis.
        assert!((g.answer(&[&pc]) - expect).abs() < 1e-12);
    }

    #[test]
    fn total_sums_cells() {
        let spec = GridSpec::one_dim(&schema(), 1, 4, FoKind::Grr).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.1, 0.2, 0.3, 0.4]);
        assert!((g.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn rejects_wrong_length() {
        let spec = GridSpec::one_dim(&schema(), 1, 4, FoKind::Grr).unwrap();
        EstimatedGrid::new(spec, vec![0.5; 3]);
    }
}
