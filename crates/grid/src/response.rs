//! Response matrices via iterative weighted update (Algorithm 3, §5.5).
//!
//! For every attribute pair `(a_i, a_j)` the aggregator materialises a
//! `d_i × d_j` matrix `M` whose entry `[x, y]` estimates the joint frequency
//! of the 2-D value `(x, y)`. `M` is fitted against every *related grid*:
//! the pair's 2-D grid and (in OHG) the finer 1-D grids of its numerical
//! attributes. Each grid cell constrains the total mass of the rectangle of
//! 2-D values it covers; the weighted-update sweep rescales each rectangle
//! to match its cell's estimate, iterating until the total change falls
//! below a threshold (`< 1/n` per the paper).
//!
//! When both attributes are categorical the pair's grid is already at value
//! granularity and *is* the response matrix.

use felip_common::{Error, Predicate, PredicateTarget, Result};

use crate::estimate::EstimatedGrid;
use crate::spec::GridId;

/// Hard cap on weighted-update sweeps; convergence is typically ≤ 30.
const MAX_SWEEPS: usize = 200;

/// A dense `d_i × d_j` joint-frequency estimate for one attribute pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMatrix {
    attr_i: usize,
    attr_j: usize,
    di: u32,
    dj: u32,
    /// Row-major: `values[x * dj + y]`.
    values: Vec<f64>,
}

impl ResponseMatrix {
    /// Builds the response matrix for pair `(attr_i, attr_j)` from its
    /// related grids `Γ` (Algorithm 3).
    ///
    /// `related` must contain the 2-D grid `G(i, j)` and may contain 1-D
    /// grids `G(i)` and/or `G(j)`; every grid must cover only these two
    /// attributes. `threshold` is the convergence bound on the summed
    /// absolute per-sweep change (use `1/n`).
    ///
    /// Grids carrying non-finite frequencies (NaN/Inf from a degenerate
    /// estimation) are rejected with [`Error::NumericalInstability`]: one
    /// NaN constraint would silently poison the whole fit.
    ///
    /// # Panics
    /// Panics when `related` is empty or contains a grid over a foreign
    /// attribute.
    pub fn build(
        attr_i: usize,
        attr_j: usize,
        di: u32,
        dj: u32,
        related: &[&EstimatedGrid],
        threshold: f64,
    ) -> Result<Self> {
        let _span = felip_obs::span!("response_matrix");
        assert!(
            !related.is_empty(),
            "response matrix needs at least one related grid"
        );
        for g in related {
            for a in g.spec().id().attrs() {
                assert!(
                    a == attr_i || a == attr_j,
                    "related grid {} covers foreign attribute {a}",
                    g.spec().id()
                );
            }
            if let Some(cell) = g.freqs().iter().position(|f| !f.is_finite()) {
                return Err(Error::NumericalInstability(format!(
                    "grid {} cell {cell} frequency is {}",
                    g.spec().id(),
                    g.freqs()[cell]
                )));
            }
        }
        let (din, djn) = (di as usize, dj as usize);
        let mut values = vec![1.0 / (din as f64 * djn as f64); din * djn];

        // Precompute, per grid and cell, the value-rectangle it constrains.
        struct Constraint {
            /// Row range `[r0, r1)` of matrix rows (attr_i values).
            rows: (u32, u32),
            /// Column range `[c0, c1)`.
            cols: (u32, u32),
            /// Target mass: the cell's estimated frequency.
            target: f64,
        }
        let mut constraints: Vec<Constraint> = Vec::new();
        for g in related {
            let spec = g.spec();
            for cell in 0..spec.num_cells() {
                let (ci, cj) = spec.cell_coords(cell);
                let (rows, cols) = match spec.id() {
                    GridId::One(a) if a == attr_i => {
                        (spec.axes()[0].binning.cell_range(ci), (0, dj))
                    }
                    GridId::One(_) => ((0, di), spec.axes()[0].binning.cell_range(ci)),
                    GridId::Two(a, _) => {
                        let (rx, ry) = (
                            spec.axes()[0].binning.cell_range(ci),
                            spec.axes()[1].binning.cell_range(cj.expect("2-D cell")),
                        );
                        // Grid axes are ordered (min, max) attr; the matrix is
                        // (attr_i rows, attr_j cols).
                        if a == attr_i {
                            (rx, ry)
                        } else {
                            (ry, rx)
                        }
                    }
                };
                constraints.push(Constraint {
                    rows,
                    cols,
                    target: g.freq(cell),
                });
            }
        }

        let mut sweeps: u64 = 0;
        for _ in 0..MAX_SWEEPS {
            sweeps += 1;
            let mut change = 0.0;
            for c in &constraints {
                let mut s = 0.0;
                for x in c.rows.0..c.rows.1 {
                    let row = &values[(x as usize) * djn..][..djn];
                    for y in c.cols.0..c.cols.1 {
                        s += row[y as usize];
                    }
                }
                if s <= 0.0 {
                    continue;
                }
                let scale = c.target / s;
                if (scale - 1.0).abs() < 1e-15 {
                    continue;
                }
                for x in c.rows.0..c.rows.1 {
                    let row = &mut values[(x as usize) * djn..][..djn];
                    for y in c.cols.0..c.cols.1 {
                        let old = row[y as usize];
                        let new = old * scale;
                        change += (new - old).abs();
                        row[y as usize] = new;
                    }
                }
            }
            if change < threshold {
                break;
            }
        }
        felip_obs::hist!("grid.response.sweeps", sweeps, "sweeps");

        Ok(ResponseMatrix {
            attr_i,
            attr_j,
            di,
            dj,
            values,
        })
    }

    /// Wraps a categorical × categorical grid, which is already at value
    /// granularity (§5.5: "the estimated grid G(i,j) is already the response
    /// matrix").
    pub fn from_cat_cat_grid(grid: &EstimatedGrid) -> Self {
        let spec = grid.spec();
        let GridId::Two(i, j) = spec.id() else {
            panic!("from_cat_cat_grid needs a 2-D grid");
        };
        let (di, dj) = (spec.axes()[0].cells(), spec.axes()[1].cells());
        ResponseMatrix {
            attr_i: i,
            attr_j: j,
            di,
            dj,
            values: grid.freqs().to_vec(),
        }
    }

    /// The attribute pair `(i, j)` this matrix describes.
    pub fn attrs(&self) -> (usize, usize) {
        (self.attr_i, self.attr_j)
    }

    /// Matrix dimensions `(d_i, d_j)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.di, self.dj)
    }

    /// Estimated joint frequency of value pair `(x, y)`.
    pub fn get(&self, x: u32, y: u32) -> f64 {
        self.values[(x as usize) * self.dj as usize + y as usize]
    }

    /// Total mass (≈ 1 when fitted against proper distributions).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Answers a 2-D query `(pred_i ∧ pred_j)` exactly from the matrix —
    /// no uniformity assumption needed at value granularity. Either
    /// predicate may be `None` (unconstrained axis).
    pub fn answer(&self, pred_i: Option<&Predicate>, pred_j: Option<&Predicate>) -> f64 {
        let sel_i = selection_mask(pred_i, self.di);
        let sel_j = selection_mask(pred_j, self.dj);
        let djn = self.dj as usize;
        let mut total = 0.0;
        for (x, keep_row) in sel_i.iter().enumerate() {
            if !keep_row {
                continue;
            }
            let row = &self.values[x * djn..][..djn];
            for (y, keep_col) in sel_j.iter().enumerate() {
                if *keep_col {
                    total += row[y];
                }
            }
        }
        total
    }

    /// Marginal over rows (one entry per value of `attr_i`).
    pub fn row_marginal(&self) -> Vec<f64> {
        let djn = self.dj as usize;
        self.values
            .chunks_exact(djn)
            .map(|r| r.iter().sum())
            .collect()
    }

    /// Marginal over columns (one entry per value of `attr_j`).
    pub fn col_marginal(&self) -> Vec<f64> {
        let djn = self.dj as usize;
        let mut out = vec![0.0; djn];
        for row in self.values.chunks_exact(djn) {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }
}

fn selection_mask(pred: Option<&Predicate>, d: u32) -> Vec<bool> {
    match pred {
        None => vec![true; d as usize],
        Some(p) => match &p.target {
            PredicateTarget::Range { lo, hi } => (0..d).map(|v| *lo <= v && v <= *hi).collect(),
            PredicateTarget::Set(vals) => {
                let mut m = vec![false; d as usize];
                for &v in vals {
                    m[v as usize] = true;
                }
                m
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;
    use felip_common::{Attribute, Schema};
    use felip_fo::FoKind;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 8),
            Attribute::numerical("y", 8),
            Attribute::categorical("c", 3),
        ])
        .unwrap()
    }

    /// With only a 2-D grid as constraint, the matrix spreads each cell's
    /// mass uniformly over its rectangle.
    #[test]
    fn single_grid_uniform_spread() {
        let s = schema();
        let spec = GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap();
        let g = EstimatedGrid::new(spec, vec![0.4, 0.1, 0.2, 0.3]);
        let m = ResponseMatrix::build(0, 1, 8, 8, &[&g], 1e-9).unwrap();
        // Cell (0,0) covers rows 0..4, cols 0..4 → each of 16 values = 0.4/16.
        assert!((m.get(0, 0) - 0.4 / 16.0).abs() < 1e-9);
        assert!((m.get(5, 2) - 0.2 / 16.0).abs() < 1e-9);
        assert!((m.total() - 1.0).abs() < 1e-9);
    }

    /// Adding 1-D grids refines the within-cell distribution (the OHG
    /// mechanism): the row marginal must match the 1-D grid.
    #[test]
    fn one_dim_grids_refine_marginals() {
        let s = schema();
        let g2 = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap(),
            vec![0.25, 0.25, 0.25, 0.25],
        );
        // Fine 1-D grid on x: heavily skewed inside the first half.
        let g1 = EstimatedGrid::new(
            GridSpec::one_dim(&s, 0, 8, FoKind::Olh).unwrap(),
            vec![0.4, 0.1, 0.0, 0.0, 0.125, 0.125, 0.125, 0.125],
        );
        let m = ResponseMatrix::build(0, 1, 8, 8, &[&g2, &g1], 1e-12).unwrap();
        let rows = m.row_marginal();
        assert!((rows[0] - 0.4).abs() < 1e-6, "row 0 = {}", rows[0]);
        assert!((rows[2] - 0.0).abs() < 1e-6);
        // And the 2-D constraints still hold.
        let q = m.answer(
            Some(&Predicate::between(0, 0, 3)),
            Some(&Predicate::between(1, 0, 3)),
        );
        assert!((q - 0.25).abs() < 1e-6, "quadrant = {q}");
    }

    #[test]
    fn cat_cat_grid_is_matrix() {
        let s = schema();
        let sc = Schema::new(vec![
            Attribute::categorical("a", 2),
            Attribute::categorical("b", 3),
        ])
        .unwrap();
        let _ = s;
        let g = EstimatedGrid::new(
            GridSpec::two_dim(&sc, 0, 1, 2, 3, FoKind::Grr).unwrap(),
            vec![0.1, 0.2, 0.3, 0.15, 0.05, 0.2],
        );
        let m = ResponseMatrix::from_cat_cat_grid(&g);
        assert_eq!(m.dims(), (2, 3));
        assert!((m.get(1, 2) - 0.2).abs() < 1e-12);
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn answer_with_set_predicate() {
        let s = schema();
        let g = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 2, 4, 3, FoKind::Olh).unwrap(),
            vec![
                0.05,
                0.05,
                0.0, //
                0.1,
                0.0,
                0.1, //
                0.2,
                0.1,
                0.0, //
                0.953 - 0.6,
                0.03,
                0.017,
            ],
        );
        let m = ResponseMatrix::build(0, 2, 8, 3, &[&g], 1e-10).unwrap();
        // Categorical attr 2, set {0, 2}; numerical rows 0..8 full.
        let a = m.answer(None, Some(&Predicate::in_set(2, vec![0, 2])));
        let expect: f64 = 0.05 + 0.0 + 0.1 + 0.1 + 0.2 + 0.0 + (0.953 - 0.6) + 0.017;
        assert!((a - expect).abs() < 1e-6, "{a} vs {expect}");
    }

    #[test]
    fn unconstrained_answer_is_total() {
        let s = schema();
        let g = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap(),
            vec![0.25; 4],
        );
        let m = ResponseMatrix::build(0, 1, 8, 8, &[&g], 1e-9).unwrap();
        assert!((m.answer(None, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marginals_sum_to_total() {
        let s = schema();
        let g = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 1, 4, 2, FoKind::Olh).unwrap(),
            vec![0.1, 0.05, 0.2, 0.05, 0.15, 0.1, 0.25, 0.1],
        );
        let m = ResponseMatrix::build(0, 1, 8, 8, &[&g], 1e-10).unwrap();
        let r: f64 = m.row_marginal().iter().sum();
        let c: f64 = m.col_marginal().iter().sum();
        assert!((r - m.total()).abs() < 1e-9);
        assert!((c - m.total()).abs() < 1e-9);
    }

    #[test]
    fn converges_with_conflicting_constraints() {
        // 1-D and 2-D grids that disagree: IPF must still terminate and
        // produce a sensible compromise (total ≈ 1).
        let s = schema();
        let g2 = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap(),
            vec![0.5, 0.0, 0.0, 0.5],
        );
        let g1 = EstimatedGrid::new(
            GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap(),
            vec![0.3, 0.7],
        );
        let m = ResponseMatrix::build(0, 1, 8, 8, &[&g2, &g1], 1e-9).unwrap();
        assert!(m.total() > 0.9 && m.total() < 1.1, "total {}", m.total());
    }

    #[test]
    #[should_panic(expected = "foreign attribute")]
    fn rejects_foreign_grid() {
        let s = schema();
        let g = EstimatedGrid::new(
            GridSpec::one_dim(&s, 2, 3, FoKind::Grr).unwrap(),
            vec![0.3, 0.3, 0.4],
        );
        let _ = ResponseMatrix::build(0, 1, 8, 8, &[&g], 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_related_set() {
        ResponseMatrix::build(0, 1, 8, 8, &[], 1e-9).unwrap();
    }

    #[test]
    fn rejects_nan_and_inf_frequencies() {
        use felip_common::Error;
        let s = schema();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let g = EstimatedGrid::new(
                GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap(),
                vec![0.25, bad, 0.25, 0.25],
            );
            let err = ResponseMatrix::build(0, 1, 8, 8, &[&g], 1e-9).unwrap_err();
            assert!(
                matches!(err, Error::NumericalInstability(_)),
                "{bad}: {err}"
            );
        }
        // A NaN hiding in a *related 1-D* grid is caught too.
        let g2 = EstimatedGrid::new(
            GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap(),
            vec![0.25; 4],
        );
        let g1 = EstimatedGrid::new(
            GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap(),
            vec![f64::NAN, 1.0],
        );
        assert!(ResponseMatrix::build(0, 1, 8, 8, &[&g2, &g1], 1e-9).is_err());
    }
}
