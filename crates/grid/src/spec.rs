//! Grid specifications: which attributes a grid covers and how each axis is
//! binned.

use felip_common::{AttrKind, Error, Result, Schema};
use felip_fo::FoKind;

use crate::bins::Binning;

/// Identifies a grid within a collection plan by the attributes it covers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum GridId {
    /// 1-D grid over a single attribute.
    One(usize),
    /// 2-D grid over an attribute pair `(i, j)` with `i < j`.
    Two(usize, usize),
}

impl GridId {
    /// Attributes this grid covers (1 or 2 of them).
    pub fn attrs(&self) -> Vec<usize> {
        match self {
            GridId::One(a) => vec![*a],
            GridId::Two(i, j) => vec![*i, *j],
        }
    }

    /// `true` when the grid covers `attr`.
    pub fn covers(&self, attr: usize) -> bool {
        match self {
            GridId::One(a) => *a == attr,
            GridId::Two(i, j) => *i == attr || *j == attr,
        }
    }
}

impl std::fmt::Display for GridId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridId::One(a) => write!(f, "G({a})"),
            GridId::Two(i, j) => write!(f, "G({i},{j})"),
        }
    }
}

/// One axis of a grid: an attribute and its binning.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Axis {
    /// Index of the attribute in the schema.
    pub attr: usize,
    /// Whether the attribute is categorical (identity binning) or numerical.
    pub kind: AttrKind,
    /// The partition of the attribute's domain into cells.
    pub binning: Binning,
}

impl Axis {
    /// Builds an axis for `attr` with `cells` near-equal-width cells.
    /// Categorical attributes must use identity binning (`cells == domain`).
    pub fn new(schema: &Schema, attr: usize, cells: u32) -> Result<Self> {
        let a = schema.attr(attr);
        if a.kind == AttrKind::Categorical && cells != a.domain {
            return Err(Error::InvalidParameter(format!(
                "categorical attribute `{}` must have one cell per value ({} != {})",
                a.name, cells, a.domain
            )));
        }
        Ok(Axis {
            attr,
            kind: a.kind,
            binning: Binning::equal(a.domain, cells)?,
        })
    }

    /// Builds an axis with an explicit (possibly non-equal-width) binning —
    /// the data-aware two-phase extension uses equal-*mass* binnings here.
    ///
    /// The binning must span the attribute's domain exactly; categorical
    /// attributes still require identity binning.
    pub fn with_binning(schema: &Schema, attr: usize, binning: Binning) -> Result<Self> {
        let a = schema.attr(attr);
        if binning.domain() != a.domain {
            return Err(Error::InvalidParameter(format!(
                "binning spans 0..{} but attribute `{}` has domain 0..{}",
                binning.domain(),
                a.name,
                a.domain
            )));
        }
        if a.kind == AttrKind::Categorical && binning.cells() != a.domain {
            return Err(Error::InvalidParameter(format!(
                "categorical attribute `{}` must have one cell per value",
                a.name
            )));
        }
        Ok(Axis {
            attr,
            kind: a.kind,
            binning,
        })
    }

    /// Number of cells along this axis.
    pub fn cells(&self) -> u32 {
        self.binning.cells()
    }
}

/// A full grid specification: axes, the frequency-oracle protocol used to
/// report on it, and the user-group index assigned to it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GridSpec {
    id: GridId,
    axes: Vec<Axis>,
    /// Protocol chosen by the Adaptive Frequency Oracle for this grid.
    pub fo: FoKind,
}

impl GridSpec {
    /// A 1-D grid over one attribute.
    pub fn one_dim(schema: &Schema, attr: usize, cells: u32, fo: FoKind) -> Result<Self> {
        Ok(GridSpec {
            id: GridId::One(attr),
            axes: vec![Axis::new(schema, attr, cells)?],
            fo,
        })
    }

    /// A 2-D grid over attributes `i < j` with `lx × ly` cells.
    pub fn two_dim(
        schema: &Schema,
        i: usize,
        j: usize,
        lx: u32,
        ly: u32,
        fo: FoKind,
    ) -> Result<Self> {
        if i >= j {
            return Err(Error::InvalidParameter(format!(
                "2-D grid attributes must satisfy i < j, got ({i}, {j})"
            )));
        }
        Ok(GridSpec {
            id: GridId::Two(i, j),
            axes: vec![Axis::new(schema, i, lx)?, Axis::new(schema, j, ly)?],
            fo,
        })
    }

    /// A grid from pre-built axes (the data-aware two-phase extension
    /// injects equal-mass binnings this way). 1-D grids take one axis; 2-D
    /// grids take two with strictly increasing attribute indices.
    pub fn from_axes(axes: Vec<Axis>, fo: FoKind) -> Result<Self> {
        match axes.as_slice() {
            [a] => Ok(GridSpec {
                id: GridId::One(a.attr),
                axes,
                fo,
            }),
            [a, b] if a.attr < b.attr => Ok(GridSpec {
                id: GridId::Two(a.attr, b.attr),
                axes,
                fo,
            }),
            [_, _] => Err(Error::InvalidParameter(
                "2-D grid axes must have strictly increasing attribute indices".into(),
            )),
            _ => Err(Error::InvalidParameter("grids are 1-D or 2-D".into())),
        }
    }

    /// The grid's identifier.
    pub fn id(&self) -> GridId {
        self.id
    }

    /// The axes (1 or 2).
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The axis covering `attr`, if any.
    pub fn axis_for(&self, attr: usize) -> Option<&Axis> {
        self.axes.iter().find(|ax| ax.attr == attr)
    }

    /// Total number of cells `L` (the FO domain size for this grid).
    pub fn num_cells(&self) -> u32 {
        self.axes.iter().map(|a| a.cells()).product()
    }

    /// Projects a full record onto this grid's cell index.
    ///
    /// For a 2-D grid with `lx × ly` cells the index is `ix · ly + iy`
    /// (row-major).
    #[inline]
    pub fn cell_of_record(&self, record: &[u32]) -> u32 {
        match self.axes.as_slice() {
            [a] => a.binning.cell_of(record[a.attr]),
            [a, b] => {
                a.binning.cell_of(record[a.attr]) * b.cells() + b.binning.cell_of(record[b.attr])
            }
            _ => unreachable!("grids are 1-D or 2-D"),
        }
    }

    /// Decomposes a cell index into per-axis cell coordinates.
    pub fn cell_coords(&self, cell: u32) -> (u32, Option<u32>) {
        match self.axes.as_slice() {
            [_] => (cell, None),
            [_, b] => (cell / b.cells(), Some(cell % b.cells())),
            _ => unreachable!("grids are 1-D or 2-D"),
        }
    }

    /// Recomposes per-axis coordinates into a cell index.
    pub fn cell_index(&self, ix: u32, iy: Option<u32>) -> u32 {
        match self.axes.as_slice() {
            [_] => ix,
            [_, b] => ix * b.cells() + iy.expect("2-D grid needs two coordinates"),
            _ => unreachable!("grids are 1-D or 2-D"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 100),
            Attribute::categorical("c", 4),
            Attribute::numerical("y", 30),
        ])
        .unwrap()
    }

    #[test]
    fn one_dim_projection() {
        let g = GridSpec::one_dim(&schema(), 0, 5, FoKind::Olh).unwrap();
        assert_eq!(g.num_cells(), 5);
        assert_eq!(g.cell_of_record(&[0, 0, 0]), 0);
        assert_eq!(g.cell_of_record(&[99, 0, 0]), 4);
        assert_eq!(g.cell_of_record(&[20, 3, 29]), 1);
    }

    #[test]
    fn two_dim_projection_row_major() {
        let g = GridSpec::two_dim(&schema(), 0, 2, 4, 3, FoKind::Grr).unwrap();
        assert_eq!(g.num_cells(), 12);
        // x = 99 → cell 3; y = 29 → cell 2 → index 3*3 + 2 = 11.
        assert_eq!(g.cell_of_record(&[99, 0, 29]), 11);
        assert_eq!(g.cell_coords(11), (3, Some(2)));
        assert_eq!(g.cell_index(3, Some(2)), 11);
    }

    #[test]
    fn coords_round_trip() {
        let g = GridSpec::two_dim(&schema(), 0, 2, 7, 5, FoKind::Olh).unwrap();
        for cell in 0..g.num_cells() {
            let (ix, iy) = g.cell_coords(cell);
            assert_eq!(g.cell_index(ix, iy), cell);
        }
    }

    #[test]
    fn categorical_axis_must_be_identity() {
        assert!(GridSpec::one_dim(&schema(), 1, 2, FoKind::Grr).is_err());
        let g = GridSpec::one_dim(&schema(), 1, 4, FoKind::Grr).unwrap();
        assert_eq!(g.num_cells(), 4);
    }

    #[test]
    fn mixed_cat_num_grid() {
        let g = GridSpec::two_dim(&schema(), 0, 1, 10, 4, FoKind::Olh).unwrap();
        assert_eq!(g.num_cells(), 40);
        assert_eq!(g.cell_of_record(&[55, 2, 0]), 5 * 4 + 2);
    }

    #[test]
    fn rejects_unordered_pair() {
        assert!(GridSpec::two_dim(&schema(), 2, 0, 3, 3, FoKind::Olh).is_err());
        assert!(GridSpec::two_dim(&schema(), 1, 1, 4, 4, FoKind::Olh).is_err());
    }

    #[test]
    fn grid_id_covers() {
        assert!(GridId::Two(0, 2).covers(0));
        assert!(GridId::Two(0, 2).covers(2));
        assert!(!GridId::Two(0, 2).covers(1));
        assert!(GridId::One(1).covers(1));
        assert_eq!(GridId::Two(0, 2).attrs(), vec![0, 2]);
        assert_eq!(GridId::Two(0, 2).to_string(), "G(0,2)");
    }

    #[test]
    fn axis_lookup() {
        let g = GridSpec::two_dim(&schema(), 0, 2, 4, 3, FoKind::Olh).unwrap();
        assert_eq!(g.axis_for(0).unwrap().cells(), 4);
        assert_eq!(g.axis_for(2).unwrap().cells(), 3);
        assert!(g.axis_for(1).is_none());
    }
}
