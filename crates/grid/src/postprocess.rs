//! Post-processing of estimated grids (§5.4).
//!
//! Two steps, alternated and ending with non-negativity:
//!
//! 1. **Norm-sub** (Algorithm 1): clamp negative estimates to zero and
//!    redistribute the deficit equally over the positive ones until the grid
//!    is a proper distribution (non-negative, summing to 1).
//! 2. **Consistency** (Algorithm 2): an attribute appears in several grids;
//!    align the per-subdomain mass every grid implies for it to their
//!    inverse-variance weighted average.
//!
//! FELIP's grids have *heterogeneous* binnings (each grid is sized
//! individually), so unlike HDG the cell boundaries of two grids sharing an
//! attribute need not nest. We therefore align on the **atomic partition**:
//! the union of all cell edges of the attribute across its grids. Each atom
//! lies inside exactly one cell of every grid, so each grid's implied mass
//! on an atom is `φ · f_cell` (uniformity within the cell), with
//! `φ = |atom| / |cell|`, and its variance is `φ² · Var[marginal cell]`.
//! When binnings nest this reduces exactly to the paper's construction, and
//! the inverse-variance weights reduce to the `θ_j ∝ 1/|L_j|` of Algorithm 2.

use crate::estimate::EstimatedGrid;
use felip_common::{Error, Result};

/// Maximum norm-sub sweeps; convergence is typically < 10 sweeps.
const MAX_NORM_SUB_ITERS: usize = 1_000;

/// Rejects grids whose frequencies contain NaN/Inf before any mass is moved;
/// a single non-finite cell would otherwise poison every grid sharing an
/// attribute with it through the weighted averages.
fn check_finite(grids: &[EstimatedGrid], stage: &str) -> Result<()> {
    for g in grids {
        if let Some(cell) = g.freqs().iter().position(|f| !f.is_finite()) {
            return Err(Error::NumericalInstability(format!(
                "{stage}: grid {} cell {cell} frequency is {}",
                g.spec().id(),
                g.freqs()[cell]
            )));
        }
    }
    Ok(())
}

/// Algorithm 1: removes negative estimations and renormalises to `target`
/// total mass (1.0 for frequency grids).
///
/// Repeatedly clamps negatives to zero and spreads the residual
/// `target − Σf` equally over the currently positive entries. Terminates
/// when all entries are non-negative and the total matches `target` (within
/// 1e-12), or after a bounded number of sweeps. If every entry is wiped
/// out (all non-positive input), falls back to the uniform distribution.
pub fn norm_sub(freqs: &mut [f64], target: f64) {
    if freqs.is_empty() {
        return;
    }
    // Accumulated locally across sweeps; one counter add per call.
    let mut clipped: u64 = 0;
    'sweeps: for _ in 0..MAX_NORM_SUB_ITERS {
        for f in freqs.iter_mut() {
            if *f < 0.0 {
                *f = 0.0;
                clipped += 1;
            }
        }
        let positive: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0.0).collect();
        if positive.is_empty() {
            let u = target / freqs.len() as f64;
            freqs.iter_mut().for_each(|f| *f = u);
            break 'sweeps;
        }
        let sum: f64 = positive.iter().map(|&i| freqs[i]).sum();
        let diff = (target - sum) / positive.len() as f64;
        if diff.abs() < 1e-12 {
            break 'sweeps;
        }
        for &i in &positive {
            freqs[i] += diff;
        }
        // Adding a non-negative diff cannot create negatives: done.
        if diff >= 0.0 {
            break 'sweeps;
        }
        // Negative diff may have pushed small entries below zero → sweep again.
        if freqs.iter().all(|&f| f >= 0.0) {
            break 'sweeps;
        }
    }
    felip_obs::counter!("grid.normsub.clipped_cells", clipped, "cells");
}

/// Algorithm 2 (generalised): makes the mass each grid implies for every
/// subdomain of `attr` consistent across all grids covering it.
///
/// The alignment subdomains are the cells of the *coarsest* involved grid
/// along the attribute. This is deliberate: aligning any finer would force
/// the coarse grid to extrapolate *inside* its cells via the uniformity
/// assumption, and its sub-cell estimates — low-noise but heavily biased —
/// would then overpower the genuinely fine-grained 1-D grids in the
/// weighted average, destroying exactly the information OHG's hybrid grids
/// add. At cell granularity every grid's subdomain mass `S_j(i)` is a pure
/// sum of its own cells (fractional `φ` splits occur only where a fine cell
/// straddles a coarse edge, a small-width effect), so no bias enters and
/// the paper's inverse-variance weights are the right ones.
///
/// `cell_variances[i]` is the per-cell estimation variance of `grids[i]`
/// (protocol variance factor × m/n for its group); FELIP's grids use
/// different protocols and sizes, so these genuinely differ per grid —
/// a refinement over the paper's uniform `Var₀`.
///
/// For each subdomain the weighted average `S = Σ_j S_j/V_j / Σ_j 1/V_j`
/// is computed and each grid's overlapping cells absorb their grid's
/// deficit proportionally to their overlap (the paper's `(S − S_j)/|L|`
/// update, generalised to fractional overlaps), spread equally along the
/// marginalised axis for 2-D grids.
pub fn enforce_consistency(
    grids: &mut [EstimatedGrid],
    attr: usize,
    cell_variances: &[f64],
) -> Result<()> {
    assert_eq!(grids.len(), cell_variances.len(), "one variance per grid");
    check_finite(grids, "enforce_consistency")?;
    if let Some(i) = cell_variances.iter().position(|v| !v.is_finite()) {
        return Err(Error::NumericalInstability(format!(
            "enforce_consistency: variance of grid #{i} is {}",
            cell_variances[i]
        )));
    }
    let involved: Vec<usize> = (0..grids.len())
        .filter(|&i| grids[i].spec().id().covers(attr))
        .collect();
    if involved.len() < 2 {
        return Ok(()); // nothing to reconcile
    }

    // Subdomains: the coarsest involved binning along `attr`.
    let coarsest = involved
        .iter()
        .copied()
        .min_by_key(|&i| grids[i].spec().axis_for(attr).expect("covered").cells())
        .expect("at least two involved grids");
    let edges: Vec<u32> = grids[coarsest]
        .spec()
        .axis_for(attr)
        .expect("covered")
        .binning
        .edges()
        .to_vec();
    let n_subs = edges.len() - 1;

    // Per involved grid: marginal along attr and, per subdomain, the
    // overlapping cells with their overlap fractions.
    struct GridView {
        grid_idx: usize,
        marginal: Vec<f64>,
        /// Per subdomain: (cell, share φ of the cell's width inside it).
        sub_cells: Vec<Vec<(u32, f64)>>,
        /// Number of cells along the *other* axis (1 for 1-D grids); the
        /// marginal of a 2-D grid sums this many noisy cells.
        other_len: f64,
    }

    let mut views: Vec<GridView> = Vec::with_capacity(involved.len());
    for &gi in &involved {
        let g = &grids[gi];
        let axis = g.spec().axis_for(attr).expect("covered");
        let other_len = (g.spec().num_cells() / axis.cells()) as f64;
        let marginal = g.marginal_along(attr);
        let sub_cells = (0..n_subs)
            .map(|i| axis.binning.overlaps(edges[i], edges[i + 1] - 1))
            .collect();
        views.push(GridView {
            grid_idx: gi,
            marginal,
            sub_cells,
            other_len,
        });
    }

    // Weighted-average mass per subdomain, then per-grid cell corrections.
    let mut mass_moved = 0.0f64;
    for i in 0..n_subs {
        let mut num = 0.0;
        let mut den = 0.0;
        for v in &views {
            let mut s_j = 0.0;
            let mut var_j = 0.0;
            for &(cell, phi) in &v.sub_cells[i] {
                s_j += v.marginal[cell as usize] * phi;
                var_j += cell_variances[v.grid_idx] * v.other_len * phi * phi;
            }
            // Guard against a zero-variance (exact) grid dominating with ∞
            // weight; variances from real FO runs are strictly positive.
            let w = 1.0 / var_j.max(1e-300);
            num += w * s_j;
            den += w;
        }
        let s_avg = num / den;
        for v in &views {
            let mut s_j = 0.0;
            let mut phi_sq = 0.0;
            for &(cell, phi) in &v.sub_cells[i] {
                s_j += v.marginal[cell as usize] * phi;
                phi_sq += phi * phi;
            }
            let delta = s_avg - s_j;
            mass_moved += delta.abs();
            // Distribute the correction with per-cell weights φ/Σφ², so the
            // implied subdomain mass moves by exactly `delta` (each cell's
            // contribution is re-scaled by its own φ): Σ φ·(δφ/Σφ²) = δ.
            // For nested binnings (all φ = 1, k cells) this is the paper's
            // equal δ/k shares.
            for &(cell, phi) in &v.sub_cells[i] {
                apply_cell_delta(&mut grids[v.grid_idx], attr, cell, delta * phi / phi_sq);
            }
        }
    }
    // Total |mass| the alignment moved across all grids, in parts per
    // million (one histogram observation per call — i.e. per attribute).
    felip_obs::hist!(
        "grid.consistency.mass_moved_ppm",
        (mass_moved * 1e6) as u64,
        "ppm"
    );
    Ok(())
}

/// Adds `delta` to the total mass of the cells of `grid` whose coordinate
/// along `attr` is `axis_cell`, distributing it equally over the other axis.
fn apply_cell_delta(grid: &mut EstimatedGrid, attr: usize, axis_cell: u32, delta: f64) {
    // Capture the layout before borrowing the frequencies mutably.
    enum Layout {
        OneDim,
        TwoDim {
            first_is_attr: bool,
            la: u32,
            lb: u32,
        },
    }
    let layout = match grid.spec().axes() {
        [_] => Layout::OneDim,
        [a, b] => Layout::TwoDim {
            first_is_attr: a.attr == attr,
            la: a.cells(),
            lb: b.cells(),
        },
        _ => unreachable!("grids are 1-D or 2-D"),
    };
    let freqs = grid.freqs_mut();
    match layout {
        Layout::OneDim => freqs[axis_cell as usize] += delta,
        Layout::TwoDim {
            first_is_attr: true,
            lb,
            ..
        } => {
            let share = delta / lb as f64;
            for iy in 0..lb {
                freqs[(axis_cell * lb + iy) as usize] += share;
            }
        }
        Layout::TwoDim {
            first_is_attr: false,
            la,
            lb,
        } => {
            let share = delta / la as f64;
            for ix in 0..la {
                freqs[(ix * lb + axis_cell) as usize] += share;
            }
        }
    }
}

/// Full post-processing pipeline of §5.4: alternate consistency (over every
/// attribute shared by ≥ 2 grids) and norm-sub for `rounds` rounds, ending
/// with norm-sub so the response-matrix stage sees proper distributions.
pub fn post_process(
    grids: &mut [EstimatedGrid],
    num_attrs: usize,
    cell_variances: &[f64],
    rounds: usize,
) -> Result<()> {
    let _span = felip_obs::span!("postprocess");
    check_finite(grids, "post_process")?;
    for _ in 0..rounds {
        for attr in 0..num_attrs {
            enforce_consistency(grids, attr, cell_variances)?;
        }
        for g in grids.iter_mut() {
            norm_sub(g.freqs_mut(), 1.0);
        }
    }
    for g in grids.iter_mut() {
        norm_sub(g.freqs_mut(), 1.0);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;
    use felip_common::{Attribute, Schema};
    use felip_fo::FoKind;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 100),
            Attribute::numerical("y", 100),
        ])
        .unwrap()
    }

    #[test]
    fn norm_sub_already_valid_is_stable() {
        let mut f = vec![0.25, 0.25, 0.5];
        norm_sub(&mut f, 1.0);
        assert_eq!(f, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn norm_sub_clamps_and_renormalises() {
        let mut f = vec![-0.1, 0.6, 0.7];
        norm_sub(&mut f, 1.0);
        assert!(f.iter().all(|&x| x >= 0.0));
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(f[0], 0.0);
        // Deficit −0.3 split over the two positives.
        assert!((f[1] - 0.45).abs() < 1e-9);
        assert!((f[2] - 0.55).abs() < 1e-9);
    }

    #[test]
    fn norm_sub_cascading_negatives() {
        // The first redistribution pushes a small positive entry negative;
        // the loop must keep going.
        let mut f = vec![0.05, 0.9, 0.9, -0.2];
        norm_sub(&mut f, 1.0);
        assert!(f.iter().all(|&x| x >= 0.0), "{f:?}");
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn norm_sub_all_negative_goes_uniform() {
        let mut f = vec![-0.5, -0.1, -0.2, -0.3];
        norm_sub(&mut f, 1.0);
        assert!(f.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn norm_sub_underfull_positive() {
        let mut f = vec![0.1, 0.1];
        norm_sub(&mut f, 1.0);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn norm_sub_empty_and_custom_target() {
        let mut f: Vec<f64> = vec![];
        norm_sub(&mut f, 1.0); // must not panic
        let mut g = vec![1.0, 3.0];
        norm_sub(&mut g, 2.0);
        assert!((g.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    /// Two 1-D grids over the same attribute with nesting binnings: after
    /// consistency both imply the same mass on every atom; the lower-variance
    /// grid dominates the average.
    #[test]
    fn consistency_aligns_nested_grids() {
        let s = schema();
        // Grid A: 2 cells; grid B: 4 cells (nested edges).
        let ga = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let gb = GridSpec::one_dim(&s, 0, 4, FoKind::Olh).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(ga, vec![0.6, 0.4]),
            EstimatedGrid::new(gb, vec![0.2, 0.2, 0.3, 0.3]),
        ];
        // Equal per-cell variances.
        enforce_consistency(&mut grids, 0, &[1.0, 1.0]).unwrap();
        // Halves implied by each grid must now agree.
        let a_first_half = grids[0].freqs()[0];
        let b_first_half = grids[1].freqs()[0] + grids[1].freqs()[1];
        assert!(
            (a_first_half - b_first_half).abs() < 1e-9,
            "{a_first_half} vs {b_first_half}"
        );
        // Totals preserved (the update only moves mass to match averages,
        // both grids summed to 1 before).
        assert!((grids[0].total() - 1.0).abs() < 1e-9);
        assert!((grids[1].total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consistency_weights_favor_low_variance() {
        let s = schema();
        let ga = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let gb = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(ga, vec![0.8, 0.2]),
            EstimatedGrid::new(gb, vec![0.2, 0.8]),
        ];
        // Grid 0 has 100× lower variance → the average should sit near 0.8.
        enforce_consistency(&mut grids, 0, &[0.01, 1.0]).unwrap();
        assert!(grids[0].freqs()[0] > 0.75, "{}", grids[0].freqs()[0]);
        assert!(grids[1].freqs()[0] > 0.75, "{}", grids[1].freqs()[0]);
    }

    #[test]
    fn consistency_2d_and_1d() {
        let s = schema();
        // 1-D grid over x with 4 cells; 2-D grid (x, y) with 2 × 2 cells.
        let g1 = GridSpec::one_dim(&s, 0, 4, FoKind::Olh).unwrap();
        let g2 = GridSpec::two_dim(&s, 0, 1, 2, 2, FoKind::Olh).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(g1, vec![0.1, 0.2, 0.3, 0.4]),
            EstimatedGrid::new(g2, vec![0.25, 0.25, 0.25, 0.25]),
        ];
        enforce_consistency(&mut grids, 0, &[1.0, 1.0]).unwrap();
        // x-halves must agree between the grids.
        let h1 = grids[0].freqs()[0] + grids[0].freqs()[1];
        let h2 = grids[1].freqs()[0] + grids[1].freqs()[1];
        assert!((h1 - h2).abs() < 1e-9, "{h1} vs {h2}");
        // Mass moved along x in the 2-D grid is spread equally over y.
        assert!((grids[1].freqs()[0] - grids[1].freqs()[1]).abs() < 1e-12);
    }

    #[test]
    fn consistency_non_nested_edges() {
        let s = schema();
        // 3 cells (edges 0,34,67,100) vs 4 cells (edges 0,25,50,75,100):
        // atomic partition has 7 atoms; must not panic and must preserve mass.
        let ga = GridSpec::one_dim(&s, 0, 3, FoKind::Olh).unwrap();
        let gb = GridSpec::one_dim(&s, 0, 4, FoKind::Grr).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(ga, vec![0.5, 0.3, 0.2]),
            EstimatedGrid::new(gb, vec![0.1, 0.4, 0.4, 0.1]),
        ];
        enforce_consistency(&mut grids, 0, &[1.0, 2.0]).unwrap();
        // Mass is approximately conserved (norm-sub restores the exact
        // total afterwards, per §5.4).
        assert!(
            (grids[0].total() - 1.0).abs() < 0.1,
            "total {}",
            grids[0].total()
        );
        assert!(
            (grids[1].total() - 1.0).abs() < 0.1,
            "total {}",
            grids[1].total()
        );
        // The implied masses agree much more closely at *subdomain*
        // granularity (the coarsest grid's cells: [0,34), [34,67), [67,100)).
        // Exact agreement needs nested binnings — here grid B's cell 1
        // straddles the [0,34) boundary, so consecutive subdomain updates
        // interact; the initial gap of ≈ 0.26 must still shrink sharply.
        let ma = grids[0].marginal_along(0);
        let mb = grids[1].marginal_along(0);
        // Grid A cell 0 covers [0,34) exactly. Grid B overlap: cell 0 fully
        // (φ=1) plus 9/25 of cell 1.
        let sa = ma[0];
        let sb = mb[0] + mb[1] * 9.0 / 25.0;
        assert!((sa - sb).abs() < 0.08, "{sa} vs {sb}");
    }

    #[test]
    fn non_finite_frequencies_are_typed_errors() {
        use felip_common::Error;
        let s = schema();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ga = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
            let gb = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
            let mut grids = vec![
                EstimatedGrid::new(ga, vec![0.5, bad]),
                EstimatedGrid::new(gb, vec![0.5, 0.5]),
            ];
            let err = enforce_consistency(&mut grids, 0, &[1.0, 1.0]).unwrap_err();
            assert!(
                matches!(err, Error::NumericalInstability(_)),
                "{bad}: {err}"
            );
            let err = post_process(&mut grids, 2, &[1.0, 1.0], 1).unwrap_err();
            assert!(matches!(err, Error::NumericalInstability(_)), "{err}");
        }
    }

    #[test]
    fn non_finite_variances_are_typed_errors() {
        use felip_common::Error;
        let s = schema();
        let ga = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let gb = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(ga, vec![0.5, 0.5]),
            EstimatedGrid::new(gb, vec![0.4, 0.6]),
        ];
        let err = enforce_consistency(&mut grids, 0, &[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, Error::NumericalInstability(_)), "{err}");
    }

    #[test]
    fn consistency_single_grid_is_noop() {
        let s = schema();
        let ga = GridSpec::one_dim(&s, 0, 2, FoKind::Olh).unwrap();
        let before = vec![0.7, 0.3];
        let mut grids = vec![EstimatedGrid::new(ga, before.clone())];
        enforce_consistency(&mut grids, 0, &[1.0]).unwrap();
        assert_eq!(grids[0].freqs(), before.as_slice());
    }

    #[test]
    fn post_process_yields_valid_distributions() {
        let s = schema();
        let g1 = GridSpec::one_dim(&s, 0, 4, FoKind::Olh).unwrap();
        let g2 = GridSpec::two_dim(&s, 0, 1, 3, 3, FoKind::Olh).unwrap();
        let mut grids = vec![
            EstimatedGrid::new(g1, vec![-0.05, 0.55, 0.35, 0.25]),
            EstimatedGrid::new(g2, vec![0.2, -0.1, 0.15, 0.05, 0.3, 0.1, 0.2, 0.05, 0.1]),
        ];
        post_process(&mut grids, 2, &[1.0, 1.0], 3).unwrap();
        for g in &grids {
            assert!(g.freqs().iter().all(|&f| f >= 0.0), "{:?}", g.freqs());
            assert!((g.total() - 1.0).abs() < 1e-6, "total {}", g.total());
        }
        // After post-processing, the x-halves of the two grids should be
        // approximately consistent. The binnings do not nest (edges 25/50/75
        // vs 34/67) and the final norm-sub perturbs things slightly, so the
        // comparison uses in-cell uniformity and a loose tolerance.
        let h1: f64 = grids[0].freqs()[..2].iter().sum();
        let m = grids[1].marginal_along(0);
        // Grid 2 has 3 x-cells (edges 0,34,67,100): mass below 50 is cell 0
        // plus 16/33 of cell 1 under uniformity.
        let h2 = m[0] + m[1] * 16.0 / 33.0;
        assert!((h1 - h2).abs() < 0.12, "{h1} vs {h2}");
    }
}
