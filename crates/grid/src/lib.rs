#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Grid substrate for FELIP.
//!
//! This crate implements everything between the frequency oracles and the
//! FELIP engine:
//!
//! * [`bins`] — variable-width binning of an attribute domain into `l` cells.
//!   FELIP explicitly allows cells of different sizes so a grid can use the
//!   *optimal* granularity even when it does not divide the domain (§3.2,
//!   §5.8 — a limitation of TDG/HDG this design removes);
//! * [`spec`] — 1-D and 2-D grid specifications over categorical and
//!   numerical axes, with record → cell projection;
//! * [`optimize`] — the per-grid granularity optimisation of §5.2, minimising
//!   *non-uniformity² + noise·sampling error* for each of the five grid
//!   kinds under either GRR or OLH;
//! * [`estimate`] — an estimated grid: a spec plus per-cell frequencies;
//! * [`postprocess`] — Algorithm 1 (non-negativity via norm-sub) and
//!   Algorithm 2 (cross-grid consistency by inverse-variance weighted
//!   averaging), alternated as §5.4 prescribes;
//! * [`response`] — Algorithm 3: per-pair response matrices via iterative
//!   weighted update;
//! * [`lambda`] — Algorithm 4: λ-D query estimation from the associated 2-D
//!   answers.

pub mod bins;
pub mod estimate;
pub mod lambda;
pub mod optimize;
pub mod postprocess;
pub mod response;
pub mod spec;

pub use bins::Binning;
pub use estimate::EstimatedGrid;
pub use optimize::{optimize_grid, ErrorModel, GridSize, SizingInput};
pub use spec::{Axis, GridId, GridSpec};
