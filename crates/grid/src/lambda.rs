//! λ-D query estimation from associated 2-D answers (Algorithm 4, §5.6).
//!
//! A λ-D query `q = ∧_t (a_t, o_t, v_t)` is split into its `C(λ, 2)`
//! associated 2-D queries. The aggregator then maintains a vector `z` of
//! `2^λ` entries, one per combination of "predicate t satisfied / violated"
//! (bit `t` of the index set ⇔ predicate `t` satisfied), and iteratively
//! fits `z` to the 2-D answers: the answer of `q^(i,j)` constrains the total
//! mass of the `2^(λ−2)` entries whose bits `i` and `j` are both set.
//!
//! Implementation note: the paper's Algorithm 4 rescales only the
//! constrained entries. We apply the standard two-sided iterative
//! proportional fitting update (rescale the complement so `z` stays a
//! probability vector); the fixed points are identical when the 2-D answers
//! are mutually consistent, and the two-sided update is better conditioned
//! when they are not (documented in DESIGN.md).

/// One associated 2-D answer: local predicate slots `(s, t)` (indices into
/// the query's predicate list, `s < t < λ`) and the estimated 2-D frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairAnswer {
    /// First predicate slot.
    pub s: usize,
    /// Second predicate slot.
    pub t: usize,
    /// Estimated answer of the 2-D query `(pred_s ∧ pred_t)`, clamped to
    /// `[0, 1]` by the caller or here.
    pub answer: f64,
}

/// A general fitting constraint: the total mass of the entries whose index
/// contains every bit of `mask` must equal `answer`.
///
/// [`PairAnswer`]s are the paper's constraints (two-bit masks). Single-bit
/// masks encode 1-D marginal answers — an *extension* over Algorithm 4 that
/// this library supports because the aggregator can answer 1-D queries from
/// its grids anyway, and pinning the marginals substantially tightens the
/// under-determined pairs-only fit (see the `ablation_marginals` bench).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Bit `i` set ⇔ predicate `i` must be satisfied.
    pub mask: usize,
    /// Target mass of the constrained entry set.
    pub answer: f64,
}

impl From<PairAnswer> for Constraint {
    fn from(p: PairAnswer) -> Self {
        Constraint {
            mask: (1usize << p.s) | (1usize << p.t),
            answer: p.answer,
        }
    }
}

/// Hard cap on fitting sweeps.
pub const MAX_SWEEPS: usize = 500;

/// Outcome of an IPF fit: the fitted vector plus convergence diagnostics.
///
/// [`fit_constraints`] keeps its plain-`Vec` signature for pipeline callers;
/// tests and diagnostics use [`fit_constraints_full`] to assert the fit
/// actually converged below the requested threshold instead of hitting the
/// [`MAX_SWEEPS`] cap.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The fitted `2^λ` probability vector.
    pub z: Vec<f64>,
    /// Sweeps actually performed (≤ [`MAX_SWEEPS`]).
    pub sweeps: usize,
    /// Summed absolute per-entry change of the final sweep.
    pub residual: f64,
}

impl FitResult {
    /// True when the final sweep's residual fell below `threshold` (i.e. the
    /// loop exited by convergence, not by the sweep cap).
    pub fn converged(&self, threshold: f64) -> bool {
        self.residual < threshold
    }
}

/// Algorithm 4: estimates the λ-D answer from its `C(λ, 2)` associated 2-D
/// answers. `threshold` is the convergence bound on the summed absolute
/// per-sweep change of `z` (use `1/n`).
///
/// Returns the full estimated vector `z` (length `2^λ`); the λ-D answer is
/// `z[2^λ − 1]` (all predicates satisfied), exposed via [`lambda_answer`].
///
/// # Panics
/// Panics when `lambda < 2`, when a pair references an out-of-range slot,
/// or when `pairs` is empty.
pub fn fit_lambda(lambda: usize, pairs: &[PairAnswer], threshold: f64) -> Vec<f64> {
    assert!(lambda >= 2, "lambda must be at least 2, got {lambda}");
    assert!(!pairs.is_empty(), "need at least one 2-D answer");
    for p in pairs {
        assert!(
            p.s < p.t && p.t < lambda,
            "bad pair slots ({}, {})",
            p.s,
            p.t
        );
    }
    let constraints: Vec<Constraint> = pairs.iter().map(|&p| p.into()).collect();
    fit_constraints(lambda, &constraints, threshold)
}

/// Generalised Algorithm 4: fits the `2^λ` vector against arbitrary
/// upward-closed mask constraints (pairs, marginals, or higher-order
/// answers).
///
/// # Panics
/// Panics when `lambda < 2`, when a constraint's mask is zero or references
/// a slot `≥ λ`, or when `constraints` is empty.
pub fn fit_constraints(lambda: usize, constraints: &[Constraint], threshold: f64) -> Vec<f64> {
    fit_constraints_full(lambda, constraints, threshold).z
}

/// [`fit_constraints`] with convergence diagnostics: returns the fitted
/// vector together with the sweep count and final residual so callers can
/// assert convergence (see [`FitResult::converged`]).
///
/// # Panics
/// Same contract as [`fit_constraints`].
pub fn fit_constraints_full(
    lambda: usize,
    constraints: &[Constraint],
    threshold: f64,
) -> FitResult {
    assert!(lambda >= 2, "lambda must be at least 2, got {lambda}");
    assert!(
        lambda <= 20,
        "lambda of {lambda} would need 2^{lambda} states"
    );
    assert!(!constraints.is_empty(), "need at least one constraint");
    let size = 1usize << lambda;
    for c in constraints {
        assert!(
            c.mask != 0 && c.mask < size,
            "constraint mask {:#x} out of range",
            c.mask
        );
    }
    let mut z = vec![1.0 / size as f64; size];
    let mut sweeps: usize = 0;
    let mut residual = 0.0;
    for _ in 0..MAX_SWEEPS {
        sweeps += 1;
        let mut change = 0.0;
        for p in constraints {
            // Soft-clamp away from exact 0/1: a hard-zero target makes the
            // constrained set absorbing, and several conflicting hard
            // constraints (possible with noisy inputs) would drain `z`
            // entirely. The 1e-9 slack is far below the 1/n convergence
            // threshold of any realistic population.
            let target = p.answer.clamp(1e-9, 1.0 - 1e-9);
            let mask = p.mask;
            let mut y_in = 0.0;
            let mut y_out = 0.0;
            for (idx, v) in z.iter().enumerate() {
                if idx & mask == mask {
                    y_in += v;
                } else {
                    // Actual complement mass — never assume Σz == 1:
                    // tiny floating-point drift would otherwise compound
                    // multiplicatively across sweeps.
                    y_out += v;
                }
            }
            if y_in <= 0.0 || y_out <= 0.0 {
                // The constrained set (or its complement) has no mass left —
                // the constraint is unreachable from here; skip it so `z`
                // stays a distribution.
                continue;
            }
            // Two-sided IPF: scale the constrained set to `target` and the
            // complement to `1 − target`; `z` sums to exactly 1 afterwards.
            let scale_in = target / y_in;
            let scale_out = (1.0 - target) / y_out;
            for (idx, v) in z.iter_mut().enumerate() {
                let scale = if idx & mask == mask {
                    scale_in
                } else {
                    scale_out
                };
                // Floor at a tiny positive value: repeated near-zero targets
                // on conflicting constraints would otherwise underflow
                // entries to exact 0, permanently removing them from the fit
                // (and, once a whole constrained set hits 0, de-normalising
                // `z`). The floor's contribution to any sum is ≪ 1e-6.
                let new = (*v * scale).max(1e-300);
                change += (new - *v).abs();
                *v = new;
            }
        }
        residual = change;
        if change < threshold {
            break;
        }
    }
    felip_obs::hist!("grid.ipf.sweeps", sweeps as u64, "sweeps");
    felip_obs::gauge_f64!("grid.ipf.residual", residual);
    FitResult {
        z,
        sweeps,
        residual,
    }
}

/// Convenience wrapper: runs [`fit_lambda`] and returns the all-predicates
/// answer `z[2^λ − 1]`.
pub fn lambda_answer(lambda: usize, pairs: &[PairAnswer], threshold: f64) -> f64 {
    let z = fit_lambda(lambda, pairs, threshold);
    z[(1usize << lambda) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With λ = 2 the single constraint pins the answer exactly.
    #[test]
    fn two_dim_passthrough() {
        let a = lambda_answer(
            2,
            &[PairAnswer {
                s: 0,
                t: 1,
                answer: 0.37,
            }],
            1e-12,
        );
        assert!((a - 0.37).abs() < 1e-9);
    }

    /// Independent predicates: the fit lands in the right region — the
    /// constraints only pin pairwise "both satisfied" masses (not the
    /// marginals), so exact product recovery is not guaranteed, but the
    /// joint must be positive and bounded by every pairwise answer.
    #[test]
    fn independent_predicates_give_plausible_joint() {
        // Marginals p0 = 0.5, p1 = 0.4, p2 = 0.3; pairwise = products.
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: 0.5 * 0.4,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: 0.5 * 0.3,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.4 * 0.3,
            },
        ];
        let a = lambda_answer(3, &pairs, 1e-12);
        assert!(a > 0.01, "{a}");
        assert!(a <= 0.12 + 1e-9, "{a} exceeds the smallest pair answer");
    }

    /// The all-predicates entry is a subset of every constrained set, so at
    /// the fixed point the joint can never exceed the smallest 2-D answer.
    #[test]
    fn joint_bounded_by_min_pair() {
        let p = 0.3;
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: p,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: p,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.18,
            },
        ];
        let a = lambda_answer(3, &pairs, 1e-12);
        assert!(a > 0.0, "{a}");
        assert!(a <= 0.18 + 1e-6, "joint {a} exceeds min pairwise 0.18");
    }

    /// A zero pairwise answer forces the joint to zero.
    #[test]
    fn zero_pair_kills_joint() {
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: 0.0,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: 0.25,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.25,
            },
        ];
        let a = lambda_answer(3, &pairs, 1e-12);
        assert!(a < 1e-9, "{a}");
    }

    /// The fitted vector stays a probability distribution.
    #[test]
    fn z_is_a_distribution() {
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: 0.2,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: 0.15,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.1,
            },
            PairAnswer {
                s: 0,
                t: 3,
                answer: 0.4,
            },
            PairAnswer {
                s: 1,
                t: 3,
                answer: 0.12,
            },
            PairAnswer {
                s: 2,
                t: 3,
                answer: 0.09,
            },
        ];
        let z = fit_lambda(4, &pairs, 1e-12);
        assert_eq!(z.len(), 16);
        assert!(z.iter().all(|&v| v >= -1e-12));
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// Constraints are (approximately) satisfied at the fixed point when
    /// they are mutually consistent.
    #[test]
    fn constraints_satisfied_at_fixed_point() {
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: 0.5 * 0.4,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: 0.5 * 0.3,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.4 * 0.3,
            },
        ];
        let z = fit_lambda(3, &pairs, 1e-14);
        for p in &pairs {
            let mask = (1usize << p.s) | (1usize << p.t);
            let got: f64 = z
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask == mask)
                .map(|(_, v)| v)
                .sum();
            assert!(
                (got - p.answer).abs() < 1e-6,
                "pair ({},{}) {} vs {}",
                p.s,
                p.t,
                got,
                p.answer
            );
        }
    }

    /// Out-of-range 2-D answers (negative / > 1 from noisy estimation) are
    /// clamped rather than corrupting the fit.
    #[test]
    fn noisy_answers_are_clamped() {
        let pairs = [
            PairAnswer {
                s: 0,
                t: 1,
                answer: -0.05,
            },
            PairAnswer {
                s: 0,
                t: 2,
                answer: 1.2,
            },
            PairAnswer {
                s: 1,
                t: 2,
                answer: 0.5,
            },
        ];
        let z = fit_lambda(3, &pairs, 1e-12);
        assert!(z.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    /// Adding 1-D marginal constraints (the extension) pins the joint of
    /// independent predicates to (nearly) the product of marginals, which
    /// the pairs-only fit cannot do.
    #[test]
    fn marginal_constraints_sharpen_independent_fit() {
        let (p0, p1, p2) = (0.5, 0.4, 0.3);
        let mut cs: Vec<Constraint> = vec![
            PairAnswer {
                s: 0,
                t: 1,
                answer: p0 * p1,
            }
            .into(),
            PairAnswer {
                s: 0,
                t: 2,
                answer: p0 * p2,
            }
            .into(),
            PairAnswer {
                s: 1,
                t: 2,
                answer: p1 * p2,
            }
            .into(),
        ];
        cs.push(Constraint {
            mask: 0b001,
            answer: p0,
        });
        cs.push(Constraint {
            mask: 0b010,
            answer: p1,
        });
        cs.push(Constraint {
            mask: 0b100,
            answer: p2,
        });
        let z = fit_constraints(3, &cs, 1e-12);
        let joint = z[7];
        assert!(
            (joint - p0 * p1 * p2).abs() < 5e-3,
            "joint {joint} vs product {}",
            p0 * p1 * p2
        );
    }

    #[test]
    fn pair_answer_converts_to_constraint() {
        let c: Constraint = PairAnswer {
            s: 1,
            t: 3,
            answer: 0.2,
        }
        .into();
        assert_eq!(c.mask, 0b1010);
        assert_eq!(c.answer, 0.2);
    }

    #[test]
    #[should_panic(expected = "mask")]
    fn rejects_zero_mask() {
        fit_constraints(
            3,
            &[Constraint {
                mask: 0,
                answer: 0.5,
            }],
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "mask")]
    fn rejects_out_of_range_mask() {
        fit_constraints(
            2,
            &[Constraint {
                mask: 0b100,
                answer: 0.5,
            }],
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be at least 2")]
    fn rejects_lambda_one() {
        fit_lambda(
            1,
            &[PairAnswer {
                s: 0,
                t: 1,
                answer: 0.5,
            }],
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "bad pair slots")]
    fn rejects_bad_slots() {
        fit_lambda(
            3,
            &[PairAnswer {
                s: 2,
                t: 1,
                answer: 0.5,
            }],
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "at least one 2-D answer")]
    fn rejects_empty_pairs() {
        fit_lambda(3, &[], 1e-9);
    }
}
