//! Property-based tests for the grid substrate's core data structures.

use proptest::prelude::*;

use felip_grid::bins::Binning;
use felip_grid::lambda::{
    fit_constraints, fit_constraints_full, fit_lambda, Constraint, PairAnswer, MAX_SWEEPS,
};
use felip_grid::postprocess::norm_sub;
use felip_grid::response::ResponseMatrix;
use felip_grid::{EstimatedGrid, GridSpec};

use felip_common::{Attribute, Schema};
use felip_fo::FoKind;

proptest! {
    /// A binning always partitions the domain exactly: cells tile `0..d`
    /// with widths differing by at most one, and `cell_of` inverts
    /// `cell_range` for every value.
    #[test]
    fn binning_partitions_domain(d in 1u32..500, raw_l in 1u32..500) {
        let l = raw_l.min(d);
        let b = Binning::equal(d, l).unwrap();
        prop_assert_eq!(b.cells(), l);
        prop_assert_eq!(b.domain(), d);
        let widths: Vec<u32> = (0..l).map(|i| b.width(i)).collect();
        prop_assert_eq!(widths.iter().sum::<u32>(), d);
        let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
        prop_assert!(max - min <= 1);
        for v in (0..d).step_by((d as usize / 64).max(1)) {
            let c = b.cell_of(v);
            let (lo, hi) = b.cell_range(c);
            prop_assert!(lo <= v && v < hi);
        }
    }

    /// Overlap fractions of any range are in (0, 1], cover exactly the
    /// cells intersecting the range, and weight-sum to the range length.
    #[test]
    fn binning_overlaps_measure_range(d in 2u32..300, raw_l in 1u32..300, a in 0u32..300, b in 0u32..300) {
        let l = raw_l.min(d);
        let (lo, hi) = (a.min(b) % d, (a.max(b)) % d);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let bin = Binning::equal(d, l).unwrap();
        let overlaps = bin.overlaps(lo, hi);
        prop_assert!(!overlaps.is_empty());
        let mut measured = 0.0;
        for &(c, frac) in &overlaps {
            prop_assert!(frac > 0.0 && frac <= 1.0 + 1e-12);
            measured += frac * bin.width(c) as f64;
        }
        prop_assert!((measured - (hi - lo + 1) as f64).abs() < 1e-9);
    }

    /// norm-sub always yields a non-negative vector summing to the target.
    #[test]
    fn norm_sub_yields_distribution(
        mut freqs in proptest::collection::vec(-1.0f64..2.0, 1..200),
    ) {
        norm_sub(&mut freqs, 1.0);
        prop_assert!(freqs.iter().all(|&f| f >= 0.0), "{freqs:?}");
        prop_assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// norm-sub is idempotent: applying it to a valid distribution is a
    /// no-op (up to float noise).
    #[test]
    fn norm_sub_idempotent(mut freqs in proptest::collection::vec(-1.0f64..2.0, 1..100)) {
        norm_sub(&mut freqs, 1.0);
        let once = freqs.clone();
        norm_sub(&mut freqs, 1.0);
        for (a, b) in once.iter().zip(&freqs) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// A response matrix built from a proper-distribution grid is itself a
    /// proper distribution, and its unconstrained answer is its total.
    #[test]
    fn response_matrix_conserves_mass(
        d in 4u32..64,
        raw_l in 2u32..16,
        weights in proptest::collection::vec(0.0f64..1.0, 4..=256),
    ) {
        let l = raw_l.min(d);
        let schema = Schema::new(vec![
            Attribute::numerical("x", d),
            Attribute::numerical("y", d),
        ]).unwrap();
        let spec = GridSpec::two_dim(&schema, 0, 1, l, l, FoKind::Olh).unwrap();
        let cells = spec.num_cells() as usize;
        prop_assume!(weights.len() >= cells);
        let mut freqs: Vec<f64> = weights[..cells].to_vec();
        let total: f64 = freqs.iter().sum();
        prop_assume!(total > 1e-9);
        freqs.iter_mut().for_each(|f| *f /= total);
        let grid = EstimatedGrid::new(spec, freqs);
        let m = ResponseMatrix::build(0, 1, d, d, &[&grid], 1e-7).unwrap();
        prop_assert!((m.total() - 1.0).abs() < 1e-4, "total {}", m.total());
        prop_assert!((m.answer(None, None) - m.total()).abs() < 1e-9);
        // Row/col marginals are consistent with the total.
        prop_assert!((m.row_marginal().iter().sum::<f64>() - m.total()).abs() < 1e-9);
    }

    /// Algorithm-4 output is always a probability vector, even for
    /// mutually *inconsistent* pairwise answers (raw noisy estimates).
    #[test]
    fn lambda_fit_is_distribution(
        lambda in 2usize..6,
        answers in proptest::collection::vec(-0.2f64..1.2, 15),
    ) {
        let mut pairs = Vec::new();
        let mut i = 0;
        for s in 0..lambda {
            for t in (s + 1)..lambda {
                pairs.push(PairAnswer { s, t, answer: answers[i % answers.len()] });
                i += 1;
            }
        }
        let z = fit_lambda(lambda, &pairs, 1e-9);
        prop_assert_eq!(z.len(), 1 << lambda);
        prop_assert!(z.iter().all(|&v| v >= -1e-12));
        prop_assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// For *consistent* pairwise answers — derived from an actual joint
    /// distribution — the fit satisfies every constraint, so the all-true
    /// entry is bounded by every pairwise answer.
    #[test]
    fn lambda_fit_satisfies_consistent_constraints(
        lambda in 2usize..5,
        weights in proptest::collection::vec(0.01f64..1.0, 32),
    ) {
        let size = 1usize << lambda;
        let mut joint: Vec<f64> = weights[..size].to_vec();
        let total: f64 = joint.iter().sum();
        joint.iter_mut().for_each(|w| *w /= total);
        let mut pairs = Vec::new();
        for s in 0..lambda {
            for t in (s + 1)..lambda {
                let mask = (1usize << s) | (1usize << t);
                let answer: f64 = joint
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i & mask == mask)
                    .map(|(_, v)| v)
                    .sum();
                pairs.push(PairAnswer { s, t, answer });
            }
        }
        let z = fit_lambda(lambda, &pairs, 1e-12);
        for p in &pairs {
            let mask = (1usize << p.s) | (1usize << p.t);
            let got: f64 = z
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask == mask)
                .map(|(_, v)| v)
                .sum();
            prop_assert!((got - p.answer).abs() < 1e-4,
                "pair ({}, {}): fitted {got} vs constraint {}", p.s, p.t, p.answer);
        }
        let all = z[size - 1];
        let min_pair = pairs.iter().map(|p| p.answer).fold(f64::INFINITY, f64::min);
        prop_assert!(all <= min_pair + 1e-4, "joint {all} exceeds min pair {min_pair}");
    }

    /// Equal-mass binning always yields a valid partition with exactly the
    /// requested number of cells, and balances mass at least as well as a
    /// trivial single-bin split.
    #[test]
    fn equal_mass_is_valid_partition(
        weights in proptest::collection::vec(0.0f64..1.0, 2..120),
        raw_cells in 1u32..40,
    ) {
        let d = weights.len() as u32;
        let cells = raw_cells.min(d);
        let b = Binning::equal_mass(&weights, cells).unwrap();
        prop_assert_eq!(b.cells(), cells);
        prop_assert_eq!(b.domain(), d);
        // Edges strictly increasing and spanning the domain.
        for w in b.edges().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Every value maps into a cell containing it.
        for v in 0..d {
            let c = b.cell_of(v);
            let (lo, hi) = b.cell_range(c);
            prop_assert!(lo <= v && v < hi);
        }
        // When mass exists, the heaviest bin never exceeds the mass of the
        // heaviest single value plus one ideal share (greedy guarantee).
        let total: f64 = weights.iter().sum();
        if total > 1e-9 {
            let max_w = weights.iter().cloned().fold(0.0, f64::max);
            let heaviest_bin = (0..cells)
                .map(|c| {
                    let (lo, hi) = b.cell_range(c);
                    weights[lo as usize..hi as usize].iter().sum::<f64>()
                })
                .fold(0.0, f64::max);
            prop_assert!(
                heaviest_bin <= total / cells as f64 + max_w + 1e-9,
                "heaviest bin {heaviest_bin} vs ideal {} + max value {max_w}",
                total / cells as f64
            );
        }
    }

    /// Record projection always lands inside the grid, for any record.
    #[test]
    fn projection_in_grid(
        dx in 2u32..128,
        dy in 2u32..16,
        lx in 2u32..16,
        vx in 0u32..128,
        vy in 0u32..16,
    ) {
        let lx = lx.min(dx);
        let schema = Schema::new(vec![
            Attribute::numerical("x", dx),
            Attribute::categorical("c", dy),
        ]).unwrap();
        let spec = GridSpec::two_dim(&schema, 0, 1, lx, dy, FoKind::Grr).unwrap();
        let record = [vx % dx, vy % dy];
        let cell = spec.cell_of_record(&record);
        prop_assert!(cell < spec.num_cells());
        let (cx, cy) = spec.cell_coords(cell);
        prop_assert_eq!(spec.cell_index(cx, cy), cell);
    }
}

/// Builds the C(λ,2) pairwise answers of independent predicates with
/// marginals `p` — a mutually consistent constraint set, so the IPF fixed
/// point is unique and order-independent.
fn product_pairs(p: &[f64]) -> Vec<PairAnswer> {
    let mut pairs = Vec::new();
    for s in 0..p.len() {
        for t in (s + 1)..p.len() {
            pairs.push(PairAnswer {
                s,
                t,
                answer: p[s] * p[t],
            });
        }
    }
    pairs
}

proptest! {
    /// IPF output is a probability vector: non-negative entries summing to
    /// the normalised total (the two-sided update keeps Σz = 1 exactly).
    #[test]
    fn ipf_output_is_distribution(
        marginals in proptest::collection::vec(0.05f64..0.95, 2..=4),
    ) {
        let pairs = product_pairs(&marginals);
        let z = fit_lambda(marginals.len().max(2), &pairs, 1e-9);
        prop_assert_eq!(z.len(), 1usize << marginals.len().max(2));
        for &v in &z {
            prop_assert!(v >= 0.0, "negative entry {v}");
        }
        let total: f64 = z.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "Σz = {total}");
    }

    /// Consistent constraints have a unique IPF fixed point, so the fit is
    /// invariant (to well below estimation noise) under any permutation of
    /// the pair order.
    #[test]
    fn ipf_is_pair_order_invariant(
        marginals in proptest::collection::vec(0.05f64..0.95, 3..=4),
        seed in 0u64..1_000,
    ) {
        let lambda = marginals.len();
        let mut pairs = product_pairs(&marginals);
        let forward = fit_lambda(lambda, &pairs, 1e-12);
        // A deterministic shuffle driven by the seed.
        let n = pairs.len();
        for i in (1..n).rev() {
            let j = ((seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(i as u32)) % (i as u64 + 1)) as usize;
            pairs.swap(i, j);
        }
        let shuffled = fit_lambda(lambda, &pairs, 1e-12);
        for (a, b) in forward.iter().zip(&shuffled) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// The fit converges below the documented threshold well before the
    /// MAX_SWEEPS cap whenever the constraints are mutually consistent.
    #[test]
    fn ipf_converges_on_consistent_constraints(
        marginals in proptest::collection::vec(0.05f64..0.95, 2..=4),
    ) {
        let lambda = marginals.len().max(2);
        let threshold = 1e-9;
        let constraints: Vec<Constraint> =
            product_pairs(&marginals).into_iter().map(Into::into).collect();
        let fit = fit_constraints_full(lambda, &constraints, threshold);
        prop_assert!(fit.converged(threshold), "residual {} after {} sweeps", fit.residual, fit.sweeps);
        prop_assert!(fit.sweeps < MAX_SWEEPS, "hit the sweep cap");
        prop_assert_eq!(fit.z, fit_constraints(lambda, &constraints, threshold));
    }

    /// Adding consistent 1-D marginal constraints keeps the constrained
    /// masses satisfied at the fixed point (pairs *and* marginals).
    #[test]
    fn ipf_satisfies_constraints_at_fixed_point(
        marginals in proptest::collection::vec(0.10f64..0.90, 2..=4),
    ) {
        let lambda = marginals.len().max(2);
        let mut constraints: Vec<Constraint> =
            product_pairs(&marginals).into_iter().map(Into::into).collect();
        for (i, &p) in marginals.iter().enumerate() {
            constraints.push(Constraint { mask: 1 << i, answer: p });
        }
        let fit = fit_constraints_full(lambda, &constraints, 1e-12);
        for c in &constraints {
            let got: f64 = fit
                .z
                .iter()
                .enumerate()
                .filter(|(i, _)| i & c.mask == c.mask)
                .map(|(_, v)| v)
                .sum();
            prop_assert!(
                (got - c.answer).abs() < 1e-4,
                "mask {:#x}: {} vs {}",
                c.mask,
                got,
                c.answer
            );
        }
    }
}
