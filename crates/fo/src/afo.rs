//! Adaptive Frequency Oracle selection (§5.3).
//!
//! After the grid sizes are fixed, FELIP picks, *per grid*, the protocol
//! with the smaller analytical variance (Eq. 13):
//!
//! ```text
//! Var[Φ_AFO] = min( (e^ε + L − 2), 4e^ε ) / (e^ε − 1)² · m/n
//! ```
//!
//! GRR wins exactly when the grid's cell count `L < 3e^ε + 2`; OLH wins
//! otherwise. Ties go to GRR (cheaper on both ends).

use crate::grr::Grr;
use crate::olh::Olh;
use crate::traits::FrequencyOracle;
use crate::variance::{grr_variance_factor, olh_variance_factor};

/// Which concrete protocol a grid uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FoKind {
    /// Generalized Randomized Response.
    Grr,
    /// Optimized Local Hashing.
    Olh,
}

impl std::fmt::Display for FoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoKind::Grr => write!(f, "GRR"),
            FoKind::Olh => write!(f, "OLH"),
        }
    }
}

/// The AFO rule: the variance-minimising protocol for a grid with `cells`
/// cells under budget `epsilon`.
pub fn choose_oracle(epsilon: f64, cells: u32) -> FoKind {
    let kind = if grr_variance_factor(epsilon, cells) <= olh_variance_factor(epsilon) {
        FoKind::Grr
    } else {
        FoKind::Olh
    };
    match kind {
        FoKind::Grr => felip_obs::counter!("fo.afo.chose_grr", 1, "grids"),
        FoKind::Olh => felip_obs::counter!("fo.afo.chose_olh", 1, "grids"),
    }
    kind
}

/// Instantiates the chosen protocol as a boxed [`FrequencyOracle`].
pub fn make_oracle(kind: FoKind, epsilon: f64, domain: u32) -> Box<dyn FrequencyOracle> {
    match kind {
        FoKind::Grr => Box::new(Grr::new(epsilon, domain)),
        FoKind::Olh => Box::new(Olh::new(epsilon, domain)),
    }
}

/// The variance factor AFO achieves (Eq. 13, without the `m/n` scaling).
pub fn afo_variance_factor(epsilon: f64, cells: u32) -> f64 {
    grr_variance_factor(epsilon, cells).min(olh_variance_factor(epsilon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grids_use_grr() {
        // At ε = 1, crossover at L = 3e + 2 ≈ 10.15.
        assert_eq!(choose_oracle(1.0, 4), FoKind::Grr);
        assert_eq!(choose_oracle(1.0, 10), FoKind::Grr);
        assert_eq!(choose_oracle(1.0, 11), FoKind::Olh);
        assert_eq!(choose_oracle(1.0, 1000), FoKind::Olh);
    }

    #[test]
    fn larger_epsilon_extends_grr_region() {
        // At ε = 3, crossover ≈ 3·20.1 + 2 ≈ 62.
        assert_eq!(choose_oracle(3.0, 50), FoKind::Grr);
        assert_eq!(choose_oracle(3.0, 80), FoKind::Olh);
    }

    #[test]
    fn afo_variance_is_the_minimum() {
        for &eps in &[0.5, 1.0, 2.0] {
            for &l in &[2u32, 8, 32, 512] {
                let v = afo_variance_factor(eps, l);
                assert!(v <= grr_variance_factor(eps, l) + 1e-15);
                assert!(v <= olh_variance_factor(eps) + 1e-15);
            }
        }
    }

    #[test]
    fn make_oracle_dispatches() {
        let g = make_oracle(FoKind::Grr, 1.0, 8);
        let o = make_oracle(FoKind::Olh, 1.0, 8);
        assert_eq!(g.domain(), 8);
        assert_eq!(o.domain(), 8);
        // GRR variance for d=8 at ε=1 is lower than OLH's.
        assert!(g.variance(1000) < o.variance(1000));
    }

    #[test]
    fn display_names() {
        assert_eq!(FoKind::Grr.to_string(), "GRR");
        assert_eq!(FoKind::Olh.to_string(), "OLH");
    }
}
