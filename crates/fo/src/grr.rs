//! Generalized Randomized Response (§2.2.1).

use rand::{Rng, RngCore};

use felip_common::{Error, Result};

use crate::report::Report;
use crate::traits::FrequencyOracle;
use crate::variance::grr_variance;

/// Generalized Randomized Response over a domain of size `d`.
///
/// The client reports its true value with probability
/// `p = e^ε / (e^ε + d − 1)` and any *other* value uniformly otherwise, so
/// the likelihood ratio of any output between any two inputs is exactly
/// `p/q = e^ε` and the mechanism satisfies ε-LDP.
///
/// The estimator `Φ(v) = (C(v)/n − q) / (p − q)` is unbiased with variance
/// `(e^ε + d − 2) / (n (e^ε − 1)²)` — linear in `d`, which is why GRR wins
/// for small domains and loses to OLH for large ones (the crossover the
/// Adaptive FO of §5.3 exploits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grr {
    epsilon: f64,
    domain: u32,
    /// Probability of reporting the true value.
    p: f64,
    /// Probability of reporting one specific other value.
    q: f64,
}

impl Grr {
    /// Creates a GRR oracle.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        let e = epsilon.exp();
        let p = e / (e + domain as f64 - 1.0);
        let q = 1.0 / (e + domain as f64 - 1.0);
        Grr {
            epsilon,
            domain,
            p,
            q,
        }
    }

    /// Probability of transmitting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of transmitting one specific false value.
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl FrequencyOracle for Grr {
    fn domain(&self) -> u32 {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report {
        assert!(
            value < self.domain,
            "value {value} out of domain {}",
            self.domain
        );
        if self.domain == 1 {
            return Report::Grr(0);
        }
        let keep = rng.gen_bool(self.p);
        if keep {
            Report::Grr(value)
        } else {
            // Uniform over the other d − 1 values: draw from 0..d−1 and skip
            // the true value by shifting.
            let mut v = rng.gen_range(0..self.domain - 1);
            if v >= value {
                v += 1;
            }
            Report::Grr(v)
        }
    }

    fn check_report(&self, report: &Report) -> Result<()> {
        match report {
            Report::Grr(v) if *v < self.domain => Ok(()),
            Report::Grr(v) => Err(Error::ReportMismatch(format!(
                "GRR report {v} out of domain {}",
                self.domain
            ))),
            other => Err(Error::ReportMismatch(format!(
                "GRR aggregator received non-GRR report {:?}",
                other.kind()
            ))),
        }
    }

    fn aggregate(&self, reports: &[Report]) -> Result<Vec<f64>> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return Ok(vec![0.0; d]);
        }
        let mut counts = vec![0u64; d];
        self.accumulate_batch(reports, &mut counts)?;
        Ok(self.estimate_from_counts(&counts, reports.len()))
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) -> Result<()> {
        self.check_report(report)?;
        match report {
            // ARITH: hot accumulate kernel; a u64 tally cannot reach 2^64
            // reports in practice, and merge paths re-check with checked_add.
            Report::Grr(v) => counts[*v as usize] = counts[*v as usize].wrapping_add(1),
            _ => unreachable!("check_report admits only GRR reports"),
        }
        Ok(())
    }

    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.domain as usize,
            "count vector width mismatch"
        );
        if n == 0 {
            return vec![0.0; counts.len()];
        }
        let n = n as f64;
        let denom = self.p - self.q;
        counts
            .iter()
            .map(|&c| (c as f64 / n - self.q) / denom)
            .collect()
    }

    fn variance(&self, n: usize) -> f64 {
        grr_variance(self.epsilon, self.domain, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;

    #[test]
    fn probabilities_satisfy_ldp() {
        for &(eps, d) in &[(0.5, 4u32), (1.0, 16), (2.0, 100), (4.0, 2)] {
            let g = Grr::new(eps, d);
            // p/q = e^ε exactly, and p + (d−1)q = 1.
            assert!((g.p() / g.q() - eps.exp()).abs() < 1e-9);
            assert!((g.p() + (d as f64 - 1.0) * g.q() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_likelihood_ratio_bounded() {
        // For every output x and inputs v, v', Pr[Ψ(v)=x] / Pr[Ψ(v')=x] ≤ e^ε.
        let eps = 1.0;
        let d = 8u32;
        let g = Grr::new(eps, d);
        let trials = 200_000;
        let mut rng = seeded_rng(1);
        let count_output = |value: u32, rng: &mut rand::rngs::StdRng| {
            let mut c = vec![0u32; d as usize];
            for _ in 0..trials {
                if let Report::Grr(x) = g.perturb(value, rng) {
                    c[x as usize] += 1;
                }
            }
            c
        };
        let c0 = count_output(0, &mut rng);
        let c1 = count_output(1, &mut rng);
        for x in 0..d as usize {
            let p0 = c0[x] as f64 / trials as f64;
            let p1 = c1[x] as f64 / trials as f64;
            // 10% slack for sampling noise.
            assert!(p0 / p1 <= eps.exp() * 1.1, "ratio at {x}: {}", p0 / p1);
            assert!(p1 / p0 <= eps.exp() * 1.1);
        }
    }

    #[test]
    fn estimates_are_unbiased() {
        // True distribution: value v with frequency weights ∝ v+1 over d=5.
        let d = 5u32;
        let g = Grr::new(1.0, d);
        let n = 400_000usize;
        let mut rng = seeded_rng(7);
        let mut reports = Vec::with_capacity(n);
        let mut truth = vec![0.0f64; d as usize];
        for i in 0..n {
            let v = (i % 15) as u32; // weights 1..5 via triangular indexing
            let v = match v {
                0 => 0,
                1..=2 => 1,
                3..=5 => 2,
                6..=9 => 3,
                _ => 4,
            };
            truth[v as usize] += 1.0;
            reports.push(g.perturb(v, &mut rng));
        }
        for t in &mut truth {
            *t /= n as f64;
        }
        let est = g.aggregate(&reports).unwrap();
        let sd = g.variance(n).sqrt();
        for v in 0..d as usize {
            assert!(
                (est[v] - truth[v]).abs() < 6.0 * sd,
                "estimate {} vs truth {} (sd {sd})",
                est[v],
                truth[v]
            );
        }
    }

    #[test]
    fn estimates_sum_to_one() {
        // Σ_v Φ(v) = (1 − d·q)/(p − q) + ... algebraically = 1 for any report set.
        let g = Grr::new(0.8, 12);
        let mut rng = seeded_rng(3);
        let reports: Vec<_> = (0..5000).map(|i| g.perturb(i % 12, &mut rng)).collect();
        let est = g.aggregate(&reports).unwrap();
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        // Estimate frequency of a value that never occurs; its estimator
        // variance should match Eq. (2).
        let d = 10u32;
        let eps = 1.0;
        let g = Grr::new(eps, d);
        let n = 2_000usize;
        let runs = 300;
        let mut rng = seeded_rng(11);
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let reports: Vec<_> = (0..n).map(|_| g.perturb(3, &mut rng)).collect();
            samples.push(g.aggregate(&reports).unwrap()[7]); // value 7 has true freq 0
        }
        let emp = felip_common::metrics::sample_variance(&samples);
        let ana = g.variance(n);
        assert!(
            (emp - ana).abs() / ana < 0.35,
            "empirical {emp} vs analytical {ana}"
        );
    }

    #[test]
    fn degenerate_domain_of_one() {
        let g = Grr::new(1.0, 1);
        let mut rng = seeded_rng(0);
        assert_eq!(g.perturb(0, &mut rng), Report::Grr(0));
        let est = g.aggregate(&[Report::Grr(0), Report::Grr(0)]).unwrap();
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn empty_reports_give_zeros() {
        let g = Grr::new(1.0, 4);
        assert_eq!(g.aggregate(&[]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn perturb_rejects_out_of_domain() {
        let g = Grr::new(1.0, 4);
        let mut rng = seeded_rng(0);
        g.perturb(4, &mut rng);
    }

    #[test]
    fn aggregate_rejects_foreign_reports() {
        let err = Grr::new(1.0, 4)
            .aggregate(&[Report::Olh { seed: 0, value: 0 }])
            .unwrap_err();
        assert!(
            matches!(err, felip_common::Error::ReportMismatch(_)),
            "{err}"
        );
    }

    #[test]
    fn accumulate_rejects_out_of_domain_value() {
        let g = Grr::new(1.0, 4);
        let mut counts = vec![0u64; 4];
        assert!(g.accumulate(&Report::Grr(4), &mut counts).is_err());
        assert_eq!(counts, vec![0u64; 4], "rejected report must not count");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        Grr::new(0.0, 4);
    }
}
