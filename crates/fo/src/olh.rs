//! Optimized Local Hashing (§2.2.2; Wang et al., USENIX Security 2017).

use rand::{Rng, RngCore};
use rayon::prelude::*;

use felip_common::hash::{bucket_bounds, mix64, universal_hash, value_key};
use felip_common::{Error, Result};

use crate::report::Report;
use crate::traits::FrequencyOracle;
use crate::variance::olh_variance;

/// Count-vector block that stays resident in L1 while every report's hash
/// is evaluated against it: 2048 × u64 = 16 KiB (half a typical 32 KiB L1D,
/// leaving room for the report pairs streaming through).
const BLOCK_VALUES: usize = 2048;

/// Reports per inner-loop group. Eight independent `mix64` chains per
/// domain value keep the multiply/xor units busy (ILP) instead of
/// serialising on one hash's latency.
const GROUP_REPORTS: usize = 8;

/// A report unpacked for the batched kernel: the hash seed plus the
/// precomputed [`bucket_bounds`] interval of its perturbed bucket, so the
/// inner loop tests bucket membership with one subtract-and-compare on the
/// raw hash high word instead of re-running the reduction multiply.
type UnpackedReport = (u64, u32, u32);

/// Batched OLH support counting over one L1-sized block of the count
/// vector: `block[i] += |{ j : H_{seed_j}(base + i) = x_j }|`.
///
/// Structure, from the outside in:
/// - the caller tiles the full count vector into [`BLOCK_VALUES`]-sized
///   blocks, so each block is written once per report (group) while it
///   stays cache-hot, instead of streaming the whole `d`-wide vector
///   through cache per report;
/// - each block's `value_key` multiplies are hoisted into a key table
///   computed once and reused by every report;
/// - bucket membership is the precomputed interval test of
///   [`bucket_bounds`] (`(h >> 32) - lo < width`), leaving `mix64`'s two
///   multiplies as the only multiplies per (seed, value) pair;
/// - the inner loop is branch-free (`(in_bucket) as u64` adds), which
///   sidesteps the ~1/g-taken branch the scalar path stalls on;
/// - on x86-64 the elementwise pass is compiled under AVX-512DQ / AVX2
///   `#[target_feature]` wrappers (runtime-dispatched), so LLVM
///   autovectorises `mix64` over 8 / 4 u64 lanes (`vpmullq` does the
///   64-bit multiplies natively with AVX-512DQ). Elsewhere a scalar
///   group-of-[`GROUP_REPORTS`] pass provides the ILP instead.
///
/// All tallies are exact `u64` additions and the interval test is exactly
/// the bucket comparison, so any lane/evaluation order gives bit-identical
/// counts to the scalar [`FrequencyOracle::accumulate`] path.
/// The support-counting kernel the current machine dispatches to:
/// `"avx512dq"`, `"avx2"`, or `"scalar-grouped"`. Purely informational —
/// the decision itself is re-made per block inside
/// [`support_count_block`] (the detection macro caches, so this costs one
/// cached lookup).
pub fn kernel_dispatch_path() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512dq") {
            return "avx512dq";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "scalar-grouped"
}

fn support_count_block(pairs: &[UnpackedReport], base: u32, block: &mut [u64]) {
    let mut keys = [0u64; BLOCK_VALUES];
    let keys = &mut keys[..block.len()];
    for (i, key) in keys.iter_mut().enumerate() {
        // ARITH: block index arithmetic; base + i stays within the u32
        // domain size by construction of the block walk.
        *key = value_key(base.wrapping_add(i as u32));
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512dq") {
            // SAFETY: the avx512dq feature was just detected at runtime.
            unsafe { support_count_avx512(pairs, keys, block) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected at runtime.
            unsafe { support_count_avx2(pairs, keys, block) };
            return;
        }
    }
    support_count_grouped(pairs, keys, block);
}

/// The vector-friendly kernel shape: one elementwise pass over the key
/// table per report, every operation in u64 lanes. Inlined into the
/// `#[target_feature]` wrappers below so LLVM autovectorises it with the
/// wrapper's ISA.
#[inline(always)]
#[allow(dead_code)] // unused on non-x86-64 targets
fn support_count_per_report(pairs: &[UnpackedReport], keys: &[u64], block: &mut [u64]) {
    for &(seed, lo, width) in pairs {
        let (lo, width) = (lo as u64, width as u64);
        for (slot, &key) in block.iter_mut().zip(keys.iter()) {
            let h32 = mix64(seed ^ key) >> 32;
            // ARITH: hot support-count kernel; wrapping_sub is the u64 form
            // of `(h32 as u32).wrapping_sub(lo) < width` (intentional mod-2^32
            // range test), and a u64 tally cannot reach 2^64 reports.
            *slot = slot.wrapping_add(((h32.wrapping_sub(lo) & 0xffff_ffff) < width) as u64);
        }
    }
}

// SAFETY: `unsafe fn` only because of `#[target_feature]` — the body is
// safe code; callers must have runtime-detected avx512f+avx512dq first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn support_count_avx512(pairs: &[UnpackedReport], keys: &[u64], block: &mut [u64]) {
    support_count_per_report(pairs, keys, block);
}

// SAFETY: `unsafe fn` only because of `#[target_feature]` — the body is
// safe code; callers must have runtime-detected avx2 first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn support_count_avx2(pairs: &[UnpackedReport], keys: &[u64], block: &mut [u64]) {
    support_count_per_report(pairs, keys, block);
}

/// Scalar fallback: reports are walked in groups of [`GROUP_REPORTS`] so
/// each domain value runs that many independent `mix64` chains (ILP without
/// SIMD), and the count slot is loaded/stored once per group.
fn support_count_grouped(pairs: &[UnpackedReport], keys: &[u64], block: &mut [u64]) {
    let mut groups = pairs.chunks_exact(GROUP_REPORTS);
    for group in groups.by_ref() {
        // `chunks_exact` only yields slices of exactly GROUP_REPORTS, so the
        // array view always succeeds; the `else` arm is dead code kept so
        // the conversion stays panic-free.
        let Ok(group) = <&[UnpackedReport; GROUP_REPORTS]>::try_from(group) else {
            continue;
        };
        for (slot, &key) in block.iter_mut().zip(keys.iter()) {
            // Fixed-length loop over the group array: fully unrolled into
            // eight independent hash pipelines by the compiler.
            let mut supports = 0u64;
            for &(seed, lo, width) in group {
                let h32 = (mix64(seed ^ key) >> 32) as u32;
                // ARITH: hot support-count kernel; wrapping_sub is the
                // intentional mod-2^32 range test, and the group tally is
                // bounded by GROUP_REPORTS.
                supports = supports.wrapping_add((h32.wrapping_sub(lo) < width) as u64);
            }
            // ARITH: hot kernel; a u64 tally cannot reach 2^64 reports.
            *slot = slot.wrapping_add(supports);
        }
    }
    for &(seed, lo, width) in groups.remainder() {
        for (slot, &key) in block.iter_mut().zip(keys.iter()) {
            let h32 = (mix64(seed ^ key) >> 32) as u32;
            // ARITH: hot support-count kernel; wrapping_sub is the
            // intentional mod-2^32 range test, and a u64 tally cannot
            // reach 2^64 reports.
            *slot = slot.wrapping_add((h32.wrapping_sub(lo) < width) as u64);
        }
    }
}

/// Optimized Local Hashing over a domain of size `d`.
///
/// Each client draws a random member `H` of a universal hash family mapping
/// the domain into `g = ⌈e^ε⌉ + 1` buckets, perturbs `H(v)` with GRR over
/// `[g]`, and reports `⟨H, GRR(H(v))⟩`. The aggregator counts, for each
/// domain value `v`, the reports that *support* it (`H_j(v) = x_j`) and
/// de-biases: `Φ(v) = (C(v)/n − 1/g) / (p − 1/g)`.
///
/// The variance `4 e^ε / (n (e^ε − 1)²)` is independent of `d`, which makes
/// OLH the protocol of choice for large domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Olh {
    epsilon: f64,
    domain: u32,
    /// Hash range `g = ⌈e^ε⌉ + 1` (the variance-optimal choice).
    g: u32,
    /// GRR keep-probability over the hashed domain: `e^ε / (e^ε + g − 1)`.
    p: f64,
}

impl Olh {
    /// Creates an OLH oracle with the variance-optimal hash range
    /// `g = ⌈e^ε⌉ + 1`.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        let g = (epsilon.exp().ceil() as u32).saturating_add(1).max(2);
        Self::with_hash_range(epsilon, domain, g)
    }

    /// Creates an OLH oracle with an explicit hash range `g ≥ 2`; exposed for
    /// the ablation that sweeps `g` away from its optimum.
    pub fn with_hash_range(epsilon: f64, domain: u32, g: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        assert!(g >= 2, "hash range must be at least 2, got {g}");
        let e = epsilon.exp();
        let p = e / (e + g as f64 - 1.0);
        Olh {
            epsilon,
            domain,
            g,
            p,
        }
    }

    /// The hash range `g`.
    pub fn hash_range(&self) -> u32 {
        self.g
    }

    /// GRR keep-probability over the hashed domain.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Unpacks reports into `(seed, bucket_lo, bucket_width)` triples for
    /// the batched kernel, validating protocol and hash range up front — a
    /// mismatched report is rejected before any count is touched.
    fn unpack_reports(&self, reports: &[Report]) -> Result<Vec<UnpackedReport>> {
        reports
            .iter()
            .map(|r| {
                self.check_report(r)?;
                match r {
                    Report::Olh { seed, value } => {
                        let (lo, width) = bucket_bounds(*value, self.g);
                        Ok((*seed, lo, width))
                    }
                    _ => unreachable!("check_report admits only OLH reports"),
                }
            })
            .collect()
    }
}

impl FrequencyOracle for Olh {
    fn domain(&self) -> u32 {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report {
        assert!(
            value < self.domain,
            "value {value} out of domain {}",
            self.domain
        );
        let seed: u64 = rng.gen();
        let h = universal_hash(seed, value, self.g);
        // GRR over the hashed domain [g].
        let out = if rng.gen_bool(self.p) {
            h
        } else {
            let mut v = rng.gen_range(0..self.g - 1);
            if v >= h {
                v += 1;
            }
            v
        };
        Report::Olh { seed, value: out }
    }

    fn check_report(&self, report: &Report) -> Result<()> {
        match report {
            Report::Olh { value, .. } if *value < self.g => Ok(()),
            Report::Olh { value, .. } => Err(Error::ReportMismatch(format!(
                "OLH report value {value} out of hash range {}",
                self.g
            ))),
            other => Err(Error::ReportMismatch(format!(
                "OLH aggregator received non-OLH report {:?}",
                other.kind()
            ))),
        }
    }

    fn aggregate(&self, reports: &[Report]) -> Result<Vec<f64>> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return Ok(vec![0.0; d]);
        }
        // Support counting: C(v) = |{ j : H_j(v) = x_j }|. This is the hot
        // loop of the whole system (|reports| × d hash evaluations) and runs
        // through the batched, cache-blocked kernel.
        let mut counts = vec![0u64; d];
        self.accumulate_batch(reports, &mut counts)?;
        Ok(self.estimate_from_counts(&counts, reports.len()))
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) -> Result<()> {
        self.check_report(report)?;
        match report {
            Report::Olh { seed, value } => {
                for (v, slot) in counts.iter_mut().enumerate() {
                    if universal_hash(*seed, v as u32, self.g) == *value {
                        // ARITH: hot accumulate kernel; a u64 tally cannot
                        // reach 2^64 reports, and merge paths re-check with
                        // checked_add.
                        *slot = slot.wrapping_add(1);
                    }
                }
            }
            _ => unreachable!("check_report admits only OLH reports"),
        }
        Ok(())
    }

    fn accumulate_batch(&self, reports: &[Report], counts: &mut [u64]) -> Result<()> {
        // One counter bump per *batch* (not per report), so the hot loop
        // below stays untouched.
        match kernel_dispatch_path() {
            "avx512dq" => felip_obs::counter!("fo.olh.batch.avx512dq", 1, "batches"),
            "avx2" => felip_obs::counter!("fo.olh.batch.avx2", 1, "batches"),
            _ => felip_obs::counter!("fo.olh.batch.scalar", 1, "batches"),
        }
        felip_obs::counter!("fo.olh.batch.reports", reports.len(), "reports");
        // Like `accumulate`, the count-vector width (not `self.domain`)
        // defines the value range counted over.
        let pairs = self.unpack_reports(reports)?;
        // Parallelise over disjoint domain blocks — each worker owns its
        // slice of the count vector, so no per-thread vector merging. Under
        // an already-parallel caller (sharded ingestion) this runs
        // sequentially on the calling worker, which is exactly the blocked
        // single-thread kernel.
        counts
            .par_chunks_mut(BLOCK_VALUES)
            .enumerate()
            .for_each(|(b, block)| {
                support_count_block(&pairs, (b * BLOCK_VALUES) as u32, block);
            });
        Ok(())
    }

    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.domain as usize,
            "count vector width mismatch"
        );
        if n == 0 {
            return vec![0.0; counts.len()];
        }
        let n = n as f64;
        let inv_g = 1.0 / self.g as f64;
        let denom = self.p - inv_g;
        counts
            .iter()
            .map(|&c| (c as f64 / n - inv_g) / denom)
            .collect()
    }

    fn variance(&self, n: usize) -> f64 {
        olh_variance(self.epsilon, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;

    #[test]
    fn optimal_hash_range() {
        // g = ⌈e^ε⌉ + 1.
        assert_eq!(Olh::new(1.0, 100).hash_range(), 4); // e ≈ 2.72 → 3 + 1
        assert_eq!(Olh::new(2.0, 100).hash_range(), 9); // e² ≈ 7.39 → 8 + 1
        assert_eq!(Olh::new(0.1, 100).hash_range(), 3); // 1.1 → 2 + 1
    }

    #[test]
    fn estimates_are_unbiased_on_skewed_data() {
        let d = 64u32;
        let olh = Olh::new(1.0, d);
        let n = 200_000usize;
        let mut rng = seeded_rng(5);
        let mut truth = vec![0.0f64; d as usize];
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            // 50% mass on value 0, rest uniform.
            let v = if i % 2 == 0 {
                0
            } else {
                (i / 2 % (d as usize - 1) + 1) as u32
            };
            truth[v as usize] += 1.0;
            reports.push(olh.perturb(v, &mut rng));
        }
        for t in &mut truth {
            *t /= n as f64;
        }
        let est = olh.aggregate(&reports).unwrap();
        let sd = olh.variance(n).sqrt();
        assert!(
            (est[0] - truth[0]).abs() < 6.0 * sd,
            "{} vs {}",
            est[0],
            truth[0]
        );
        assert!((est[17] - truth[17]).abs() < 6.0 * sd);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let d = 32u32;
        let eps = 1.0;
        let olh = Olh::new(eps, d);
        let n = 2_000usize;
        let runs = 300;
        let mut rng = seeded_rng(13);
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let reports: Vec<_> = (0..n).map(|_| olh.perturb(1, &mut rng)).collect();
            samples.push(olh.aggregate(&reports).unwrap()[20]); // true frequency 0
        }
        let emp = felip_common::metrics::sample_variance(&samples);
        let ana = olh.variance(n);
        assert!(
            (emp - ana).abs() / ana < 0.35,
            "empirical {emp} vs analytical {ana}"
        );
    }

    #[test]
    fn variance_independent_of_domain() {
        let a = Olh::new(1.0, 10).variance(1000);
        let b = Olh::new(1.0, 10_000).variance(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn hashed_grr_satisfies_ldp() {
        // Over the *hashed* domain, keep-probability ratio must be e^ε.
        let olh = Olh::new(1.5, 100);
        let g = olh.hash_range() as f64;
        let e = 1.5f64.exp();
        let q = (1.0 - olh.p()) / (g - 1.0);
        assert!((olh.p() / q - e).abs() < 1e-9);
    }

    #[test]
    fn empty_reports_give_zeros() {
        assert_eq!(Olh::new(1.0, 5).aggregate(&[]).unwrap(), vec![0.0; 5]);
    }

    #[test]
    fn aggregate_rejects_foreign_reports() {
        let err = Olh::new(1.0, 4).aggregate(&[Report::Grr(0)]).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");
    }

    #[test]
    fn rejects_value_outside_hash_range() {
        // Untrusted wire input: a "valid-looking" OLH report whose value
        // exceeds g must be an error, never a panic, and must not count.
        let olh = Olh::new(1.0, 8);
        let bad = Report::Olh {
            seed: 1,
            value: olh.hash_range(),
        };
        let mut counts = vec![0u64; 8];
        assert!(olh.accumulate(&bad, &mut counts).is_err());
        assert!(olh.accumulate_batch(&[bad], &mut counts).is_err());
        assert_eq!(counts, vec![0u64; 8]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn perturb_rejects_out_of_domain() {
        let olh = Olh::new(1.0, 4);
        let mut rng = seeded_rng(0);
        olh.perturb(4, &mut rng);
    }

    /// Reference scalar path for equivalence checks.
    fn scalar_counts(olh: &Olh, reports: &[Report], width: usize) -> Vec<u64> {
        let mut counts = vec![0u64; width];
        for r in reports {
            olh.accumulate(r, &mut counts).unwrap();
        }
        counts
    }

    #[test]
    fn batch_kernel_matches_scalar_path_exactly() {
        let olh = Olh::new(1.0, 300);
        let mut rng = seeded_rng(7);
        // 13 reports: exercises one full group of 8 plus a 5-report tail.
        let reports: Vec<_> = (0..13).map(|i| olh.perturb(i % 300, &mut rng)).collect();
        let mut batched = vec![0u64; 300];
        olh.accumulate_batch(&reports, &mut batched).unwrap();
        assert_eq!(batched, scalar_counts(&olh, &reports, 300));
    }

    #[test]
    fn batch_kernel_handles_multiple_blocks() {
        // Domain wider than one L1 block: block base offsets must line up.
        let d = (super::BLOCK_VALUES * 2 + 77) as u32;
        let olh = Olh::new(0.5, d);
        let mut rng = seeded_rng(8);
        let reports: Vec<_> = (0..9)
            .map(|i| olh.perturb(i * 1000 % d, &mut rng))
            .collect();
        let mut batched = vec![0u64; d as usize];
        olh.accumulate_batch(&reports, &mut batched).unwrap();
        assert_eq!(batched, scalar_counts(&olh, &reports, d as usize));
    }

    #[test]
    fn batch_kernel_empty_and_tiny_inputs() {
        let olh = Olh::new(1.0, 16);
        let mut counts = vec![0u64; 16];
        olh.accumulate_batch(&[], &mut counts).unwrap();
        assert_eq!(counts, vec![0u64; 16]);
        let mut rng = seeded_rng(9);
        let one = [olh.perturb(3, &mut rng)];
        olh.accumulate_batch(&one, &mut counts).unwrap();
        assert_eq!(counts, scalar_counts(&olh, &one, 16));
    }

    #[test]
    fn batch_rejects_foreign_reports() {
        let mut counts = vec![0u64; 4];
        let err = Olh::new(1.0, 4)
            .accumulate_batch(&[Report::Grr(0)], &mut counts)
            .unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");
    }

    #[test]
    fn custom_hash_range() {
        let olh = Olh::with_hash_range(1.0, 50, 16);
        assert_eq!(olh.hash_range(), 16);
        let mut rng = seeded_rng(2);
        if let Report::Olh { value, .. } = olh.perturb(10, &mut rng) {
            assert!(value < 16);
        } else {
            panic!("wrong report type");
        }
    }
}
