//! Optimized Local Hashing (§2.2.2; Wang et al., USENIX Security 2017).

use rand::{Rng, RngCore};
use rayon::prelude::*;

use felip_common::hash::universal_hash;

use crate::report::Report;
use crate::traits::FrequencyOracle;
use crate::variance::olh_variance;

/// Optimized Local Hashing over a domain of size `d`.
///
/// Each client draws a random member `H` of a universal hash family mapping
/// the domain into `g = ⌈e^ε⌉ + 1` buckets, perturbs `H(v)` with GRR over
/// `[g]`, and reports `⟨H, GRR(H(v))⟩`. The aggregator counts, for each
/// domain value `v`, the reports that *support* it (`H_j(v) = x_j`) and
/// de-biases: `Φ(v) = (C(v)/n − 1/g) / (p − 1/g)`.
///
/// The variance `4 e^ε / (n (e^ε − 1)²)` is independent of `d`, which makes
/// OLH the protocol of choice for large domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Olh {
    epsilon: f64,
    domain: u32,
    /// Hash range `g = ⌈e^ε⌉ + 1` (the variance-optimal choice).
    g: u32,
    /// GRR keep-probability over the hashed domain: `e^ε / (e^ε + g − 1)`.
    p: f64,
}

impl Olh {
    /// Creates an OLH oracle with the variance-optimal hash range
    /// `g = ⌈e^ε⌉ + 1`.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        let g = (epsilon.exp().ceil() as u32).saturating_add(1).max(2);
        Self::with_hash_range(epsilon, domain, g)
    }

    /// Creates an OLH oracle with an explicit hash range `g ≥ 2`; exposed for
    /// the ablation that sweeps `g` away from its optimum.
    pub fn with_hash_range(epsilon: f64, domain: u32, g: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        assert!(g >= 2, "hash range must be at least 2, got {g}");
        let e = epsilon.exp();
        let p = e / (e + g as f64 - 1.0);
        Olh { epsilon, domain, g, p }
    }

    /// The hash range `g`.
    pub fn hash_range(&self) -> u32 {
        self.g
    }

    /// GRR keep-probability over the hashed domain.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl FrequencyOracle for Olh {
    fn domain(&self) -> u32 {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report {
        assert!(value < self.domain, "value {value} out of domain {}", self.domain);
        let seed: u64 = rng.gen();
        let h = universal_hash(seed, value, self.g);
        // GRR over the hashed domain [g].
        let out = if rng.gen_bool(self.p) {
            h
        } else {
            let mut v = rng.gen_range(0..self.g - 1);
            if v >= h {
                v += 1;
            }
            v
        };
        Report::Olh { seed, value: out }
    }

    fn aggregate(&self, reports: &[Report]) -> Vec<f64> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return vec![0.0; d];
        }
        // Support counting: C(v) = |{ j : H_j(v) = x_j }|. This is the hot
        // loop of the whole system (|reports| × d hash evaluations), so we
        // parallelise over reports and merge per-thread count vectors.
        let counts = reports
            .par_iter()
            .fold(
                || vec![0u64; d],
                |mut acc, r| {
                    self.accumulate(r, &mut acc);
                    acc
                },
            )
            .reduce(
                || vec![0u64; d],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        self.estimate_from_counts(&counts, reports.len())
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) {
        match report {
            Report::Olh { seed, value } => {
                assert!(*value < self.g, "OLH report value out of hash range");
                for (v, slot) in counts.iter_mut().enumerate() {
                    if universal_hash(*seed, v as u32, self.g) == *value {
                        *slot += 1;
                    }
                }
            }
            other => panic!("OLH aggregator received non-OLH report {other:?}"),
        }
    }

    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64> {
        assert_eq!(counts.len(), self.domain as usize, "count vector width mismatch");
        if n == 0 {
            return vec![0.0; counts.len()];
        }
        let n = n as f64;
        let inv_g = 1.0 / self.g as f64;
        let denom = self.p - inv_g;
        counts.iter().map(|&c| (c as f64 / n - inv_g) / denom).collect()
    }

    fn variance(&self, n: usize) -> f64 {
        olh_variance(self.epsilon, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;

    #[test]
    fn optimal_hash_range() {
        // g = ⌈e^ε⌉ + 1.
        assert_eq!(Olh::new(1.0, 100).hash_range(), 4); // e ≈ 2.72 → 3 + 1
        assert_eq!(Olh::new(2.0, 100).hash_range(), 9); // e² ≈ 7.39 → 8 + 1
        assert_eq!(Olh::new(0.1, 100).hash_range(), 3); // 1.1 → 2 + 1
    }

    #[test]
    fn estimates_are_unbiased_on_skewed_data() {
        let d = 64u32;
        let olh = Olh::new(1.0, d);
        let n = 200_000usize;
        let mut rng = seeded_rng(5);
        let mut truth = vec![0.0f64; d as usize];
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            // 50% mass on value 0, rest uniform.
            let v = if i % 2 == 0 { 0 } else { (i / 2 % (d as usize - 1) + 1) as u32 };
            truth[v as usize] += 1.0;
            reports.push(olh.perturb(v, &mut rng));
        }
        for t in &mut truth {
            *t /= n as f64;
        }
        let est = olh.aggregate(&reports);
        let sd = olh.variance(n).sqrt();
        assert!((est[0] - truth[0]).abs() < 6.0 * sd, "{} vs {}", est[0], truth[0]);
        assert!((est[17] - truth[17]).abs() < 6.0 * sd);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let d = 32u32;
        let eps = 1.0;
        let olh = Olh::new(eps, d);
        let n = 2_000usize;
        let runs = 300;
        let mut rng = seeded_rng(13);
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let reports: Vec<_> = (0..n).map(|_| olh.perturb(1, &mut rng)).collect();
            samples.push(olh.aggregate(&reports)[20]); // true frequency 0
        }
        let emp = felip_common::metrics::sample_variance(&samples);
        let ana = olh.variance(n);
        assert!(
            (emp - ana).abs() / ana < 0.35,
            "empirical {emp} vs analytical {ana}"
        );
    }

    #[test]
    fn variance_independent_of_domain() {
        let a = Olh::new(1.0, 10).variance(1000);
        let b = Olh::new(1.0, 10_000).variance(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn hashed_grr_satisfies_ldp() {
        // Over the *hashed* domain, keep-probability ratio must be e^ε.
        let olh = Olh::new(1.5, 100);
        let g = olh.hash_range() as f64;
        let e = 1.5f64.exp();
        let q = (1.0 - olh.p()) / (g - 1.0);
        assert!((olh.p() / q - e).abs() < 1e-9);
    }

    #[test]
    fn empty_reports_give_zeros() {
        assert_eq!(Olh::new(1.0, 5).aggregate(&[]), vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "non-OLH")]
    fn aggregate_rejects_foreign_reports() {
        Olh::new(1.0, 4).aggregate(&[Report::Grr(0)]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn perturb_rejects_out_of_domain() {
        let olh = Olh::new(1.0, 4);
        let mut rng = seeded_rng(0);
        olh.perturb(4, &mut rng);
    }

    #[test]
    fn custom_hash_range() {
        let olh = Olh::with_hash_range(1.0, 50, 16);
        assert_eq!(olh.hash_range(), 16);
        let mut rng = seeded_rng(2);
        if let Report::Olh { value, .. } = olh.perturb(10, &mut rng) {
            assert!(value < 16);
        } else {
            panic!("wrong report type");
        }
    }
}
