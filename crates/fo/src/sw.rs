//! Square Wave mechanism with EM reconstruction (Li et al., SIGMOD 2020 —
//! the paper's reference \[25\] for estimating numerical distributions).
//!
//! Unlike the frequency oracles, Square Wave exploits the *order* of an
//! ordinal domain: the client reports a noisy numeric value near its true
//! one (uniform inside a window of half-width `b` with high probability,
//! uniform elsewhere otherwise), and the aggregator reconstructs the input
//! distribution by Expectation-Maximisation over the known transition
//! kernel. It is included as an alternative 1-D marginal estimator — the
//! `sw_vs_olh` bench contrasts it with the OLH grids OHG uses — and rounds
//! out the LDP substrate with the main ordinal mechanism of the related
//! work.
//!
//! Square Wave does **not** implement [`crate::FrequencyOracle`]: its
//! report is a real number, its estimator is iterative, and it has no
//! closed-form variance — forcing it under that trait would misrepresent
//! all three.

use rand::{Rng, RngCore};

/// The Square Wave randomiser over an ordinal domain of size `d`.
///
/// Values are mapped to `[0, 1]`; reports live in `[-b, 1 + b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    epsilon: f64,
    domain: u32,
    /// Window half-width `b` (the variance-optimal choice of Li et al.).
    b: f64,
    /// In-window report density `p`.
    p: f64,
    /// Out-of-window report density `q = p / e^ε`.
    q: f64,
}

impl SquareWave {
    /// Creates a Square Wave mechanism with the paper's optimal window
    /// `b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))`.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        let e = epsilon.exp();
        let b = (epsilon * e - e + 1.0) / (2.0 * e * (e - 1.0 - epsilon));
        // Densities: ∫ window (width 2b) at p + rest (width 1) at q = 1,
        // with p = e^ε q ⇒ q = 1 / (2 b e^ε + 1).
        let q = 1.0 / (2.0 * b * e + 1.0);
        let p = e * q;
        SquareWave {
            epsilon,
            domain,
            b,
            p,
            q,
        }
    }

    /// The window half-width `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Domain size `d`.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Client side: perturbs an ordinal `value ∈ 0..d` into a report in
    /// `[-b, 1 + b]`, satisfying ε-LDP (the density ratio of any report
    /// between any two inputs is at most `p/q = e^ε`).
    pub fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> f64 {
        assert!(
            value < self.domain,
            "value {value} out of domain {}",
            self.domain
        );
        // Map to the centre of the value's sub-interval of [0, 1].
        let v = (value as f64 + 0.5) / self.domain as f64;
        let in_window_mass = 2.0 * self.b * self.p;
        if rng.gen_bool(in_window_mass.clamp(0.0, 1.0)) {
            v - self.b + rng.gen::<f64>() * 2.0 * self.b
        } else {
            // Uniform over [-b, 1 + b] minus the window (total width 1).
            let u = rng.gen::<f64>(); // position within the out-of-window mass
            let left_width = v; // [-b, v - b) has width v
            if u < left_width {
                -self.b + u
            } else {
                v + self.b + (u - left_width)
            }
        }
    }

    /// Probability that input bucket `i` (of `d`) produces a report in
    /// output bucket `o` (of `buckets` over `[-b, 1 + b]`) — the EM
    /// transition kernel, computed by exact interval overlap of the
    /// piecewise-constant report density.
    fn transition(&self, i: u32, o: usize, buckets: usize) -> f64 {
        let v = (i as f64 + 0.5) / self.domain as f64;
        let total_width = 1.0 + 2.0 * self.b;
        let lo = -self.b + o as f64 / buckets as f64 * total_width;
        let hi = -self.b + (o + 1) as f64 / buckets as f64 * total_width;
        // Density: p on [v - b, v + b], q elsewhere.
        let win_lo = v - self.b;
        let win_hi = v + self.b;
        let inter = (hi.min(win_hi) - lo.max(win_lo)).max(0.0);
        inter * self.p + ((hi - lo) - inter) * self.q
    }

    /// Server side: reconstructs the input distribution (one frequency per
    /// ordinal value, non-negative, summing to 1) from the collected
    /// reports by EM with `iters` iterations over `buckets` report buckets.
    ///
    /// Returns the uniform distribution for an empty report set.
    pub fn estimate(&self, reports: &[f64], buckets: usize, iters: usize) -> Vec<f64> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return vec![1.0 / d as f64; d];
        }
        let buckets = buckets.max(d);
        // Histogram the reports.
        let total_width = 1.0 + 2.0 * self.b;
        let mut counts = vec![0.0f64; buckets];
        for &r in reports {
            let t = ((r + self.b) / total_width).clamp(0.0, 1.0 - 1e-12);
            counts[(t * buckets as f64) as usize] += 1.0;
        }
        // Precompute the kernel M[o][i].
        let kernel: Vec<Vec<f64>> = (0..buckets)
            .map(|o| {
                (0..d)
                    .map(|i| self.transition(i as u32, o, buckets))
                    .collect()
            })
            .collect();
        // EM from uniform.
        let n = reports.len() as f64;
        let mut f = vec![1.0 / d as f64; d];
        for _ in 0..iters {
            let mut next = vec![0.0f64; d];
            for (o, &c) in counts.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                let denom: f64 = (0..d).map(|i| kernel[o][i] * f[i]).sum();
                if denom <= 0.0 {
                    continue;
                }
                for i in 0..d {
                    next[i] += c * kernel[o][i] * f[i] / denom;
                }
            }
            let s: f64 = next.iter().sum();
            if s <= 0.0 {
                break;
            }
            for (fi, ni) in f.iter_mut().zip(&next) {
                *fi = ni / s;
            }
        }
        let _ = n;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;

    #[test]
    fn window_parameters_satisfy_ldp() {
        for eps in [0.5f64, 1.0, 2.0, 4.0] {
            let sw = SquareWave::new(eps, 64);
            assert!(sw.b() > 0.0, "b must be positive at eps {eps}");
            // Density ratio is exactly e^ε; total mass integrates to 1.
            assert!((sw.p / sw.q - eps.exp()).abs() < 1e-9);
            let mass = 2.0 * sw.b * sw.p + 1.0 * sw.q;
            assert!((mass - 1.0).abs() < 1e-9, "total mass {mass}");
        }
    }

    #[test]
    fn reports_stay_in_range() {
        let sw = SquareWave::new(1.0, 32);
        let mut rng = seeded_rng(1);
        for v in 0..32 {
            for _ in 0..200 {
                let r = sw.perturb(v, &mut rng);
                assert!(
                    (-sw.b() - 1e-9..=1.0 + sw.b() + 1e-9).contains(&r),
                    "report {r} outside [-b, 1+b]"
                );
            }
        }
    }

    #[test]
    fn em_reconstructs_a_peaked_distribution() {
        let d = 32u32;
        let sw = SquareWave::new(2.0, d);
        let mut rng = seeded_rng(3);
        let n = 60_000;
        // Truth: 70% at value 8, 30% uniform.
        let mut truth = vec![0.3 / d as f64; d as usize];
        truth[8] += 0.7;
        let reports: Vec<f64> = (0..n)
            .map(|_| {
                let v = if rng.gen_bool(0.7) {
                    8
                } else {
                    rng.gen_range(0..d)
                };
                sw.perturb(v, &mut rng)
            })
            .collect();
        let est = sw.estimate(&reports, 128, 60);
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.iter().all(|&f| f >= 0.0));
        // The peak must be recovered near value 8 (EM smears slightly).
        let mass_near_peak: f64 = est[6..=10].iter().sum();
        assert!(mass_near_peak > 0.5, "mass near peak {mass_near_peak}");
        let far: f64 = est[20..].iter().sum();
        assert!(far < 0.25, "mass far from peak {far}");
    }

    #[test]
    fn em_on_uniform_input_stays_flat() {
        let d = 16u32;
        let sw = SquareWave::new(1.0, d);
        let mut rng = seeded_rng(5);
        let reports: Vec<f64> = (0..40_000)
            .map(|_| sw.perturb(rng.gen_range(0..d), &mut rng))
            .collect();
        let est = sw.estimate(&reports, 64, 40);
        for (v, &f) in est.iter().enumerate() {
            assert!(
                (f - 1.0 / d as f64).abs() < 0.03,
                "value {v}: {f} far from uniform"
            );
        }
    }

    #[test]
    fn empty_reports_give_uniform() {
        let sw = SquareWave::new(1.0, 8);
        let est = sw.estimate(&[], 32, 10);
        assert!(est.iter().all(|&f| (f - 0.125).abs() < 1e-12));
    }

    #[test]
    fn empirical_ldp_bound_on_discretised_output() {
        // Histogram the report distribution for two extreme inputs and
        // bound the per-bucket likelihood ratio by e^ε (+ sampling slack).
        let eps = 1.0;
        let sw = SquareWave::new(eps, 16);
        let mut rng = seeded_rng(7);
        let trials = 150_000;
        let buckets = 24;
        let hist = |value: u32, rng: &mut rand::rngs::StdRng| -> Vec<f64> {
            let mut h = vec![0.0; buckets];
            let w = 1.0 + 2.0 * sw.b();
            for _ in 0..trials {
                let r = sw.perturb(value, rng);
                let t = ((r + sw.b()) / w).clamp(0.0, 1.0 - 1e-12);
                h[(t * buckets as f64) as usize] += 1.0 / trials as f64;
            }
            h
        };
        let h0 = hist(0, &mut rng);
        let h15 = hist(15, &mut rng);
        for (b, (&a, &c)) in h0.iter().zip(&h15).enumerate() {
            if a < 0.005 || c < 0.005 {
                continue; // too rare to estimate reliably
            }
            let ratio = (a / c).max(c / a);
            assert!(ratio <= eps.exp() * 1.2, "bucket {b}: ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn perturb_rejects_out_of_domain() {
        let sw = SquareWave::new(1.0, 4);
        let mut rng = seeded_rng(0);
        sw.perturb(4, &mut rng);
    }
}
