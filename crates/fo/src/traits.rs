//! The frequency-oracle abstraction shared by all protocols.

use rand::RngCore;

use felip_common::Result;

use crate::report::Report;

/// A local-DP frequency oracle: client-side randomiser `Ψ` plus server-side
/// estimator `Φ` (§2.2).
///
/// Implementations are cheap value types carrying only the protocol
/// parameters (ε, domain size, derived probabilities); they hold no state
/// across calls, so one instance can serve any number of users.
///
/// The server-side entry points (`aggregate`, `accumulate`,
/// `accumulate_batch`) consume *untrusted* input — reports may arrive over
/// the network from clients the aggregator does not control — so a report
/// whose kind or shape does not match the oracle yields
/// [`felip_common::Error::ReportMismatch`] rather than a panic.
pub trait FrequencyOracle: Send + Sync {
    /// Domain size `|D|` the oracle operates over.
    fn domain(&self) -> u32;

    /// Privacy budget ε the randomiser satisfies.
    fn epsilon(&self) -> f64;

    /// Client side: perturbs the private `value ∈ 0..domain()`.
    ///
    /// # Panics
    /// Panics when `value` is out of domain — the caller (the grid layer)
    /// guarantees cell indices are valid, so an out-of-range value is a bug.
    /// Unlike the server-side entry points, `perturb` never sees untrusted
    /// input.
    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report;

    /// Validates that `report` could have been produced by this oracle's
    /// randomiser: right protocol, right payload shape (OLH value within the
    /// hash range, OUE bit vector of the right width, ...).
    ///
    /// Returns [`felip_common::Error::ReportMismatch`] otherwise. The
    /// accumulation entry points call this before touching any state, so a
    /// rejected report leaves counts unchanged.
    fn check_report(&self, report: &Report) -> Result<()>;

    /// Server side: unbiased frequency estimates (fractions of the reporting
    /// population, one per domain value) from the collected reports.
    ///
    /// Estimates can be negative or exceed 1; post-processing handles that.
    /// Returns all-zeros when `reports` is empty, and
    /// [`felip_common::Error::ReportMismatch`] when any report fails
    /// [`FrequencyOracle::check_report`].
    fn aggregate(&self, reports: &[Report]) -> Result<Vec<f64>>;

    /// Streaming server side: folds one report into a per-value support
    /// count vector of length `domain()`. Together with
    /// [`FrequencyOracle::estimate_from_counts`] this lets an aggregator
    /// process reports as they arrive without buffering them (the FELIP
    /// engine's ingestion path).
    ///
    /// A report failing [`FrequencyOracle::check_report`] is rejected before
    /// any count is touched.
    fn accumulate(&self, report: &Report, counts: &mut [u64]) -> Result<()>;

    /// Batched server side: folds a slice of reports into the support-count
    /// vector in one call.
    ///
    /// Semantically identical to calling [`FrequencyOracle::accumulate`] per
    /// report — implementations that override this (OLH's cache-blocked
    /// kernel) must stay bit-for-bit equivalent to that scalar path, since
    /// all counts are exact `u64` tallies. The batched entry point exists so
    /// protocols whose per-report cost is `O(domain)` can amortise work
    /// across reports instead of re-walking the count vector per report.
    ///
    /// Every report is validated *before* any is accumulated, so a failed
    /// call leaves `counts` unchanged.
    fn accumulate_batch(&self, reports: &[Report], counts: &mut [u64]) -> Result<()> {
        for report in reports {
            self.check_report(report)?;
        }
        for report in reports {
            self.accumulate(report, counts)?;
        }
        Ok(())
    }

    /// Streaming server side: turns accumulated support counts for `n`
    /// ingested reports into unbiased frequency estimates.
    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64>;

    /// Analytical per-value estimation variance for a population of `n`
    /// reporting users (the `Var[Φ(v)]` expressions of §2.2).
    fn variance(&self, n: usize) -> f64;
}
