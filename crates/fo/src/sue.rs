//! Symmetric Unary Encoding (the RAPPOR configuration; Erlingsson et al.,
//! CCS 2014, as analysed by Wang et al., USENIX Security 2017).
//!
//! Like [`crate::Oue`] the client one-hot encodes its value, but the bit
//! flip probabilities are symmetric: a bit is reported truthfully with
//! probability `e^{ε/2} / (e^{ε/2} + 1)`. SUE's variance is strictly worse
//! than OUE's — it is included as the historical reference point the
//! `afo_crossover` ablation and the FO benches compare against, completing
//! the protocol family of the original LDP literature.

use rand::{Rng, RngCore};

use felip_common::{Error, Result};

use crate::report::Report;
use crate::traits::FrequencyOracle;

/// Symmetric Unary Encoding (RAPPOR's permanent randomized response) over a
/// domain of size `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sue {
    epsilon: f64,
    domain: u32,
    /// Probability a bit is transmitted truthfully: `e^{ε/2}/(e^{ε/2}+1)`.
    p: f64,
}

impl Sue {
    /// Creates a SUE oracle.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        let half = (epsilon / 2.0).exp();
        Sue {
            epsilon,
            domain,
            p: half / (half + 1.0),
        }
    }

    /// Probability of transmitting a bit truthfully.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability a 0-bit is reported as 1 (`1 − p` by symmetry).
    pub fn q(&self) -> f64 {
        1.0 - self.p
    }

    fn words(&self) -> usize {
        (self.domain as usize).div_ceil(64)
    }
}

impl FrequencyOracle for Sue {
    fn domain(&self) -> u32 {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report {
        assert!(
            value < self.domain,
            "value {value} out of domain {}",
            self.domain
        );
        let mut bits = vec![0u64; self.words()];
        for i in 0..self.domain {
            let truth = i == value;
            let reported_one = if rng.gen_bool(self.p) { truth } else { !truth };
            if reported_one {
                bits[(i / 64) as usize] |= 1u64 << (i % 64);
            }
        }
        Report::Oue(bits)
    }

    fn check_report(&self, report: &Report) -> Result<()> {
        match report {
            Report::Oue(bits) if bits.len() == self.words() => Ok(()),
            Report::Oue(bits) => Err(Error::ReportMismatch(format!(
                "SUE report has wrong width: {} words for domain {}",
                bits.len(),
                self.domain
            ))),
            other => Err(Error::ReportMismatch(format!(
                "SUE aggregator received incompatible report {:?}",
                other.kind()
            ))),
        }
    }

    fn aggregate(&self, reports: &[Report]) -> Result<Vec<f64>> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return Ok(vec![0.0; d]);
        }
        let mut counts = vec![0u64; d];
        self.accumulate_batch(reports, &mut counts)?;
        Ok(self.estimate_from_counts(&counts, reports.len()))
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) -> Result<()> {
        self.check_report(report)?;
        match report {
            Report::Oue(bits) => {
                for (v, slot) in counts.iter_mut().enumerate() {
                    if bits[v / 64] >> (v % 64) & 1 == 1 {
                        // ARITH: hot accumulate kernel; a u64 tally cannot
                        // reach 2^64 reports, and merge paths re-check with
                        // checked_add.
                        *slot = slot.wrapping_add(1);
                    }
                }
            }
            _ => unreachable!("check_report admits only OUE-shaped reports"),
        }
        Ok(())
    }

    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.domain as usize,
            "count vector width mismatch"
        );
        if n == 0 {
            return vec![0.0; counts.len()];
        }
        let n = n as f64;
        let q = self.q();
        let denom = self.p - q;
        counts.iter().map(|&c| (c as f64 / n - q) / denom).collect()
    }

    fn variance(&self, n: usize) -> f64 {
        // Var[Φ_SUE] at small true frequency: q(1−q)/(n(p−q)²) with q = 1−p,
        // which simplifies to e^{ε/2} / (n (e^{ε/2} − 1)²).
        let half = (self.epsilon / 2.0).exp();
        half / (n as f64 * (half - 1.0) * (half - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oue;
    use felip_common::rng::seeded_rng;

    #[test]
    fn probabilities_are_symmetric() {
        let s = Sue::new(1.0, 8);
        assert!((s.p() + s.q() - 1.0).abs() < 1e-12);
        // Per-bit likelihood ratio is e^{ε/2}; over the two differing bits
        // of two one-hot encodings the total ratio is e^ε.
        assert!((s.p() / s.q() - 0.5f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn estimates_are_unbiased() {
        let d = 12u32;
        let s = Sue::new(1.0, d);
        let n = 60_000usize;
        let mut rng = seeded_rng(3);
        let reports: Vec<_> = (0..n).map(|_| s.perturb(5, &mut rng)).collect();
        let est = s.aggregate(&reports).unwrap();
        let sd = s.variance(n).sqrt();
        assert!((est[5] - 1.0).abs() < 6.0 * sd, "est {}", est[5]);
        assert!(est[0].abs() < 6.0 * sd);
    }

    #[test]
    fn sue_variance_worse_than_oue() {
        // The asymmetric OUE choice dominates SUE for every ε — the reason
        // OUE superseded RAPPOR's encoding.
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let sue = Sue::new(eps, 16);
            let oue = Oue::new(eps, 16);
            assert!(
                sue.variance(1000) > oue.variance(1000),
                "ε = {eps}: SUE {} vs OUE {}",
                sue.variance(1000),
                oue.variance(1000)
            );
        }
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let s = Sue::new(1.0, 16);
        let n = 2_000usize;
        let runs = 250;
        let mut rng = seeded_rng(8);
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let reports: Vec<_> = (0..n).map(|_| s.perturb(0, &mut rng)).collect();
            samples.push(s.aggregate(&reports).unwrap()[9]); // true frequency 0
        }
        let emp = felip_common::metrics::sample_variance(&samples);
        let ana = s.variance(n);
        assert!(
            (emp - ana).abs() / ana < 0.35,
            "empirical {emp} vs analytical {ana}"
        );
    }

    #[test]
    fn multiword_domains() {
        let s = Sue::new(2.0, 100);
        let mut rng = seeded_rng(1);
        if let Report::Oue(bits) = s.perturb(99, &mut rng) {
            assert_eq!(bits.len(), 2);
        } else {
            panic!("wrong report type");
        }
    }

    #[test]
    fn rejects_foreign_reports() {
        let err = Sue::new(1.0, 4).aggregate(&[Report::Grr(0)]).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");
    }
}
