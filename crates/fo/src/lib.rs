#![warn(missing_docs)]

//! Local differential privacy frequency oracles.
//!
//! A *frequency oracle* (FO, §2.2 of the paper) is a pair of algorithms: a
//! client-side randomiser `Ψ` that perturbs one private value from a finite
//! domain, and a server-side estimator `Φ` that recovers unbiased frequency
//! estimates for every domain value from the collected perturbed reports.
//!
//! This crate implements, from scratch:
//!
//! * [`Grr`] — Generalized Randomized Response (§2.2.1);
//! * [`Olh`] — Optimized Local Hashing (§2.2.2, Wang et al. USENIX'17);
//! * [`Oue`] — Optimized Unary Encoding (extension; same source), used by the
//!   ablation benches as a third reference point;
//! * [`Sue`] — Symmetric Unary Encoding (RAPPOR's configuration), the
//!   historical baseline the unary family improved on;
//! * [`SquareWave`] — the ordinal-domain mechanism of Li et al. (SIGMOD'20)
//!   with EM reconstruction, an alternative 1-D marginal estimator;
//! * [`afo`] — the Adaptive Frequency Oracle selection rule (§5.3): pick the
//!   protocol with the smaller analytical variance for the domain at hand;
//! * [`variance`] — closed-form variances used by both AFO and the grid-size
//!   optimiser.
//!
//! All oracles implement the [`FrequencyOracle`] trait, report through the
//! common [`Report`] type, and satisfy ε-LDP for the configured budget
//! (verified empirically in this crate's tests by bounding the likelihood
//! ratio of every output).

pub mod afo;
pub mod grr;
pub mod olh;
pub mod oue;
pub mod report;
pub mod sue;
pub mod sw;
pub mod traits;
pub mod variance;

pub use afo::{choose_oracle, make_oracle, FoKind};
pub use grr::Grr;
pub use olh::Olh;
pub use oue::Oue;
pub use report::Report;
pub use sue::Sue;
pub use sw::SquareWave;
pub use traits::FrequencyOracle;
