//! The wire format of a perturbed user report.

/// One user's LDP report, as it travels from client to aggregator.
///
/// The enum mirrors what each protocol actually transmits:
/// GRR sends one domain value; OLH sends the user's hash seed plus the
/// perturbed hashed value; OUE sends a perturbed bit vector packed into
/// 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Report {
    /// GRR: a (possibly flipped) domain value.
    Grr(u32),
    /// OLH: the public hash seed and the GRR-perturbed hash bucket.
    Olh {
        /// Seed selecting the member of the universal hash family; chosen
        /// uniformly by the client and sent in the clear.
        seed: u64,
        /// The perturbed value in `0..g`.
        value: u32,
    },
    /// OUE: the perturbed unary encoding, little-endian bit packing,
    /// `ceil(d / 64)` words.
    Oue(Vec<u64>),
}

/// The protocol a [`Report`] was produced by, without its payload — what an
/// aggregator checks before ingesting untrusted input, and the discriminant
/// tag the wire format serialises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A [`Report::Grr`] value.
    Grr,
    /// A [`Report::Olh`] seed/value pair.
    Olh,
    /// A [`Report::Oue`] packed bit vector.
    Oue,
}

impl std::fmt::Display for ReportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportKind::Grr => write!(f, "GRR"),
            ReportKind::Olh => write!(f, "OLH"),
            ReportKind::Oue => write!(f, "OUE"),
        }
    }
}

impl Report {
    /// Approximate wire size in bytes; used by the communication-cost
    /// ablation bench.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Report::Grr(_) => 4,
            Report::Olh { .. } => 12,
            Report::Oue(words) => words.len() * 8,
        }
    }

    /// Which protocol produced this report.
    pub fn kind(&self) -> ReportKind {
        match self {
            Report::Grr(_) => ReportKind::Grr,
            Report::Olh { .. } => ReportKind::Olh,
            Report::Oue(_) => ReportKind::Oue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(Report::Grr(3).wire_bytes(), 4);
        assert_eq!(Report::Olh { seed: 1, value: 2 }.wire_bytes(), 12);
        assert_eq!(Report::Oue(vec![0, 0]).wire_bytes(), 16);
    }

    #[test]
    fn kinds() {
        assert_eq!(Report::Grr(0).kind(), ReportKind::Grr);
        assert_eq!(Report::Olh { seed: 0, value: 0 }.kind(), ReportKind::Olh);
        assert_eq!(Report::Oue(vec![]).kind(), ReportKind::Oue);
        assert_eq!(ReportKind::Olh.to_string(), "OLH");
    }
}
