//! Closed-form estimation variances (§2.2, §5.1).
//!
//! These formulas drive two decisions in FELIP: the per-grid protocol choice
//! of the Adaptive Frequency Oracle (§5.3) and the grid-size optimisation
//! (§5.2), both of which compare GRR's domain-dependent variance against
//! OLH's domain-free one.

/// GRR per-value estimation variance for `n` reports over a domain of size
/// `d` (Eq. 2): `(e^ε + d − 2) / (n (e^ε − 1)²)`.
pub fn grr_variance(epsilon: f64, domain: u32, n: usize) -> f64 {
    let e = epsilon.exp();
    (e + domain as f64 - 2.0) / (n as f64 * (e - 1.0) * (e - 1.0))
}

/// OLH per-value estimation variance for `n` reports (domain-independent):
/// `4 e^ε / (n (e^ε − 1)²)`.
pub fn olh_variance(epsilon: f64, n: usize) -> f64 {
    let e = epsilon.exp();
    4.0 * e / (n as f64 * (e - 1.0) * (e - 1.0))
}

/// The population-partitioning variance of §5.1: when `n` users are divided
/// into `m` groups, each grid is estimated from `n/m` reports, so the
/// variance scales by `m`.
pub fn grouped_variance(single_user_variance_factor: f64, n: usize, m: usize) -> f64 {
    single_user_variance_factor * m as f64 / n as f64
}

/// Variance *factor* (the variance multiplied by `n`) for GRR — the quantity
/// compared by AFO (Eq. 13): `(e^ε + L − 2) / (e^ε − 1)²`.
pub fn grr_variance_factor(epsilon: f64, cells: u32) -> f64 {
    let e = epsilon.exp();
    (e + cells as f64 - 2.0) / ((e - 1.0) * (e - 1.0))
}

/// Variance factor for OLH: `4 e^ε / (e^ε − 1)²`.
pub fn olh_variance_factor(epsilon: f64) -> f64 {
    let e = epsilon.exp();
    4.0 * e / ((e - 1.0) * (e - 1.0))
}

/// Variance of GRR when the privacy budget is *split* `ε/m` instead of the
/// users being divided (the inferior alternative of Theorem 5.1). Exposed so
/// tests and the partitioning ablation can verify the theorem.
pub fn grr_variance_budget_split(epsilon: f64, cells: u32, n: usize, m: usize) -> f64 {
    grr_variance(epsilon / m as f64, cells, n)
}

/// Variance of OLH under budget splitting (Theorem 5.1 comparison point).
pub fn olh_variance_budget_split(epsilon: f64, n: usize, m: usize) -> f64 {
    olh_variance(epsilon / m as f64, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grr_variance_linear_in_domain() {
        let v1 = grr_variance(1.0, 10, 1000);
        let v2 = grr_variance(1.0, 20, 1000);
        // Increasing d by 10 adds 10/(n(e−1)²).
        let e = 1f64.exp();
        assert!((v2 - v1 - 10.0 / (1000.0 * (e - 1.0).powi(2))).abs() < 1e-15);
    }

    #[test]
    fn olh_beats_grr_for_large_domains() {
        let eps = 1.0;
        let n = 1000;
        // Crossover at d = 3e^ε + 2 ≈ 10.15.
        assert!(grr_variance(eps, 4, n) < olh_variance(eps, n));
        assert!(grr_variance(eps, 100, n) > olh_variance(eps, n));
    }

    #[test]
    fn crossover_point() {
        // GRR factor == OLH factor exactly when L = 3e^ε + 2.
        let eps: f64 = 1.3;
        let l: f64 = 3.0 * eps.exp() + 2.0;
        let g = grr_variance_factor(eps, l.round() as u32);
        let o = olh_variance_factor(eps);
        assert!((g - o).abs() / o < 0.05);
    }

    #[test]
    fn theorem_5_1_dividing_users_beats_budget_split() {
        // Var under user division: m × factor / n. Under budget split:
        // factor(ε/m) / n. Theorem 5.1: the former is smaller for all m > 1.
        for &eps in &[0.5, 1.0, 2.0] {
            for &m in &[2usize, 5, 10, 28] {
                for &cells in &[4u32, 64, 1024] {
                    let n = 100_000;
                    let div_users = grouped_variance(grr_variance_factor(eps, cells), n, m);
                    let div_budget = grr_variance_budget_split(eps, cells, n, m);
                    assert!(
                        div_users < div_budget,
                        "GRR: eps={eps} m={m} cells={cells}: {div_users} !< {div_budget}"
                    );
                    let div_users_olh = grouped_variance(olh_variance_factor(eps), n, m);
                    let div_budget_olh = olh_variance_budget_split(eps, n, m);
                    assert!(
                        div_users_olh < div_budget_olh,
                        "OLH: eps={eps} m={m}: {div_users_olh} !< {div_budget_olh}"
                    );
                }
            }
        }
    }

    #[test]
    fn variance_decreases_with_epsilon_and_n() {
        assert!(olh_variance(2.0, 1000) < olh_variance(1.0, 1000));
        assert!(olh_variance(1.0, 2000) < olh_variance(1.0, 1000));
        assert!(grr_variance(2.0, 16, 1000) < grr_variance(1.0, 16, 1000));
    }
}
