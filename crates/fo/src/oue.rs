//! Optimized Unary Encoding (Wang et al., USENIX Security 2017).
//!
//! Not used by FELIP's AFO (which adapts between GRR and OLH, §5.3), but
//! implemented as a third reference protocol: its variance is identical to
//! OLH's while its communication cost is Θ(d) bits, which the communication
//! ablation bench contrasts against OLH's Θ(log d).

use rand::{Rng, RngCore};

use felip_common::{Error, Result};

use crate::report::Report;
use crate::traits::FrequencyOracle;
use crate::variance::olh_variance;

/// Optimized Unary Encoding over a domain of size `d`.
///
/// The client one-hot encodes its value into `d` bits and flips each bit
/// independently: the 1-bit stays 1 with probability `p = 1/2`; each 0-bit
/// becomes 1 with probability `q = 1/(e^ε + 1)`. The asymmetric choice
/// minimises estimator variance, giving the same `4e^ε/(n(e^ε−1)²)` as OLH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oue {
    epsilon: f64,
    domain: u32,
    /// Probability that a 0-bit is reported as 1.
    q: f64,
}

impl Oue {
    /// Creates an OUE oracle.
    ///
    /// # Panics
    /// Panics when `epsilon <= 0` or `domain == 0`.
    pub fn new(epsilon: f64, domain: u32) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(domain > 0, "domain must be non-empty");
        Oue {
            epsilon,
            domain,
            q: 1.0 / (epsilon.exp() + 1.0),
        }
    }

    /// Probability a zero bit flips to one.
    pub fn q(&self) -> f64 {
        self.q
    }

    fn words(&self) -> usize {
        (self.domain as usize).div_ceil(64)
    }
}

impl FrequencyOracle for Oue {
    fn domain(&self) -> u32 {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Report {
        assert!(
            value < self.domain,
            "value {value} out of domain {}",
            self.domain
        );
        let mut bits = vec![0u64; self.words()];
        for i in 0..self.domain {
            let one = if i == value {
                rng.gen_bool(0.5)
            } else {
                rng.gen_bool(self.q)
            };
            if one {
                bits[(i / 64) as usize] |= 1u64 << (i % 64);
            }
        }
        Report::Oue(bits)
    }

    fn check_report(&self, report: &Report) -> Result<()> {
        match report {
            Report::Oue(bits) if bits.len() == self.words() => Ok(()),
            Report::Oue(bits) => Err(Error::ReportMismatch(format!(
                "OUE report has wrong width: {} words for domain {}",
                bits.len(),
                self.domain
            ))),
            other => Err(Error::ReportMismatch(format!(
                "OUE aggregator received non-OUE report {:?}",
                other.kind()
            ))),
        }
    }

    fn aggregate(&self, reports: &[Report]) -> Result<Vec<f64>> {
        let d = self.domain as usize;
        if reports.is_empty() {
            return Ok(vec![0.0; d]);
        }
        let mut counts = vec![0u64; d];
        self.accumulate_batch(reports, &mut counts)?;
        Ok(self.estimate_from_counts(&counts, reports.len()))
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) -> Result<()> {
        self.check_report(report)?;
        match report {
            Report::Oue(bits) => {
                for (v, slot) in counts.iter_mut().enumerate() {
                    if bits[v / 64] >> (v % 64) & 1 == 1 {
                        // ARITH: hot accumulate kernel; a u64 tally cannot
                        // reach 2^64 reports, and merge paths re-check with
                        // checked_add.
                        *slot = slot.wrapping_add(1);
                    }
                }
            }
            _ => unreachable!("check_report admits only OUE reports"),
        }
        Ok(())
    }

    fn estimate_from_counts(&self, counts: &[u64], n: usize) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.domain as usize,
            "count vector width mismatch"
        );
        if n == 0 {
            return vec![0.0; counts.len()];
        }
        let n = n as f64;
        let p = 0.5;
        let denom = p - self.q;
        counts
            .iter()
            .map(|&c| (c as f64 / n - self.q) / denom)
            .collect()
    }

    fn variance(&self, n: usize) -> f64 {
        // OUE's optimal variance equals OLH's.
        olh_variance(self.epsilon, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;

    #[test]
    fn flip_probabilities() {
        let oue = Oue::new(1.0, 10);
        assert!((oue.q() - 1.0 / (1f64.exp() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn estimates_are_unbiased() {
        let d = 20u32;
        let oue = Oue::new(1.0, d);
        let n = 60_000usize;
        let mut rng = seeded_rng(9);
        let mut reports = Vec::with_capacity(n);
        // All users hold value 4.
        for _ in 0..n {
            reports.push(oue.perturb(4, &mut rng));
        }
        let est = oue.aggregate(&reports).unwrap();
        let sd = oue.variance(n).sqrt();
        assert!((est[4] - 1.0).abs() < 6.0 * sd, "est {}", est[4]);
        assert!(est[5].abs() < 6.0 * sd);
    }

    #[test]
    fn multiword_domains() {
        // Domain > 64 exercises the bit packing across words.
        let d = 130u32;
        let oue = Oue::new(2.0, d);
        let mut rng = seeded_rng(4);
        let n = 30_000usize;
        let reports: Vec<_> = (0..n).map(|_| oue.perturb(129, &mut rng)).collect();
        let est = oue.aggregate(&reports).unwrap();
        assert_eq!(est.len(), 130);
        let sd = oue.variance(n).sqrt();
        assert!((est[129] - 1.0).abs() < 6.0 * sd);
        assert!(est[64].abs() < 6.0 * sd);
    }

    #[test]
    fn wire_cost_is_linear_in_domain() {
        let oue = Oue::new(1.0, 1000);
        let mut rng = seeded_rng(0);
        let r = oue.perturb(0, &mut rng);
        assert_eq!(r.wire_bytes(), 1000_usize.div_ceil(64) * 8);
    }

    #[test]
    fn aggregate_rejects_wrong_width() {
        let err = Oue::new(1.0, 130)
            .aggregate(&[Report::Oue(vec![0u64; 1])])
            .unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");
    }

    #[test]
    fn aggregate_rejects_foreign_reports() {
        let err = Oue::new(1.0, 4).aggregate(&[Report::Grr(0)]).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");
    }
}
