//! Property-based tests for the frequency oracles: structural invariants
//! that must hold for arbitrary (ε, domain) parameterisations.

use proptest::prelude::*;

use felip_common::rng::seeded_rng;
use felip_fo::afo::{afo_variance_factor, choose_oracle};
use felip_fo::variance::{grr_variance_factor, olh_variance_factor};
use felip_fo::{FoKind, FrequencyOracle, Grr, Olh, Oue, Report, Sue};

proptest! {
    /// GRR reports are always in-domain, and its transition probabilities
    /// form a proper distribution with likelihood ratio exactly e^ε.
    #[test]
    fn grr_structure(eps in 0.05f64..5.0, d in 1u32..512, v in 0u32..512, seed in 0u64..1000) {
        let v = v % d;
        let g = Grr::new(eps, d);
        prop_assert!((g.p() + (d as f64 - 1.0) * g.q() - 1.0).abs() < 1e-9);
        if d > 1 {
            prop_assert!((g.p() / g.q() - eps.exp()).abs() < 1e-6 * eps.exp());
        }
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            match g.perturb(v, &mut rng) {
                Report::Grr(x) => prop_assert!(x < d),
                other => prop_assert!(false, "wrong report {other:?}"),
            }
        }
    }

    /// OLH reports stay inside the hash range; the hash range follows
    /// `⌈e^ε⌉ + 1`.
    #[test]
    fn olh_structure(eps in 0.05f64..4.0, d in 1u32..512, v in 0u32..512, seed in 0u64..1000) {
        let v = v % d;
        let o = Olh::new(eps, d);
        prop_assert_eq!(o.hash_range(), (eps.exp().ceil() as u32) + 1);
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            match o.perturb(v, &mut rng) {
                Report::Olh { value, .. } => prop_assert!(value < o.hash_range()),
                other => prop_assert!(false, "wrong report {other:?}"),
            }
        }
    }

    /// OUE reports have exactly ⌈d/64⌉ words and no bits beyond the domain.
    #[test]
    fn oue_structure(eps in 0.1f64..4.0, d in 1u32..300, v in 0u32..300, seed in 0u64..1000) {
        let v = v % d;
        let o = Oue::new(eps, d);
        let mut rng = seeded_rng(seed);
        match o.perturb(v, &mut rng) {
            Report::Oue(words) => {
                prop_assert_eq!(words.len(), (d as usize).div_ceil(64));
                let tail_bits = d % 64;
                if tail_bits != 0 {
                    let mask = !((1u64 << tail_bits) - 1);
                    prop_assert_eq!(words.last().unwrap() & mask, 0,
                        "bits set beyond the domain");
                }
            }
            other => prop_assert!(false, "wrong report {other:?}"),
        }
    }

    /// GRR estimate vectors always sum to exactly 1 (an algebraic identity
    /// of the de-biasing), for any report multiset.
    #[test]
    fn grr_estimates_sum_to_one(
        eps in 0.1f64..4.0,
        d in 2u32..64,
        reports in proptest::collection::vec(0u32..64, 1..200),
    ) {
        let g = Grr::new(eps, d);
        let reports: Vec<Report> = reports.into_iter().map(|v| Report::Grr(v % d)).collect();
        let est = g.aggregate(&reports).unwrap();
        prop_assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// The streaming path (accumulate + estimate_from_counts) is exactly
    /// equivalent to batch aggregation.
    #[test]
    fn streaming_equals_batch(
        eps in 0.2f64..3.0,
        d in 2u32..64,
        n in 1usize..300,
        seed in 0u64..1000,
    ) {
        let o = Olh::new(eps, d);
        let mut rng = seeded_rng(seed);
        let reports: Vec<Report> = (0..n).map(|i| o.perturb(i as u32 % d, &mut rng)).collect();
        let batch = o.aggregate(&reports).unwrap();
        let mut counts = vec![0u64; d as usize];
        for r in &reports {
            o.accumulate(r, &mut counts).unwrap();
        }
        let streamed = o.estimate_from_counts(&counts, n);
        for (a, b) in batch.iter().zip(&streamed) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// `accumulate_batch` is byte-identical to folding `accumulate` one
    /// report at a time, for every oracle kind — including OLH's
    /// cache-blocked (and, on x86-64, SIMD-dispatched) batch kernel, whose
    /// whole correctness contract is exact equivalence to the scalar path.
    #[test]
    fn batch_accumulate_identical_to_scalar(
        eps in 0.2f64..3.0,
        d in 1u32..600,
        n in 0usize..120,
        seed in 0u64..1000,
    ) {
        let oracles: Vec<Box<dyn FrequencyOracle>> = vec![
            Box::new(Grr::new(eps, d)),
            Box::new(Olh::new(eps, d)),
            Box::new(Oue::new(eps, d)),
            Box::new(Sue::new(eps, d)),
        ];
        for o in &oracles {
            let mut rng = seeded_rng(seed);
            let reports: Vec<Report> =
                (0..n).map(|i| o.perturb(i as u32 % d, &mut rng)).collect();
            let mut scalar = vec![0u64; d as usize];
            for r in &reports {
                o.accumulate(r, &mut scalar).unwrap();
            }
            let mut batched = vec![0u64; d as usize];
            o.accumulate_batch(&reports, &mut batched).unwrap();
            prop_assert_eq!(&batched, &scalar, "oracle over d = {}", d);
        }
    }

    /// The OLH batch kernel stays exact across L1 block boundaries: domains
    /// wider than one 2048-value block exercise the multi-block tiling.
    #[test]
    fn olh_batch_exact_across_blocks(
        eps in 0.2f64..2.0,
        extra in 0u32..3000,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let d = 2048 + extra;
        let o = Olh::new(eps, d);
        let mut rng = seeded_rng(seed);
        let reports: Vec<Report> = (0..n).map(|i| o.perturb(i as u32 * 977 % d, &mut rng)).collect();
        let mut scalar = vec![0u64; d as usize];
        for r in &reports {
            o.accumulate(r, &mut scalar).unwrap();
        }
        let mut batched = vec![0u64; d as usize];
        o.accumulate_batch(&reports, &mut batched).unwrap();
        prop_assert_eq!(&batched, &scalar);
    }

    /// AFO picks the protocol with the smaller variance factor, and the
    /// crossover moves monotonically with ε.
    #[test]
    fn afo_picks_minimum(eps in 0.1f64..4.0, cells in 1u32..2048) {
        let grr = grr_variance_factor(eps, cells);
        let olh = olh_variance_factor(eps);
        let pick = choose_oracle(eps, cells);
        match pick {
            FoKind::Grr => prop_assert!(grr <= olh),
            FoKind::Olh => prop_assert!(olh < grr),
        }
        prop_assert!((afo_variance_factor(eps, cells) - grr.min(olh)).abs() < 1e-12);
    }

    /// Variance factors are positive and GRR's grows monotonically in the
    /// cell count.
    #[test]
    fn variance_monotone_in_cells(eps in 0.1f64..4.0, cells in 2u32..2048) {
        prop_assert!(olh_variance_factor(eps) > 0.0);
        prop_assert!(grr_variance_factor(eps, cells) > grr_variance_factor(eps, cells - 1));
    }
}
