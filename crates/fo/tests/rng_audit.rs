//! Seeded-RNG audit: every frequency oracle must be a pure function of
//! (parameters, value, RNG stream). Two collections driven by the same seed
//! are bit-identical — reports, counts, and estimates alike — and different
//! seeds actually consume the stream (the perturbations differ). This guards
//! the RNG-stream-preserving contract the batched ingestion paths rely on:
//! any refactor that reorders, drops, or adds RNG draws changes the reports
//! and fails these tests.

use felip_common::rng::seeded_rng;
use felip_fo::{FrequencyOracle, Grr, Olh, Oue, Report, SquareWave, Sue};

const DOMAIN: u32 = 64;
const USERS: usize = 2_000;
const EPSILON: f64 = 1.0;

/// Perturbs a fixed value stream under one seed and returns the reports.
fn collect(oracle: &dyn FrequencyOracle, seed: u64) -> Vec<Report> {
    let mut rng = seeded_rng(seed);
    (0..USERS)
        .map(|u| oracle.perturb((u as u32 * 7 + 3) % DOMAIN, &mut rng))
        .collect()
}

/// Same seed → bit-identical reports, support counts, and estimates;
/// different seeds → at least one report differs.
fn audit(oracle: &dyn FrequencyOracle, name: &str) {
    let a = collect(oracle, 42);
    let b = collect(oracle, 42);
    assert_eq!(a, b, "{name}: same seed must replay bit-identically");

    let mut counts_a = vec![0u64; DOMAIN as usize];
    let mut counts_b = vec![0u64; DOMAIN as usize];
    oracle.accumulate_batch(&a, &mut counts_a).unwrap();
    oracle.accumulate_batch(&b, &mut counts_b).unwrap();
    assert_eq!(counts_a, counts_b, "{name}: counts must match");

    let est_a = oracle.aggregate(&a).unwrap();
    let est_b = oracle.aggregate(&b).unwrap();
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&est_a),
        bits(&est_b),
        "{name}: estimates must be bit-identical"
    );

    let c = collect(oracle, 43);
    assert_ne!(
        a, c,
        "{name}: a different seed must produce different perturbations"
    );
}

#[test]
fn grr_rng_stream_is_reproducible() {
    audit(&Grr::new(EPSILON, DOMAIN), "GRR");
}

#[test]
fn olh_rng_stream_is_reproducible() {
    audit(&Olh::new(EPSILON, DOMAIN), "OLH");
}

#[test]
fn oue_rng_stream_is_reproducible() {
    audit(&Oue::new(EPSILON, DOMAIN), "OUE");
}

#[test]
fn sue_rng_stream_is_reproducible() {
    audit(&Sue::new(EPSILON, DOMAIN), "SUE");
}

/// Square Wave reports are raw `f64`s and its estimator is EM-based, so it
/// lives outside the `FrequencyOracle` trait — audit it directly.
#[test]
fn square_wave_rng_stream_is_reproducible() {
    let sw = SquareWave::new(EPSILON, DOMAIN);
    let collect = |seed: u64| {
        let mut rng = seeded_rng(seed);
        (0..USERS)
            .map(|u| sw.perturb((u as u32 * 7 + 3) % DOMAIN, &mut rng).to_bits())
            .collect::<Vec<u64>>()
    };
    let a = collect(42);
    let b = collect(42);
    assert_eq!(a, b, "SW: same seed must replay bit-identically");

    let to_f64 = |v: &[u64]| v.iter().map(|&x| f64::from_bits(x)).collect::<Vec<f64>>();
    let est_a = sw.estimate(&to_f64(&a), 256, 20);
    let est_b = sw.estimate(&to_f64(&b), 256, 20);
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&est_a), bits(&est_b), "SW: estimates must match");

    let c = collect(43);
    assert_ne!(a, c, "SW: a different seed must differ");
}
