//! The workspace's single human-diagnostics output path.
//!
//! Binaries route usage errors and progress notes through these helpers
//! instead of scattering `eprintln!` calls, so diagnostics have one
//! consistent shape and traces (stdout/JSONL) stay machine-parseable.
//! Every line is also teed into the [`crate::flight`] ring (kind `diag`,
//! message digest + length), so a postmortem dump shows which diagnostics
//! fired in the window leading up to a fault.

use std::io::Write;

use crate::flight;

/// Flight-event `code` for a plain [`line`].
const LEVEL_LINE: u16 = 0;
/// Flight-event `code` for an [`error`].
const LEVEL_ERROR: u16 = 1;
/// Flight-event `code` for a [`warn`].
const LEVEL_WARN: u16 = 2;

fn emit(level: u16, msg: &str) {
    flight::flight().record(
        flight::KIND_DIAG,
        level,
        flight::fnv1a(msg),
        msg.len() as u64,
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{msg}");
}

/// Writes one diagnostic line to stderr.
pub fn line(msg: &str) {
    emit(LEVEL_LINE, msg);
}

/// Writes a formatted error with an `error:` prefix.
pub fn error(msg: &str) {
    emit(LEVEL_ERROR, &format!("error: {msg}"));
}

/// Writes a formatted warning with a `warning:` prefix — for degraded-mode
/// events the process survives (a quarantined snapshot, a reaped idle
/// connection) that an operator should still see.
pub fn warn(msg: &str) {
    emit(LEVEL_WARN, &format!("warning: {msg}"));
}

/// Prints `msg` (typically usage text) and exits with status 2, the
/// conventional bad-invocation code.
pub fn usage_exit(msg: &str) -> ! {
    line(msg);
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    // `line`/`error` only append to stderr; there is nothing to assert
    // without capturing the process's own stderr. `usage_exit` terminates
    // the process and is covered by the CLI integration tests.
    #[test]
    fn diag_line_does_not_panic() {
        super::line("diag self-test");
        super::error("diag self-test");
        super::warn("diag self-test");
    }
}
