//! The workspace's single human-diagnostics output path.
//!
//! Binaries route usage errors and progress notes through these helpers
//! instead of scattering `eprintln!` calls, so diagnostics have one
//! consistent shape and traces (stdout/JSONL) stay machine-parseable.

use std::io::Write;

/// Writes one diagnostic line to stderr.
pub fn line(msg: &str) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{msg}");
}

/// Writes a formatted error with an `error:` prefix.
pub fn error(msg: &str) {
    line(&format!("error: {msg}"));
}

/// Writes a formatted warning with a `warning:` prefix — for degraded-mode
/// events the process survives (a quarantined snapshot, a reaped idle
/// connection) that an operator should still see.
pub fn warn(msg: &str) {
    line(&format!("warning: {msg}"));
}

/// Prints `msg` (typically usage text) and exits with status 2, the
/// conventional bad-invocation code.
pub fn usage_exit(msg: &str) -> ! {
    line(msg);
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    // `line`/`error` only append to stderr; there is nothing to assert
    // without capturing the process's own stderr. `usage_exit` terminates
    // the process and is covered by the CLI integration tests.
    #[test]
    fn diag_line_does_not_panic() {
        super::line("diag self-test");
        super::error("diag self-test");
        super::warn("diag self-test");
    }
}
