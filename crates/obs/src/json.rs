//! Minimal JSON serialization helpers for the JSONL trace exporter.
//!
//! Hand-rolled on purpose: the workspace vendors its dependencies, and the
//! trace format only needs objects, strings, integers, floats, bools and
//! null. `serde_json` (the vendored shim) is used in *tests* to prove the
//! output parses.

use crate::metrics::Value;

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite values have no JSON encoding
/// and are emitted as `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `format!` prints integral floats without a point; keep the type
        // visible to readers expecting a float field.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Appends a [`Value`] in its natural JSON form.
pub(crate) fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => push_f64(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => push_str(out, s),
    }
}

/// Appends a `"key":value` list (no surrounding braces) for a field set,
/// prefixing each pair with a comma. Used to extend an already-open object.
pub(crate) fn push_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    for (k, v) in fields {
        out.push(',');
        push_str(out, k);
        out.push(':');
        push_value(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut out = String::new();
        push_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
        out.clear();
        push_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn non_finite_floats_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
    }

    #[test]
    fn values_serialize_naturally() {
        let cases: Vec<(Value, &str)> = vec![
            (Value::U64(7), "7"),
            (Value::I64(-2), "-2"),
            (Value::Bool(true), "true"),
            (Value::Str("hi".into()), "\"hi\""),
        ];
        for (v, want) in cases {
            let mut out = String::new();
            push_value(&mut out, &v);
            assert_eq!(out, want);
        }
    }
}
