//! `felip-obs` — hand-rolled structured observability for the FELIP stack.
//!
//! Three primitives, all behind one [`Recorder`]:
//!
//! * **Spans** — RAII wall-clock timers ([`Recorder::span`], the [`span!`]
//!   macro) that nest via a thread-local stack and support explicit
//!   cross-thread parenting ([`Recorder::span_child`]) for work fanned out
//!   over rayon shards.
//! * **Metrics** — typed counters, gauges and histograms. Counters are
//!   sharded over cache-padded atomic cells and touched with one relaxed
//!   `fetch_add` on the hot path; registration (the only locking step)
//!   happens once per call site and is cached in a static [`CallsiteId`].
//! * **Export** — a JSON-lines trace ([`Recorder::export_jsonl`]) written
//!   with the crate's own serializer (no external dependencies, consistent
//!   with the workspace's vendored-shim policy) plus an in-process summary
//!   table ([`Recorder::summary_table`]) for humans.
//!
//! The recorder is **disabled by default**: every recording entry point is
//! gated on one relaxed atomic load, so an un-enabled binary pays a few
//! cycles per instrumentation site. Compiling with the `noop` feature
//! removes even that: all entry points become empty inline functions and
//! the guards are zero-sized, so instrumented code is bit-identical to
//! un-instrumented code.
//!
//! Most call sites use the process-global recorder through the macros:
//!
//! ```
//! felip_obs::enable();
//! {
//!     let _outer = felip_obs::span!("collect");
//!     felip_obs::counter!("reports.ingested", 128, "reports");
//!     let _inner = felip_obs::span!("ingest");
//! } // guards close the spans in reverse order
//! let mut out = Vec::new();
//! felip_obs::global().export_jsonl(&mut out).unwrap();
//! felip_obs::disable();
//! ```

#![forbid(unsafe_code)]

mod json;
mod metrics;
mod snapshot;
mod span;
mod summary;

pub mod diag;
pub mod flight;
pub mod jsonread;

pub use metrics::{CallsiteId, HistogramSnapshot, MetricKind, MetricSnapshot, MetricValue, Value};
pub use snapshot::{render_metrics_table, MetricsSnapshot, METRICS_SNAPSHOT_VERSION};
pub use span::{EventRecord, SpanGuard, SpanRecord, SpanTotal};
pub use summary::{summarize_jsonl, StageTotal, TraceSummary};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// `true` when the crate was compiled with the `noop` feature: every
/// recording entry point constant-folds to nothing.
pub const COMPILED_OUT: bool = cfg!(feature = "noop");

/// The observability recorder: metric storage, span/event logs, and the
/// enabled switch. One process-global instance serves the macros; tests
/// construct private instances to stay isolated.
pub struct Recorder {
    enabled: AtomicBool,
    /// Epoch all span/event timestamps are relative to.
    epoch: Instant,
    pub(crate) metrics: metrics::MetricStore,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) events: Mutex<Vec<EventRecord>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            metrics: metrics::MetricStore::new(),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Turns recording on or off. Off is the default; every recording call
    /// on a disabled recorder is one relaxed load and a branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether the recorder currently records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !COMPILED_OUT && self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Clears recorded spans, events and metric *values* (metric
    /// registrations survive — call-site caches stay valid).
    pub fn reset(&self) {
        self.spans.lock().expect("span log poisoned").clear();
        self.events.lock().expect("event log poisoned").clear();
        self.metrics.reset_values();
        span::reset_thread_stack();
    }

    /// Completed spans, in completion order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span log poisoned").clone()
    }

    /// Recorded point events, in recording order.
    pub fn finished_events(&self) -> Vec<EventRecord> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// A merged snapshot of every registered metric.
    pub fn metric_snapshots(&self) -> Vec<MetricSnapshot> {
        self.metrics.snapshots()
    }

    /// The snapshot of one metric by name, if registered.
    pub fn metric(&self, name: &str) -> Option<MetricSnapshot> {
        self.metric_snapshots().into_iter().find(|m| m.name == name)
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder the macros target.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Enables the process-global recorder.
pub fn enable() {
    global().set_enabled(true);
}

/// Disables the process-global recorder.
pub fn disable() {
    global().set_enabled(false);
}

/// Opens a span on the global recorder. Expands through a static
/// [`CallsiteId`]-free path (spans are not hot enough to need one).
///
/// Bind the result — `let _span = span!("stage");` — so the guard lives to
/// the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

/// Adds to a named counter on the global recorder. The metric id is
/// resolved once per call site and cached in a static, so the steady-state
/// cost is one relaxed load, one shard pick and one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::counter!($name, $n, "")
    };
    ($name:expr, $n:expr, $unit:expr) => {{
        static __CS: $crate::CallsiteId =
            $crate::CallsiteId::new($name, $crate::MetricKind::Counter, $unit);
        $crate::global().counter_add(&__CS, $n as u64);
    }};
}

/// Stores the latest value of a named gauge (last write wins).
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge!($name, $v, "")
    };
    ($name:expr, $v:expr, $unit:expr) => {{
        static __CS: $crate::CallsiteId =
            $crate::CallsiteId::new($name, $crate::MetricKind::Gauge, $unit);
        $crate::global().gauge_set(&__CS, $v as u64);
    }};
}

/// Stores the latest value of a named floating-point gauge.
#[macro_export]
macro_rules! gauge_f64 {
    ($name:expr, $v:expr) => {
        $crate::gauge_f64!($name, $v, "")
    };
    ($name:expr, $v:expr, $unit:expr) => {{
        static __CS: $crate::CallsiteId =
            $crate::CallsiteId::new($name, $crate::MetricKind::GaugeF64, $unit);
        $crate::global().gauge_set(&__CS, f64::to_bits($v as f64));
    }};
}

/// Records one observation into a named histogram (power-of-two buckets;
/// tracks count/sum/min/max and serves percentile estimates).
#[macro_export]
macro_rules! hist {
    ($name:expr, $v:expr) => {
        $crate::hist!($name, $v, "")
    };
    ($name:expr, $v:expr, $unit:expr) => {{
        static __CS: $crate::CallsiteId =
            $crate::CallsiteId::new($name, $crate::MetricKind::Histogram, $unit);
        $crate::global().hist_record(&__CS, $v as u64);
    }};
}

/// Records a point event with fields on the global recorder.
///
/// Events are for low-frequency, high-cardinality facts (one per grid, not
/// one per report): each call allocates its field list.
pub fn event(name: &'static str, fields: &[(&'static str, Value)]) {
    global().event(name, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_recorder_starts_disabled() {
        // Do not enable here: other tests share the process global; the
        // lookup just must not panic (it may or may not find metrics other
        // tests recorded).
        let _ = global().metric("no.such.metric");
        assert!(!Recorder::new().is_enabled());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new();
        {
            let _s = rec.span("quiet");
            rec.event("e", &[]);
        }
        assert!(rec.finished_spans().is_empty());
        assert!(rec.finished_events().is_empty());
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_build_ignores_enable() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        assert!(!rec.is_enabled());
        drop(rec.span("s"));
        rec.event("e", &[]);
        assert!(rec.finished_spans().is_empty());
        assert!(rec.finished_events().is_empty());
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn reset_clears_logs_but_keeps_registrations() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("reset.counter", MetricKind::Counter, "");
        rec.counter_add(&CS, 3);
        drop(rec.span("s"));
        rec.reset();
        assert!(rec.finished_spans().is_empty());
        let m = rec.metric("reset.counter").expect("still registered");
        assert_eq!(m.value, MetricValue::Counter(0));
    }
}
