//! Trace export (JSON lines) and the human-readable summary table.
//!
//! JSONL record shapes, one object per line, discriminated by `"t"`:
//!
//! * `{"t":"meta","version":1,"compiled_out":bool}` — first line.
//! * `{"t":"span","id":N,"parent":N|null,"name":"...","thread":"...",
//!   "start_ns":N,"dur_ns":N, ...fields}` — sorted by `start_ns`.
//! * `{"t":"event","name":"...","t_ns":N, ...fields}`
//! * `{"t":"metric","name":"...","kind":"counter|gauge|histogram",
//!   "unit":"...", value...}` where `value...` is `"value":N` for
//!   counters/gauges and `"count"/"sum"/"min"/"max"/"mean"/"p50"/"p90"/
//!   "p99"` for histograms.

use std::io::{self, Write};

use crate::json;
use crate::metrics::MetricValue;
use crate::Recorder;

/// JSONL schema version, bumped on incompatible shape changes.
const TRACE_VERSION: u64 = 1;

impl Recorder {
    /// Writes the full trace — meta line, spans (by start time), events,
    /// metric snapshots — as JSON lines.
    pub fn export_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        let mut line = String::new();

        line.push_str("{\"t\":\"meta\",\"version\":");
        line.push_str(&TRACE_VERSION.to_string());
        line.push_str(",\"compiled_out\":");
        line.push_str(if crate::COMPILED_OUT { "true" } else { "false" });
        line.push_str("}\n");
        out.write_all(line.as_bytes())?;

        let mut spans = self.finished_spans();
        spans.sort_by_key(|s| s.start_ns);
        for s in &spans {
            line.clear();
            line.push_str("{\"t\":\"span\",\"id\":");
            line.push_str(&s.id.to_string());
            line.push_str(",\"parent\":");
            match s.parent {
                Some(p) => line.push_str(&p.to_string()),
                None => line.push_str("null"),
            }
            line.push_str(",\"name\":");
            json::push_str(&mut line, s.name);
            line.push_str(",\"thread\":");
            json::push_str(&mut line, &s.thread);
            line.push_str(",\"start_ns\":");
            line.push_str(&s.start_ns.to_string());
            line.push_str(",\"dur_ns\":");
            line.push_str(&s.dur_ns.to_string());
            json::push_fields(&mut line, &s.fields);
            line.push_str("}\n");
            out.write_all(line.as_bytes())?;
        }

        for e in &self.finished_events() {
            line.clear();
            line.push_str("{\"t\":\"event\",\"name\":");
            json::push_str(&mut line, e.name);
            line.push_str(",\"t_ns\":");
            line.push_str(&e.t_ns.to_string());
            json::push_fields(&mut line, &e.fields);
            line.push_str("}\n");
            out.write_all(line.as_bytes())?;
        }

        for m in &self.metric_snapshots() {
            line.clear();
            line.push_str("{\"t\":\"metric\",\"name\":");
            json::push_str(&mut line, m.name);
            line.push_str(",\"kind\":");
            json::push_str(&mut line, m.kind.as_str());
            line.push_str(",\"unit\":");
            json::push_str(&mut line, m.unit);
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    line.push_str(",\"value\":");
                    line.push_str(&v.to_string());
                }
                MetricValue::GaugeF64(v) => {
                    line.push_str(",\"value\":");
                    json::push_f64(&mut line, *v);
                }
                MetricValue::Histogram(h) => {
                    line.push_str(",\"count\":");
                    line.push_str(&h.count.to_string());
                    line.push_str(",\"sum\":");
                    line.push_str(&h.sum.to_string());
                    line.push_str(",\"min\":");
                    line.push_str(&h.min.to_string());
                    line.push_str(",\"max\":");
                    line.push_str(&h.max.to_string());
                    line.push_str(",\"mean\":");
                    json::push_f64(&mut line, h.mean());
                    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)]
                    {
                        line.push_str(",\"");
                        line.push_str(label);
                        line.push_str("\":");
                        json::push_f64(&mut line, h.percentile(p));
                    }
                }
            }
            line.push_str("}\n");
            out.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Renders stage timings and metric values as an aligned text table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let totals = self.span_totals();
        if !totals.is_empty() {
            out.push_str("stage timings\n");
            out.push_str(&format!(
                "  {:<24} {:>7} {:>12} {:>12}\n",
                "span", "count", "total", "max"
            ));
            for t in &totals {
                out.push_str(&format!(
                    "  {:<24} {:>7} {:>12} {:>12}\n",
                    t.name,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.max_ns)
                ));
            }
        }
        let metrics = self.metric_snapshots();
        let mut wrote_header = false;
        for m in &metrics {
            let rendered = match &m.value {
                MetricValue::Counter(0) | MetricValue::Gauge(0) => continue,
                MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
                MetricValue::GaugeF64(v) if *v == 0.0 => continue,
                MetricValue::GaugeF64(v) => format!("{v:.6}"),
                MetricValue::Histogram(h) if h.count == 0 => continue,
                MetricValue::Histogram(h) => format!(
                    "n={} mean={:.1} p50={:.0} p99={:.0} p999={:.0} max={}",
                    h.count,
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(99.0),
                    h.percentile(99.9),
                    h.max
                ),
            };
            if !wrote_header {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str("metrics\n");
                wrote_header = true;
            }
            let unit = if m.unit.is_empty() {
                String::new()
            } else {
                format!(" {}", m.unit)
            };
            out.push_str(&format!("  {:<40} {}{}\n", m.name, rendered, unit));
        }
        if out.is_empty() {
            out.push_str("(no observability data recorded)\n");
        }
        out
    }
}

/// Per-span-name totals recovered from a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// Span name.
    pub name: String,
    /// How many spans carried that name.
    pub count: u64,
    /// Sum of their durations.
    pub total_ns: u64,
    /// The slowest single span.
    pub max_ns: u64,
}

/// What a JSONL trace contained, after tolerant line-by-line parsing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Schema version from the `meta` line, when one parsed.
    pub version: Option<u64>,
    /// Parsed `span` records.
    pub spans: u64,
    /// Parsed `event` records.
    pub events: u64,
    /// Parsed `metric` records.
    pub metrics: u64,
    /// Lines that were not valid JSONL records and were skipped.
    pub bad_lines: u64,
    /// Stage timings aggregated by span name, heaviest first.
    pub stages: Vec<StageTotal>,
}

impl TraceSummary {
    /// Renders the summary in the same shape as [`Recorder::summary_table`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} spans, {} events, {} metrics",
            self.spans, self.events, self.metrics
        ));
        if self.bad_lines > 0 {
            out.push_str(&format!(" ({} malformed lines skipped)", self.bad_lines));
        }
        out.push('\n');
        if !self.stages.is_empty() {
            out.push_str("stage timings\n");
            out.push_str(&format!(
                "  {:<24} {:>7} {:>12} {:>12}\n",
                "span", "count", "total", "max"
            ));
            for t in &self.stages {
                out.push_str(&format!(
                    "  {:<24} {:>7} {:>12} {:>12}\n",
                    t.name,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.max_ns)
                ));
            }
        }
        out
    }
}

/// How many skipped lines get an individual diagnostic before the rest are
/// folded into the final count (a truncated multi-megabyte trace should not
/// produce a megabyte of warnings).
const MAX_BAD_LINE_WARNINGS: u64 = 5;

/// Reads a JSONL trace tolerantly: every line that parses as a known record
/// contributes to the summary, and every line that does not — malformed
/// JSON, a non-object, an unknown record type, or the torn final line of a
/// trace whose process was killed mid-write — is skipped with a
/// [`crate::diag`] warning and counted in the `obs.summary.bad_lines`
/// counter, never a panic.
pub fn summarize_jsonl(text: &str) -> TraceSummary {
    let mut summary = TraceSummary::default();
    let mut stages: Vec<StageTotal> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match crate::jsonread::parse(line) {
            Ok(v) if v.get("t").and_then(|t| t.as_str()).is_some() => v,
            Ok(_) => {
                skip_line(&mut summary, lineno, "not a trace record (no \"t\" tag)");
                continue;
            }
            Err(e) => {
                skip_line(&mut summary, lineno, &e.to_string());
                continue;
            }
        };
        match record.get("t").and_then(|t| t.as_str()).expect("checked") {
            "meta" => {
                summary.version = record.get("version").and_then(|v| v.as_u64());
            }
            "span" => {
                summary.spans += 1;
                let name = record
                    .get("name")
                    .and_then(|n| n.as_str())
                    .unwrap_or("(unnamed)");
                let dur = record.get("dur_ns").and_then(|d| d.as_u64()).unwrap_or(0);
                match stages.iter_mut().find(|s| s.name == name) {
                    Some(s) => {
                        s.count += 1;
                        s.total_ns += dur;
                        s.max_ns = s.max_ns.max(dur);
                    }
                    None => stages.push(StageTotal {
                        name: name.to_string(),
                        count: 1,
                        total_ns: dur,
                        max_ns: dur,
                    }),
                }
            }
            "event" => summary.events += 1,
            "metric" => summary.metrics += 1,
            other => {
                let reason = format!("unknown record type {other:?}");
                skip_line(&mut summary, lineno, &reason);
            }
        }
    }

    if summary.bad_lines > MAX_BAD_LINE_WARNINGS {
        crate::diag::line(&format!(
            "obs summary: skipped {} malformed lines in total",
            summary.bad_lines
        ));
    }
    stages.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    summary.stages = stages;
    summary
}

fn skip_line(summary: &mut TraceSummary, lineno: usize, reason: &str) {
    summary.bad_lines += 1;
    crate::counter!("obs.summary.bad_lines", 1, "lines");
    if summary.bad_lines <= MAX_BAD_LINE_WARNINGS {
        crate::diag::line(&format!(
            "obs summary: skipping malformed line {}: {reason}",
            lineno + 1
        ));
    }
}

/// Nanoseconds as a human-scaled duration.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::metrics::{CallsiteId, MetricKind};
    use crate::Value;

    fn populated_recorder() -> Recorder {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let mut outer = rec.span("simulate");
            outer.field("grids", 4u64);
            let _inner = rec.span("collect");
            rec.event(
                "plan.grid",
                &[
                    ("grid", Value::Str("0x1".into())),
                    ("cells", Value::U64(64)),
                ],
            );
        }
        static C: CallsiteId = CallsiteId::new("export.reports", MetricKind::Counter, "reports");
        static G: CallsiteId = CallsiteId::new("export.residual", MetricKind::GaugeF64, "");
        static H: CallsiteId = CallsiteId::new("export.sweeps", MetricKind::Histogram, "sweeps");
        rec.counter_add(&C, 41);
        rec.gauge_set(&G, f64::to_bits(0.5));
        for v in [3u64, 4, 5] {
            rec.hist_record(&H, v);
        }
        rec
    }

    #[test]
    fn jsonl_round_trips_through_serde_json() {
        let rec = populated_recorder();
        let mut buf = Vec::new();
        rec.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 1 + 2 + 1 + 3,
            "unexpectedly few lines:\n{text}"
        );

        let mut kinds = Vec::new();
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
            assert!(v.as_object().is_some(), "each line is an object");
            kinds.push(v["t"].as_str().unwrap().to_string());
        }
        assert_eq!(kinds[0], "meta");
        assert!(kinds.iter().any(|k| k == "span"));
        assert!(kinds.iter().any(|k| k == "event"));
        assert!(kinds.iter().any(|k| k == "metric"));
    }

    #[test]
    fn jsonl_span_parenting_and_fields_survive() {
        let rec = populated_recorder();
        let mut buf = Vec::new();
        rec.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        let spans: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["t"] == "span")
            .collect();
        let outer = spans.iter().find(|s| s["name"] == "simulate").unwrap();
        let inner = spans.iter().find(|s| s["name"] == "collect").unwrap();
        assert!(outer["parent"].is_null());
        assert_eq!(inner["parent"], outer["id"]);
        assert_eq!(outer["grids"], 4);
        // Spans are sorted by start time: outer starts first.
        assert!(outer["start_ns"].as_u64().unwrap() <= inner["start_ns"].as_u64().unwrap());
    }

    #[test]
    fn jsonl_metrics_carry_units_and_histogram_stats() {
        let rec = populated_recorder();
        let mut buf = Vec::new();
        rec.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        let metrics: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v["t"] == "metric")
            .collect();
        let c = metrics
            .iter()
            .find(|m| m["name"] == "export.reports")
            .unwrap();
        assert_eq!(c["kind"], "counter");
        assert_eq!(c["unit"], "reports");
        assert_eq!(c["value"], 41);
        let h = metrics
            .iter()
            .find(|m| m["name"] == "export.sweeps")
            .unwrap();
        assert_eq!(h["count"], 3);
        assert_eq!(h["sum"], 12);
        assert_eq!(h["min"], 3);
        assert_eq!(h["max"], 5);
        assert!(h["mean"].as_f64().unwrap() > 3.9 && h["mean"].as_f64().unwrap() < 4.1);
        assert!(h["p99"].as_f64().unwrap() <= 5.0);
    }

    #[test]
    fn summary_table_lists_stages_and_metrics() {
        let rec = populated_recorder();
        let table = rec.summary_table();
        assert!(table.contains("simulate"), "{table}");
        assert!(table.contains("collect"), "{table}");
        assert!(table.contains("export.reports"), "{table}");
        assert!(table.contains("41"), "{table}");
    }

    #[test]
    fn empty_recorder_summary_says_so() {
        let rec = Recorder::new();
        assert!(rec.summary_table().contains("no observability data"));
    }

    #[test]
    fn summarize_round_trips_an_export() {
        let rec = populated_recorder();
        let mut buf = Vec::new();
        rec.export_jsonl(&mut buf).unwrap();
        let s = summarize_jsonl(&String::from_utf8(buf).unwrap());
        assert_eq!(s.version, Some(super::TRACE_VERSION));
        assert_eq!(s.spans, 2);
        assert_eq!(s.events, 1);
        // The metric registry is process-wide, so other tests' callsites
        // may also appear in the export.
        assert!(s.metrics >= 3, "{s:?}");
        assert_eq!(s.bad_lines, 0);
        assert!(s.stages.iter().any(|t| t.name == "simulate"));
        let rendered = s.render();
        assert!(rendered.contains("simulate"), "{rendered}");
        assert!(!rendered.contains("malformed"), "{rendered}");
    }

    #[test]
    fn summarize_skips_malformed_lines_without_panicking() {
        // A trace whose process was killed mid-write: valid lines, garbage,
        // a record with no tag, an unknown tag, and a torn final line.
        let rec = populated_recorder();
        let mut buf = Vec::new();
        rec.export_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        let torn = "{\"t\":\"span\",\"id\":99,\"name\":\"tor";
        text = format!(
            "not json at all\n{text}{}\n{}\n\n{torn}",
            "{\"value\":3}", "{\"t\":\"mystery\"}"
        );

        let s = summarize_jsonl(&text);
        assert_eq!(s.spans, 2, "valid records still counted");
        assert_eq!(s.events, 1);
        assert!(s.metrics >= 3, "{s:?}");
        assert_eq!(s.bad_lines, 4, "garbage + untagged + unknown + torn");
        assert!(s.render().contains("4 malformed lines skipped"));
    }

    #[test]
    fn summarize_counts_skipped_lines_in_the_bad_lines_metric() {
        let rec = crate::global();
        let was_enabled = rec.is_enabled();
        rec.set_enabled(true);
        let before = bad_lines_total(rec);
        let _ = summarize_jsonl("garbage one\ngarbage two\n");
        let after = bad_lines_total(rec);
        rec.set_enabled(was_enabled);
        assert_eq!(after - before, 2);
    }

    fn bad_lines_total(rec: &Recorder) -> u64 {
        rec.metric_snapshots()
            .iter()
            .find(|m| m.name == "obs.summary.bad_lines")
            .and_then(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
