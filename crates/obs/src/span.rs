//! Hierarchical span timers and point events.
//!
//! A span is opened with [`Recorder::span`] and closed by dropping the
//! returned [`SpanGuard`]. Nesting is tracked per thread: a span opened
//! while another is live on the same thread records it as its parent. Work
//! fanned out to other threads (rayon shards) keeps the hierarchy via
//! [`Recorder::span_child`], which takes the parent id explicitly —
//! [`SpanGuard::id`] hands it out for capture by worker closures.
//!
//! Completed spans are appended to the recorder's span log under a mutex;
//! spans mark *stages*, not per-report work, so the log is touched a
//! handful of times per pipeline run.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Value;
use crate::Recorder;

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage name.
    pub name: &'static str,
    /// Thread the span ran on.
    pub thread: String,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Attached fields.
    pub fields: Vec<(&'static str, Value)>,
}

/// A recorded point event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Timestamp, nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// Attached fields.
    pub fields: Vec<(&'static str, Value)>,
}

/// Aggregated per-stage timing (see [`Recorder::span_totals`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    /// Stage name.
    pub name: &'static str,
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently live on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Clears this thread's span stack (used by [`Recorder::reset`] so a
/// leaked guard from a failed test cannot corrupt later nesting).
pub(crate) fn reset_thread_stack() {
    SPAN_STACK.with(|s| s.borrow_mut().clear());
}

/// RAII guard for a live span; records on drop. Inert (and nearly free)
/// when the recorder is disabled.
pub struct SpanGuard<'r> {
    /// `None` ⇔ the recorder was disabled at open time.
    rec: Option<&'r Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, Value)>,
}

impl<'r> SpanGuard<'r> {
    /// The span's id, for explicit parenting across threads. `None` when
    /// the recorder is disabled.
    pub fn id(&self) -> Option<u64> {
        self.rec.map(|_| self.id)
    }

    /// Attaches a field to the span (recorded at close).
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.rec.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else {
            return;
        };
        let dur_ns = rec.now_ns().saturating_sub(self.start_ns);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span; tolerates guards
            // dropped out of order after a panic unwound past children.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.truncate(pos);
            }
        });
        rec.spans
            .lock()
            .expect("span log poisoned")
            .push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                thread: thread_label(),
                start_ns: self.start_ns,
                dur_ns,
                fields: std::mem::take(&mut self.fields),
            });
    }
}

fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", t.id()),
    }
}

impl Recorder {
    /// Opens a span named `name`, parented to the innermost span live on
    /// this thread (if any).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let parent = if self.is_enabled() {
            SPAN_STACK.with(|s| s.borrow().last().copied())
        } else {
            None
        };
        self.open(name, parent)
    }

    /// Opens a span with an explicit parent id — the cross-thread form for
    /// work fanned out to shards (`parent` captured from
    /// [`SpanGuard::id`] on the coordinating thread).
    pub fn span_child(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        self.open(name, parent)
    }

    fn open(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                rec: None,
                id: 0,
                parent: None,
                name,
                start_ns: 0,
                fields: Vec::new(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            rec: Some(self),
            id,
            parent,
            name,
            start_ns: self.now_ns(),
            fields: Vec::new(),
        }
    }

    /// Records a point event with fields; a no-op while disabled.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        if !self.is_enabled() {
            return;
        }
        let record = EventRecord {
            name,
            t_ns: self.now_ns(),
            fields: fields.to_vec(),
        };
        self.events.lock().expect("event log poisoned").push(record);
    }

    /// Per-stage aggregates over all completed spans, ordered by summed
    /// duration (longest first).
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let mut totals: Vec<SpanTotal> = Vec::new();
        for s in self.spans.lock().expect("span log poisoned").iter() {
            match totals.iter_mut().find(|t| t.name == s.name) {
                Some(t) => {
                    t.count += 1;
                    t.total_ns += s.dur_ns;
                    t.max_ns = t.max_ns.max(s.dur_ns);
                }
                None => totals.push(SpanTotal {
                    name: s.name,
                    count: 1,
                    total_ns: s.dur_ns,
                    max_ns: s.dur_ns,
                }),
            }
        }
        totals.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        totals
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let outer = rec.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = rec.span("inner");
                assert_eq!(inner.parent, Some(outer_id));
                let leaf = rec.span("leaf");
                assert_eq!(leaf.parent, inner.id());
            }
            let sibling = rec.span("sibling");
            assert_eq!(sibling.parent, Some(outer_id));
        }
        let spans = rec.finished_spans();
        // Completion order: innermost first.
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["leaf", "inner", "sibling", "outer"]);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, None);
        for s in &spans {
            assert!(s.start_ns <= outer.start_ns + outer.dur_ns + 1);
        }
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let parent_id;
        {
            let parent = rec.span("collect");
            parent_id = parent.id();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let child = rec.span_child("ingest", parent_id);
                    assert_eq!(child.parent, parent_id);
                });
            });
        }
        let spans = rec.finished_spans();
        let ingest = spans.iter().find(|s| s.name == "ingest").unwrap();
        assert_eq!(ingest.parent, parent_id);
        assert_ne!(
            ingest.thread,
            spans.iter().find(|s| s.name == "collect").unwrap().thread
        );
    }

    #[test]
    fn fields_are_recorded() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let mut s = rec.span("stage");
            s.field("iterations", 12u64);
            s.field("kind", "OLH");
        }
        let spans = rec.finished_spans();
        assert_eq!(spans[0].fields.len(), 2);
        assert_eq!(spans[0].fields[0], ("iterations", Value::U64(12)));
        assert_eq!(spans[0].fields[1], ("kind", Value::Str("OLH".into())));
    }

    #[test]
    fn events_carry_timestamp_and_fields() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.event(
            "afo.choice",
            &[("grid", Value::U64(3)), ("fo", Value::Str("GRR".into()))],
        );
        let events = rec.finished_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "afo.choice");
        assert_eq!(events[0].fields[0].0, "grid");
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        for _ in 0..3 {
            drop(rec.span("repeated"));
        }
        drop(rec.span("once"));
        let totals = rec.span_totals();
        let rep = totals.iter().find(|t| t.name == "repeated").unwrap();
        assert_eq!(rep.count, 3);
        assert!(rep.total_ns >= rep.max_ns);
        assert_eq!(totals.iter().find(|t| t.name == "once").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let rec = Recorder::new();
        {
            let mut s = rec.span("quiet");
            assert_eq!(s.id(), None);
            s.field("dropped", 1u64);
        }
        assert!(rec.finished_spans().is_empty());
    }
}
