//! Always-on flight recorder: a fixed-size lock-free ring of recent
//! protocol events, dumped to a postmortem JSONL on panic, shutdown,
//! quarantine, or on demand (the STAT admin verb).
//!
//! The ring is a seqlock over plain atomics (no unsafe): a writer claims a
//! monotonically increasing logical index, marks the slot in-progress with
//! an odd generation stamp, stores the event fields, then commits with the
//! even stamp for that generation. A reader accepts a slot only when the
//! committed stamp for the exact generation it expects is stable across
//! the field reads, so a dump taken while writers race never yields a torn
//! event — at worst it omits the handful of slots being overwritten at
//! that instant. In the single-threaded deterministic harness every slot
//! is committed, so a dump reconstructs the last-N window exactly.
//!
//! Events are deliberately tiny and fixed-shape (`kind`, `code`, two `u64`
//! payload words): recording is a handful of relaxed stores, cheap enough
//! to leave on for every frame the server touches.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// Event kind: a protocol frame was processed (`code` = frame kind byte,
/// `a` = client id or connection token, `b` = payload length).
pub const KIND_FRAME: u8 = 0;
/// Event kind: a protocol or I/O error (`code` = error class, `a`/`b`
/// site-specific).
pub const KIND_ERROR: u8 = 1;
/// Event kind: an injected fault fired (`code` = fault discriminant).
pub const KIND_FAULT: u8 = 2;
/// Event kind: a diagnostic line crossed [`crate::diag`] (`code` = level,
/// `a` = FNV-1a hash of the message, `b` = message length).
pub const KIND_DIAG: u8 = 3;
/// Event kind: connection lifecycle (`code`: 0 open, 1 close, 2 reset).
pub const KIND_CONN: u8 = 4;
/// Event kind: snapshot lifecycle (`code`: 0 written, 1 quarantined).
pub const KIND_SNAPSHOT: u8 = 5;

/// The JSONL label for an event kind byte.
pub fn kind_str(kind: u8) -> &'static str {
    match kind {
        KIND_FRAME => "frame",
        KIND_ERROR => "error",
        KIND_FAULT => "fault",
        KIND_DIAG => "diag",
        KIND_CONN => "conn",
        KIND_SNAPSHOT => "snapshot",
        _ => "other",
    }
}

/// One recorded flight event, as read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (0 in deterministic mode).
    pub t_ns: u64,
    /// Event kind (`KIND_*`).
    pub kind: u8,
    /// Kind-specific discriminant (frame kind, error class, fault id, …).
    pub code: u16,
    /// First payload word (typically a client or connection id).
    pub a: u64,
    /// Second payload word (typically a length or detail hash).
    pub b: u64,
}

/// One ring slot. `stamp` is the seqlock generation: `2·i + 1` while
/// logical write `i` is in progress, `2·i + 2` once committed.
struct Slot {
    stamp: AtomicU64,
    t_ns: AtomicU64,
    /// `kind` in the low byte, `code` in the next two bytes.
    kc: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kc: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// What [`FlightRecorder::dump`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Total events ever recorded (including overwritten ones).
    pub total: u64,
    /// Events that fell off the ring before this dump.
    pub dropped: u64,
    /// The surviving window, in sequence order.
    pub events: Vec<FlightEvent>,
}

/// Fixed-size lock-free ring of recent [`FlightEvent`]s.
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Vec<Slot>,
    /// `None` puts the recorder in deterministic mode: every event gets
    /// `t_ns == 0`, so dumps are bit-identical across runs of the same
    /// seed (the chaos harness's requirement).
    epoch: Option<Instant>,
}

impl FlightRecorder {
    /// A wall-clock ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            epoch: Some(Instant::now()),
        }
    }

    /// A deterministic ring: timestamps are always zero, so a dump is a
    /// pure function of the recorded event sequence.
    pub fn deterministic(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            epoch: None,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded so far (monotonic, includes overwritten).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event. Lock-free: a claim `fetch_add`, a slot-claim
    /// `compare_exchange`, and five stores.
    pub fn record(&self, kind: u8, code: u16, a: u64, b: u64) {
        let t_ns = match &self.epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => 0,
        };
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Seqlock write, CAS-claimed: the slot is taken by swinging its
        // stamp from the even (quiescent) generation it last held to this
        // generation's odd in-progress mark. A failed claim means another
        // writer is mid-write in this slot or a newer generation already
        // landed; either way this event is dropped (it still counts in
        // `FlightDump::dropped` via `head`). Storing the fields anyway
        // would be unsound: an older writer's blind stamp store can land
        // *between* a newer writer's stamp and field stores, presenting a
        // committed stamp over foreign fields — a tear the reader's
        // double-check cannot see, because the check only catches writers
        // that touch the stamp before the fields. The CAS makes stamps
        // monotonic per slot, so a committed stamp proves the fields
        // belong to exactly that generation (model-checked in
        // felip-server's `model_flight_ring_*` tests).
        let claimed = 2 * i + 1;
        let cur = slot.stamp.load(Ordering::SeqCst);
        if cur % 2 == 1
            || cur > claimed
            || slot
                .stamp
                .compare_exchange(cur, claimed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            return;
        }
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kc
            .store(kind as u64 | ((code as u64) << 8), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(2 * i + 2, Ordering::SeqCst);
    }

    /// Reconstructs the surviving event window, oldest first. Events whose
    /// slot is mid-overwrite at the instant of the dump are skipped (they
    /// are accounted for in `dropped`); a quiesced ring yields the exact
    /// last-N sequence.
    pub fn dump(&self) -> FlightDump {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            let committed = 2 * i + 2;
            if slot.stamp.load(Ordering::SeqCst) != committed {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::SeqCst);
            let kc = slot.kc.load(Ordering::SeqCst);
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            if slot.stamp.load(Ordering::SeqCst) != committed {
                continue;
            }
            events.push(FlightEvent {
                seq: i,
                t_ns,
                kind: (kc & 0xff) as u8,
                code: ((kc >> 8) & 0xffff) as u16,
                a,
                b,
            });
        }
        FlightDump {
            total: head,
            dropped: head - events.len() as u64,
            events,
        }
    }

    /// Serializes a dump as JSON lines: one `flight` meta line, then one
    /// `flight.event` line per surviving event.
    pub fn dump_jsonl(&self, out: &mut dyn Write, reason: &str) -> io::Result<()> {
        let dump = self.dump();
        let mut line = String::with_capacity(128);
        line.push_str("{\"t\":\"flight\",\"version\":1,\"reason\":");
        json::push_str(&mut line, reason);
        line.push_str(",\"total\":");
        line.push_str(&dump.total.to_string());
        line.push_str(",\"dropped\":");
        line.push_str(&dump.dropped.to_string());
        line.push_str(",\"events\":");
        line.push_str(&dump.events.len().to_string());
        line.push_str("}\n");
        out.write_all(line.as_bytes())?;
        for ev in &dump.events {
            line.clear();
            line.push_str("{\"t\":\"flight.event\",\"seq\":");
            line.push_str(&ev.seq.to_string());
            line.push_str(",\"t_ns\":");
            line.push_str(&ev.t_ns.to_string());
            line.push_str(",\"kind\":");
            json::push_str(&mut line, kind_str(ev.kind));
            line.push_str(",\"code\":");
            line.push_str(&ev.code.to_string());
            line.push_str(",\"a\":");
            line.push_str(&ev.a.to_string());
            line.push_str(",\"b\":");
            line.push_str(&ev.b.to_string());
            line.push_str("}\n");
            out.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

/// FNV-1a hash of a string — the stable digest [`crate::diag`] attaches to
/// flight events so a postmortem can correlate diagnostics without storing
/// the text in the ring.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static GLOBAL_FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// Ring capacity of the process-global flight recorder.
pub const GLOBAL_FLIGHT_CAPACITY: usize = 1024;

/// The process-global flight recorder (wall-clock, 1024 events).
pub fn flight() -> &'static FlightRecorder {
    GLOBAL_FLIGHT.get_or_init(|| FlightRecorder::new(GLOBAL_FLIGHT_CAPACITY))
}

static POSTMORTEM_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Sets (or clears) the file postmortem dumps append to.
pub fn set_postmortem_path(path: Option<&Path>) {
    *POSTMORTEM_PATH.lock().expect("postmortem path poisoned") = path.map(Path::to_path_buf);
}

/// Appends a postmortem dump of the global ring to the configured path.
/// A no-op (returning `false`) when no path is set; dump errors are
/// swallowed — a postmortem must never take the process down with it.
pub fn postmortem(reason: &str) -> bool {
    let path = POSTMORTEM_PATH
        .lock()
        .expect("postmortem path poisoned")
        .clone();
    let Some(path) = path else {
        return false;
    };
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return false;
    };
    flight().dump_jsonl(&mut file, reason).is_ok()
}

static PANIC_HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

/// Chains a panic hook that appends a `"panic"` postmortem dump before the
/// default hook runs. Installing twice is a no-op.
pub fn install_panic_hook() {
    PANIC_HOOK_INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            postmortem("panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_n_events() {
        let ring = FlightRecorder::deterministic(4);
        for i in 0..10u64 {
            ring.record(KIND_FRAME, i as u16, i, i * 2);
        }
        let dump = ring.dump();
        assert_eq!(dump.total, 10);
        assert_eq!(dump.dropped, 6);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(dump.events[0].code, 6);
        assert_eq!(dump.events[3].a, 9);
        assert_eq!(dump.events[3].b, 18);
    }

    #[test]
    fn deterministic_ring_has_zero_timestamps() {
        let ring = FlightRecorder::deterministic(8);
        ring.record(KIND_CONN, 0, 1, 0);
        assert_eq!(ring.dump().events[0].t_ns, 0);
    }

    #[test]
    fn same_sequence_dumps_bit_identically() {
        let run = || {
            let ring = FlightRecorder::deterministic(8);
            for i in 0..20u64 {
                ring.record((i % 6) as u8, (i * 3) as u16, i, i ^ 0xff);
            }
            ring.dump()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dump_is_torn_free_under_concurrent_writers() {
        let ring = FlightRecorder::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // Writer invariant: b == a * 2 in every event.
                        ring.record(KIND_FRAME, t as u16, i, i * 2);
                    }
                });
            }
            for _ in 0..50 {
                for ev in ring.dump().events {
                    assert_eq!(ev.b, ev.a * 2, "torn event read: {ev:?}");
                }
            }
        });
        let dump = ring.dump();
        assert_eq!(dump.total, 8000);
        assert_eq!(dump.events.len(), 64, "quiesced ring dumps full window");
    }

    #[test]
    fn jsonl_dump_shape() {
        let ring = FlightRecorder::deterministic(4);
        ring.record(KIND_ERROR, 7, 42, 99);
        let mut out = Vec::new();
        ring.dump_jsonl(&mut out, "test").unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"t\":\"flight\""), "{}", lines[0]);
        assert!(lines[0].contains("\"reason\":\"test\""), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"error\""), "{}", lines[1]);
        assert!(lines[1].contains("\"code\":7"), "{}", lines[1]);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("reactor"), fnv1a("reactor"));
    }
}
