//! Metric registry and storage: sharded counters, gauges, histograms.
//!
//! Metric *identity* (name, kind, unit) lives in one process-wide registry,
//! so the per-call-site id cache in [`CallsiteId`] stays valid no matter
//! which [`Recorder`] instance consumes the recording (tests construct
//! private recorders; production uses the global one). Metric *values* live
//! in per-recorder fixed-size atomic arrays indexed by the registry id.
//!
//! Hot path (`counter_add` with a warm call site): one relaxed enabled
//! load, one cached-id load, one thread-local shard lookup, one relaxed
//! `fetch_add`. No locks, no allocation.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::Recorder;

/// Upper bound on distinct registered metrics; registrations beyond it are
/// silently dropped (the pipeline registers a few dozen).
pub(crate) const MAX_METRICS: usize = 128;

/// Counter shards. Threads are assigned shards round-robin, so concurrent
/// ingestion workers never contend on one cache line.
pub(crate) const SHARDS: usize = 16;

/// Power-of-two histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, bucket 63 is the overflow tail.
pub(crate) const HIST_BUCKETS: usize = 64;

/// Sentinel id for call sites that lost the registration race against
/// [`MAX_METRICS`]; recordings against it are dropped.
const OVERFLOW: u32 = u32::MAX;

/// What a metric measures and how it merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum of recorded increments.
    Counter,
    /// Last written integer value wins.
    Gauge,
    /// Last written `f64` (stored as bits) wins.
    GaugeF64,
    /// Distribution of recorded `u64` observations.
    Histogram,
}

impl MetricKind {
    /// The JSONL `kind` label.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::GaugeF64 => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A static per-call-site handle caching the registry id of one metric.
///
/// Declared by the recording macros as a `static`, so the name → id lookup
/// (the only locking step) happens once per call site per process.
pub struct CallsiteId {
    name: &'static str,
    kind: MetricKind,
    unit: &'static str,
    /// `0` = unresolved, [`u32::MAX`] = overflowed, otherwise `id + 1`.
    cached: AtomicU32,
}

impl CallsiteId {
    /// A new unresolved call-site handle (const, for statics).
    pub const fn new(name: &'static str, kind: MetricKind, unit: &'static str) -> Self {
        CallsiteId {
            name,
            kind,
            unit,
            cached: AtomicU32::new(0),
        }
    }

    /// The metric's registry id, registering on first use.
    #[inline]
    fn resolve(&self) -> u32 {
        match self.cached.load(Ordering::Relaxed) {
            0 => {
                let id = register(self.name, self.kind, self.unit);
                let cache = if id == OVERFLOW { OVERFLOW } else { id + 1 };
                self.cached.store(cache, Ordering::Relaxed);
                id
            }
            OVERFLOW => OVERFLOW,
            c => c - 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    name: &'static str,
    kind: MetricKind,
    unit: &'static str,
}

static REGISTRY: Mutex<Vec<Meta>> = Mutex::new(Vec::new());

fn register(name: &'static str, kind: MetricKind, unit: &'static str) -> u32 {
    let mut reg = REGISTRY.lock().expect("metric registry poisoned");
    if let Some(i) = reg.iter().position(|m| m.name == name && m.kind == kind) {
        return i as u32;
    }
    if reg.len() >= MAX_METRICS {
        return OVERFLOW;
    }
    reg.push(Meta { name, kind, unit });
    (reg.len() - 1) as u32
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

fn atomic_array<const N: usize>() -> Box<[AtomicU64; N]> {
    Box::new(std::array::from_fn(|_| AtomicU64::new(0)))
}

/// One shard of counter cells (1 KiB: shards land on distinct cache lines).
struct Shard {
    cells: Box<[AtomicU64; MAX_METRICS]>,
}

/// Lock-free histogram cell.
///
/// There is deliberately no separate observation counter: the count is
/// always derived from the bucket sum, so a snapshot taken while other
/// threads record can never observe `count != Σ buckets` (the torn view a
/// free-running counter permits). The bucket increment is the *commit
/// point* of an observation — it is ordered last with `Release`, so a
/// snapshot that sees the bucket (an `Acquire` load) also sees the
/// matching `sum`/`min`/`max` updates.
struct Hist {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: atomic_array(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // Commit point: publish the observation (and, transitively, the
        // stat updates above) to concurrent snapshots.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The bucket an observation falls into.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Per-recorder metric value storage.
pub(crate) struct MetricStore {
    shards: Vec<Shard>,
    gauges: Box<[AtomicU64; MAX_METRICS]>,
    hists: Vec<Hist>,
}

impl MetricStore {
    pub(crate) fn new() -> Self {
        MetricStore {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    cells: atomic_array(),
                })
                .collect(),
            gauges: atomic_array(),
            hists: (0..MAX_METRICS).map(|_| Hist::new()).collect(),
        }
    }

    pub(crate) fn reset_values(&self) {
        for s in &self.shards {
            for c in s.cells.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
        for g in self.gauges.iter() {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }

    pub(crate) fn snapshots(&self) -> Vec<MetricSnapshot> {
        let reg = REGISTRY.lock().expect("metric registry poisoned");
        reg.iter()
            .enumerate()
            .map(|(i, meta)| {
                let value = match meta.kind {
                    MetricKind::Counter => MetricValue::Counter(
                        self.shards
                            .iter()
                            .map(|s| s.cells[i].load(Ordering::Relaxed))
                            .sum(),
                    ),
                    MetricKind::Gauge => MetricValue::Gauge(self.gauges[i].load(Ordering::Relaxed)),
                    MetricKind::GaugeF64 => MetricValue::GaugeF64(f64::from_bits(
                        self.gauges[i].load(Ordering::Relaxed),
                    )),
                    MetricKind::Histogram => MetricValue::Histogram(self.hists[i].snapshot()),
                };
                MetricSnapshot {
                    name: meta.name,
                    kind: meta.kind,
                    unit: meta.unit,
                    value,
                }
            })
            .collect()
    }
}

impl Hist {
    fn snapshot(&self) -> HistogramSnapshot {
        // Acquire pairs with the Release bucket increment in `record`:
        // every observation whose bucket we see has already published its
        // sum/min/max contribution. Counting the buckets (instead of a
        // second free-running counter) makes `count == Σ buckets` hold by
        // construction even mid-recording.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two bucket counts (see [`bucket_index`]'s layout).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`0 < p ≤ 100`) by linear interpolation
    /// inside the containing power-of-two bucket, clamped to the observed
    /// `[min, max]` range (so constant data reports exact percentiles).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p / 100.0 * self.count as f64)
            .ceil()
            .clamp(1.0, self.count as f64);
        let mut before = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (before + c) as f64 >= rank {
                let (lo, hi) = bucket_range(i, self.max);
                let frac = (rank - before as f64) / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            before += c;
        }
        self.max as f64
    }
}

/// The value range `[lo, hi)` bucket `i` covers; the tail bucket is capped
/// at the observed maximum.
pub(crate) fn bucket_range(i: usize, observed_max: u64) -> (u64, u64) {
    match i {
        0 => (0, 1),
        _ if i >= HIST_BUCKETS - 1 => (
            1u64 << (HIST_BUCKETS - 2),
            observed_max.max(1u64 << (HIST_BUCKETS - 2)),
        ),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

/// A metric's merged value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Summed counter.
    Counter(u64),
    /// Last-written gauge.
    Gauge(u64),
    /// Last-written floating-point gauge.
    GaugeF64(f64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The integer value of a counter or gauge; `None` for float gauges
    /// and histograms. Convenience for assertions and exporters.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::GaugeF64(_) | MetricValue::Histogram(_) => None,
        }
    }
}

/// One registered metric with its merged value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name (dotted, e.g. `felip.agg.reports`).
    pub name: &'static str,
    /// Metric kind.
    pub kind: MetricKind,
    /// Unit label (may be empty).
    pub unit: &'static str,
    /// Merged value.
    pub value: MetricValue,
}

/// A field value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Recorder {
    /// Adds `n` to the counter behind `cs`. Lock-free after the call site's
    /// first use; a no-op while disabled.
    #[inline]
    pub fn counter_add(&self, cs: &CallsiteId, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let id = cs.resolve();
        if id == OVERFLOW {
            return;
        }
        self.metrics.shards[shard_index()].cells[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Stores `v` as the gauge's latest value; a no-op while disabled.
    #[inline]
    pub fn gauge_set(&self, cs: &CallsiteId, v: u64) {
        if !self.is_enabled() {
            return;
        }
        let id = cs.resolve();
        if id == OVERFLOW {
            return;
        }
        self.metrics.gauges[id as usize].store(v, Ordering::Relaxed);
    }

    /// Records one observation into the histogram; a no-op while disabled.
    #[inline]
    pub fn hist_record(&self, cs: &CallsiteId, v: u64) {
        if !self.is_enabled() {
            return;
        }
        let id = cs.resolve();
        if id == OVERFLOW {
            return;
        }
        self.metrics.hists[id as usize].record(v);
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn counters_merge_across_shards() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("test.shard.counter", MetricKind::Counter, "");
        rec.counter_add(&CS, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| rec.counter_add(&CS, 5));
            }
        });
        assert_eq!(
            rec.metric("test.shard.counter").unwrap().value,
            MetricValue::Counter(22)
        );
    }

    #[test]
    fn gauge_last_write_wins() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("test.gauge", MetricKind::Gauge, "cells");
        rec.gauge_set(&CS, 7);
        rec.gauge_set(&CS, 9);
        assert_eq!(
            rec.metric("test.gauge").unwrap().value,
            MetricValue::Gauge(9)
        );
    }

    #[test]
    fn gauge_f64_round_trips_bits() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("test.gauge.f", MetricKind::GaugeF64, "");
        rec.gauge_set(&CS, f64::to_bits(0.125));
        assert_eq!(
            rec.metric("test.gauge.f").unwrap().value,
            MetricValue::GaugeF64(0.125)
        );
    }

    #[test]
    fn disabled_recorder_drops_updates() {
        let rec = Recorder::new();
        static CS: CallsiteId = CallsiteId::new("test.disabled.counter", MetricKind::Counter, "");
        rec.counter_add(&CS, 10);
        rec.set_enabled(true);
        rec.counter_add(&CS, 1);
        assert_eq!(
            rec.metric("test.disabled.counter").unwrap().value,
            MetricValue::Counter(1)
        );
    }

    #[test]
    fn same_name_shares_one_registration() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static A: CallsiteId = CallsiteId::new("test.shared", MetricKind::Counter, "");
        static B: CallsiteId = CallsiteId::new("test.shared", MetricKind::Counter, "");
        rec.counter_add(&A, 1);
        rec.counter_add(&B, 2);
        assert_eq!(
            rec.metric("test.shared").unwrap().value,
            MetricValue::Counter(3)
        );
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("test.hist", MetricKind::Histogram, "ns");
        for v in [5u64, 5, 5, 5] {
            rec.hist_record(&CS, v);
        }
        let MetricValue::Histogram(h) = rec.metric("test.hist").unwrap().value else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 20);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 5);
        assert_eq!(h.mean(), 5.0);
        // Constant data: every percentile is exact thanks to min/max clamping.
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 5.0, "p{p}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static CS: CallsiteId = CallsiteId::new("test.hist.mono", MetricKind::Histogram, "");
        for v in 1..=1000u64 {
            rec.hist_record(&CS, v);
        }
        let MetricValue::Histogram(h) = rec.metric("test.hist.mono").unwrap().value else {
            panic!("not a histogram");
        };
        let mut last = 0.0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            assert!((1.0..=1000.0).contains(&v), "p{p}: {v}");
            last = v;
        }
        // Log-bucket estimates are coarse but must be in the right decade.
        let p50 = h.percentile(50.0);
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.percentile(100.0), 1000.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        };
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }
}
