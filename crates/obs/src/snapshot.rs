//! Live metrics snapshots: point-in-time captures of every registered
//! metric, deltas between captures, and their JSON wire form.
//!
//! This is the payload of the server's STAT admin verb and of the
//! `--metrics-out` rollup time-series. A snapshot is taken without
//! pausing recorders — counters are summed across shards with relaxed
//! loads and histograms are read through their seqlock-free commit-point
//! protocol (see `metrics::Hist`), so `count == Σ buckets` holds on every
//! capture even mid-recording.
//!
//! JSON shape (one object, no external dependencies):
//!
//! ```json
//! {"t":"metrics","version":1,"kind":"full"|"delta","taken_ns":N,
//!  "metrics":[
//!    {"name":"...","kind":"counter","unit":"...","value":N},
//!    {"name":"...","kind":"gauge","unit":"...","value":N},
//!    {"name":"...","kind":"histogram","unit":"...","count":N,"sum":N,
//!     "min":N,"max":N,"mean":F,"p50":F,"p90":F,"p99":F,"p999":F}
//! ]}
//! ```

use crate::json;
use crate::jsonread::JsonValue;
use crate::metrics::{bucket_range, HistogramSnapshot, MetricSnapshot, MetricValue};
use crate::Recorder;

/// Schema version of the metrics-snapshot JSON object.
pub const METRICS_SNAPSHOT_VERSION: u64 = 1;

/// A point-in-time (or delta) capture of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the recorder's epoch when the capture was taken.
    pub taken_ns: u64,
    /// `true` when this snapshot is a delta between two captures.
    pub delta: bool,
    /// The captured metrics, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Recorder {
    /// Captures every registered metric without pausing recorders.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            taken_ns: self.now_ns(),
            delta: false,
            metrics: self.metric_snapshots(),
        }
    }
}

impl MetricsSnapshot {
    /// The captured entry for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The change since `prev`: counters and histograms subtract
    /// (saturating — a reset between captures yields zeros, not wraps);
    /// gauges keep their point-in-time value. Histogram deltas derive
    /// their count from the bucket-wise difference; `min`/`max` are
    /// approximated from the populated delta buckets' bounds since exact
    /// interval extrema are not recoverable from running extrema.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|cur| {
                let old = prev
                    .metrics
                    .iter()
                    .find(|p| p.name == cur.name && p.kind == cur.kind);
                let value = match (&cur.value, old.map(|o| &o.value)) {
                    (MetricValue::Counter(c), Some(MetricValue::Counter(p))) => {
                        MetricValue::Counter(c.saturating_sub(*p))
                    }
                    (MetricValue::Histogram(c), Some(MetricValue::Histogram(p))) => {
                        MetricValue::Histogram(histogram_delta(c, p))
                    }
                    // New metric, kind change, or a gauge: the current
                    // value stands.
                    (v, _) => v.clone(),
                };
                MetricSnapshot {
                    name: cur.name,
                    kind: cur.kind,
                    unit: cur.unit,
                    value,
                }
            })
            .collect();
        MetricsSnapshot {
            taken_ns: self.taken_ns,
            delta: true,
            metrics,
        }
    }

    /// Serializes the snapshot as one JSON object (see the module docs for
    /// the shape).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.metrics.len());
        out.push_str("{\"t\":\"metrics\",\"version\":");
        out.push_str(&METRICS_SNAPSHOT_VERSION.to_string());
        out.push_str(",\"kind\":");
        out.push_str(if self.delta { "\"delta\"" } else { "\"full\"" });
        out.push_str(",\"taken_ns\":");
        out.push_str(&self.taken_ns.to_string());
        out.push_str(",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_str(&mut out, m.name);
            out.push_str(",\"kind\":");
            json::push_str(&mut out, m.kind.as_str());
            out.push_str(",\"unit\":");
            json::push_str(&mut out, m.unit);
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(",\"value\":");
                    out.push_str(&v.to_string());
                }
                MetricValue::GaugeF64(v) => {
                    out.push_str(",\"value\":");
                    json::push_f64(&mut out, *v);
                }
                MetricValue::Histogram(h) => {
                    out.push_str(",\"count\":");
                    out.push_str(&h.count.to_string());
                    out.push_str(",\"sum\":");
                    out.push_str(&h.sum.to_string());
                    out.push_str(",\"min\":");
                    out.push_str(&h.min.to_string());
                    out.push_str(",\"max\":");
                    out.push_str(&h.max.to_string());
                    out.push_str(",\"mean\":");
                    json::push_f64(&mut out, h.mean());
                    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)]
                    {
                        out.push_str(",\"");
                        out.push_str(label);
                        out.push_str("\":");
                        json::push_f64(&mut out, h.percentile(p));
                    }
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Bucket-wise histogram difference. Count derives from the delta buckets
/// (so `count == Σ buckets` holds for deltas too); min/max come from the
/// bounds of the populated delta buckets, clamped to the current extrema.
fn histogram_delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    let buckets: Vec<u64> = cur
        .buckets
        .iter()
        .zip(prev.buckets.iter().chain(std::iter::repeat(&0)))
        .map(|(c, p)| c.saturating_sub(*p))
        .collect();
    let count: u64 = buckets.iter().sum();
    let (mut min, mut max) = (0u64, 0u64);
    if count > 0 {
        if let Some(first) = buckets.iter().position(|&b| b > 0) {
            min = bucket_range(first, cur.max).0.max(cur.min);
        }
        if let Some(last) = buckets.iter().rposition(|&b| b > 0) {
            max = bucket_range(last, cur.max).1.min(cur.max);
        }
        min = min.min(max);
    }
    HistogramSnapshot {
        count,
        sum: cur.sum.saturating_sub(prev.sum),
        min,
        max,
        buckets,
    }
}

/// Renders a parsed metrics-snapshot JSON object (what a STAT reply or a
/// `--metrics-out` line carries) as an aligned text table — the client
/// side of `felip stat`. Histogram nanosecond metrics are human-scaled.
pub fn render_metrics_table(doc: &JsonValue) -> Result<String, String> {
    if doc.get("t").and_then(|t| t.as_str()) != Some("metrics") {
        return Err("not a metrics snapshot (missing t=\"metrics\")".into());
    }
    let kind = doc
        .get("kind")
        .and_then(|k| k.as_str())
        .unwrap_or("full")
        .to_string();
    let taken_ns = doc.get("taken_ns").and_then(|v| v.as_u64()).unwrap_or(0);
    let Some(JsonValue::Array(metrics)) = doc.get("metrics") else {
        return Err("metrics snapshot has no \"metrics\" array".into());
    };
    let mut out = format!(
        "metrics ({kind} snapshot at +{})\n",
        crate::summary::fmt_ns(taken_ns)
    );
    out.push_str(&format!("  {:<40} {}\n", "metric", "value"));
    let mut rows = 0usize;
    for m in metrics {
        let name = m.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let unit = m.get("unit").and_then(|u| u.as_str()).unwrap_or("");
        let is_ns = unit == "ns";
        let rendered = match m.get("kind").and_then(|k| k.as_str()) {
            Some("histogram") => {
                let count = m.get("count").and_then(|v| v.as_u64()).unwrap_or(0);
                if count == 0 {
                    continue;
                }
                let q = |key: &str| m.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
                let scale = |v: f64| {
                    if is_ns {
                        crate::summary::fmt_ns(v as u64)
                    } else {
                        format!("{v:.0}")
                    }
                };
                format!(
                    "n={count} mean={} p50={} p99={} p999={} max={}",
                    scale(q("mean")),
                    scale(q("p50")),
                    scale(q("p99")),
                    scale(q("p999")),
                    scale(q("max")),
                )
            }
            _ => match m.get("value") {
                Some(JsonValue::Num(v)) => {
                    if *v == 0.0 {
                        continue;
                    }
                    if v.fract() == 0.0 && v.abs() < 9e15 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v:.6}")
                    }
                }
                _ => continue,
            },
        };
        let unit_suffix = if unit.is_empty() || is_ns {
            String::new()
        } else {
            format!(" {unit}")
        };
        out.push_str(&format!("  {name:<40} {rendered}{unit_suffix}\n"));
        rows += 1;
    }
    // The per-worker queue gauges are sharded (`server.queue.depth.w0`…)
    // so no worker's write can mask another's; the fleet-wide view the
    // old single gauge used to give is derived here at render time.
    let depths: Vec<u64> = metrics
        .iter()
        .filter(|m| {
            m.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("server.queue.depth."))
        })
        .filter_map(|m| m.get("value").and_then(|v| v.as_u64()))
        .collect();
    if !depths.is_empty() {
        let sum: u64 = depths.iter().sum();
        let max = depths.iter().copied().max().unwrap_or(0);
        out.push_str(&format!(
            "  {:<40} {sum} batches\n",
            "server.queue.depth (sum)"
        ));
        out.push_str(&format!(
            "  {:<40} {max} batches\n",
            "server.queue.depth (max worker)"
        ));
        rows += 2;
    }
    if rows == 0 {
        out.push_str("  (no nonzero metrics)\n");
    }
    Ok(out)
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::metrics::{CallsiteId, MetricKind};

    fn populated() -> Recorder {
        let rec = Recorder::new();
        rec.set_enabled(true);
        static C: CallsiteId = CallsiteId::new("snap.frames", MetricKind::Counter, "frames");
        static G: CallsiteId = CallsiteId::new("snap.depth", MetricKind::Gauge, "batches");
        static H: CallsiteId = CallsiteId::new("snap.lat", MetricKind::Histogram, "ns");
        rec.counter_add(&C, 10);
        rec.gauge_set(&G, 3);
        for v in [100u64, 200, 400] {
            rec.hist_record(&H, v);
        }
        rec
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let rec = populated();
        let snap = rec.metrics_snapshot();
        assert!(!snap.delta);
        assert_eq!(
            snap.get("snap.frames").unwrap().value,
            MetricValue::Counter(10)
        );
        assert_eq!(snap.get("snap.depth").unwrap().value, MetricValue::Gauge(3));
        let MetricValue::Histogram(h) = &snap.get("snap.lat").unwrap().value else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 700);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let rec = populated();
        let first = rec.metrics_snapshot();
        static C: CallsiteId = CallsiteId::new("snap.frames", MetricKind::Counter, "frames");
        static G: CallsiteId = CallsiteId::new("snap.depth", MetricKind::Gauge, "batches");
        rec.counter_add(&C, 5);
        rec.gauge_set(&G, 7);
        let second = rec.metrics_snapshot();
        let delta = second.delta_since(&first);
        assert!(delta.delta);
        assert_eq!(
            delta.get("snap.frames").unwrap().value,
            MetricValue::Counter(5)
        );
        assert_eq!(
            delta.get("snap.depth").unwrap().value,
            MetricValue::Gauge(7),
            "gauges report point-in-time, not a difference"
        );
    }

    #[test]
    fn delta_histogram_count_matches_bucket_sum() {
        let rec = populated();
        let first = rec.metrics_snapshot();
        static H: CallsiteId = CallsiteId::new("snap.lat", MetricKind::Histogram, "ns");
        for v in [800u64, 1600] {
            rec.hist_record(&H, v);
        }
        let delta = rec.metrics_snapshot().delta_since(&first);
        let MetricValue::Histogram(h) = &delta.get("snap.lat").unwrap().value else {
            panic!("not a histogram");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
        assert_eq!(h.sum, 2400);
        // The two new observations landed in buckets [512,1024) and
        // [1024,2048): the approximated extrema must bracket them.
        assert!(h.min >= 512 && h.min <= 800, "min {}", h.min);
        assert!(h.max >= 1600 && h.max <= 2048, "max {}", h.max);
    }

    #[test]
    fn empty_delta_is_all_zero() {
        let rec = populated();
        let first = rec.metrics_snapshot();
        let delta = rec.metrics_snapshot().delta_since(&first);
        let MetricValue::Histogram(h) = &delta.get("snap.lat").unwrap().value else {
            panic!("not a histogram");
        };
        assert_eq!((h.count, h.sum, h.min, h.max), (0, 0, 0, 0));
    }

    #[test]
    fn json_parses_and_round_trips_through_jsonread() {
        let rec = populated();
        let json = rec.metrics_snapshot().to_json();
        let doc = crate::jsonread::parse(&json).expect("snapshot JSON parses");
        assert_eq!(doc.get("t").and_then(|t| t.as_str()), Some("metrics"));
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("kind").and_then(|k| k.as_str()), Some("full"));
        let Some(JsonValue::Array(metrics)) = doc.get("metrics") else {
            panic!("no metrics array");
        };
        let hist = metrics
            .iter()
            .find(|m| m.get("name").and_then(|n| n.as_str()) == Some("snap.lat"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(3));
        for key in ["p50", "p90", "p99", "p999", "mean"] {
            assert!(hist.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
    }

    #[test]
    fn render_table_lists_nonzero_metrics() {
        let rec = populated();
        let json = rec.metrics_snapshot().to_json();
        let doc = crate::jsonread::parse(&json).unwrap();
        let table = render_metrics_table(&doc).unwrap();
        assert!(table.contains("snap.frames"), "{table}");
        assert!(table.contains("snap.lat"), "{table}");
        assert!(table.contains("p999="), "{table}");
        assert!(render_metrics_table(&JsonValue::Null).is_err());
    }

    #[test]
    fn render_table_derives_queue_depth_sum_and_max() {
        let rec = populated();
        static W0: CallsiteId =
            CallsiteId::new("server.queue.depth.w0", MetricKind::Gauge, "batches");
        static W1: CallsiteId =
            CallsiteId::new("server.queue.depth.w1", MetricKind::Gauge, "batches");
        rec.gauge_set(&W0, 4);
        rec.gauge_set(&W1, 9);
        let doc = crate::jsonread::parse(&rec.metrics_snapshot().to_json()).unwrap();
        let table = render_metrics_table(&doc).unwrap();
        assert!(
            table.contains("server.queue.depth (sum)") && table.contains("13 batches"),
            "{table}"
        );
        assert!(
            table.contains("server.queue.depth (max worker)") && table.contains("9 batches"),
            "{table}"
        );
    }
}
