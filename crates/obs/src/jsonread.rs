//! Minimal JSON parsing for reading JSONL traces back in.
//!
//! The write side ([`crate::json`]) is hand-rolled to keep this crate
//! dependency-free; the read side follows suit. It parses exactly the
//! subset the exporter emits — objects, arrays, strings, numbers, bools,
//! null — and rejects everything else with a typed error instead of
//! panicking, so a truncated trace from a killed process degrades to
//! skipped lines rather than a crashed summarizer.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers beyond 2⁵³ lose precision, as in JS).
    Num(f64),
    /// A string with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept; `get` returns
    /// the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Why a document failed to parse, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Recursion limit: the exporter emits flat objects, so anything deep is
/// garbage, and bounding depth keeps arbitrary input from overflowing the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; the input is valid UTF-8 by
            // construction (&str), so only quote/backslash/control bytes
            // need per-byte handling.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 run"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exporter_shapes() {
        let v =
            parse(r#"{"t":"span","id":3,"parent":null,"name":"collect","dur_ns":1500,"ok":true}"#)
                .unwrap();
        assert_eq!(v.get("t").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("parent"), Some(&JsonValue::Null));
        assert_eq!(v.get("dur_ns").unwrap().as_u64(), Some(1500));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_escapes_and_numbers() {
        let v = parse(r#"{"s":"a\"b\\c\nd\u00e9\ud83d\ude00","f":-1.5e2,"a":[1,2,3]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndé😀"));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-150.0));
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Num(3.0)
            ]))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} extra",
            "nul",
            "1e",
            "{\"s\":\"\\ud800\"}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
