//! Property test for the snapshot/recorder race (DESIGN.md §11): metric
//! snapshots are captured *while* writer threads hammer the recorder, and
//! no capture may ever observe a torn histogram. The load-bearing
//! invariant is `Σ buckets == count` on every capture — the bucket
//! increment is the observation's single commit point, so a histogram can
//! never claim observations its buckets don't hold (the skew that made
//! racing quantiles lie before the PR-7 fix).
//!
//! Compiled out under the `noop` feature (there is nothing to observe).
#![cfg(not(feature = "noop"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use felip_obs::Recorder;
use felip_obs::{CallsiteId, MetricKind, MetricValue};

static PROP_LAT: CallsiteId = CallsiteId::new("prop.lat", MetricKind::Histogram, "ns");
static PROP_COUNT: CallsiteId = CallsiteId::new("prop.count", MetricKind::Counter, "events");

const WRITERS: usize = 4;
const PER_WRITER: u64 = 20_000;

/// The histogram snapshot of `prop.lat`, with torn-read assertions that
/// must hold on *every* capture, mid-race or quiesced.
fn lat_histogram(rec: &Recorder, when: &str) -> felip_obs::HistogramSnapshot {
    let snap = rec.metrics_snapshot();
    let m = snap.get("prop.lat").expect("prop.lat is registered");
    let MetricValue::Histogram(h) = &m.value else {
        panic!("{when}: prop.lat is not a histogram: {:?}", m.value);
    };
    let bucket_sum: u64 = h.buckets.iter().sum();
    assert_eq!(
        bucket_sum, h.count,
        "{when}: torn histogram: buckets hold {bucket_sum} observations but count says {}",
        h.count
    );
    if h.count > 0 {
        assert!(h.min <= h.max, "{when}: min {} above max {}", h.min, h.max);
    }
    h.clone()
}

/// Writers spin observations through a shared recorder while the main
/// thread captures snapshots as fast as it can; every capture must be
/// internally consistent and counts must be monotone across captures.
/// After the writers join, one quiesced capture must be exact.
#[test]
fn concurrent_snapshots_never_observe_a_torn_histogram() {
    let rec = Arc::new(Recorder::new());
    rec.set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Values sweep the full bucket layout (1ns .. ~1ms) so
                    // the race covers many distinct bucket cells.
                    let v = 1u64 << ((w as u64 + i) % 20);
                    rec.hist_record(&PROP_LAT, v);
                    rec.counter_add(&PROP_COUNT, 1);
                }
            })
        })
        .collect();
    let capturer = {
        let (rec, stop) = (Arc::clone(&rec), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut captures = 0u64;
            let mut last_count = 0u64;
            let mut last_counter = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let h = lat_histogram(&rec, "mid-race");
                assert!(
                    h.count >= last_count,
                    "histogram count went backwards: {} then {}",
                    last_count,
                    h.count
                );
                last_count = h.count;
                let snap = rec.metrics_snapshot();
                let counter = snap
                    .get("prop.count")
                    .and_then(|m| m.value.as_u64())
                    .expect("prop.count is a counter");
                assert!(
                    counter >= last_counter,
                    "counter went backwards: {last_counter} then {counter}"
                );
                last_counter = counter;
                captures += 1;
            }
            captures
        })
    };
    for w in writers {
        w.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    let captures = capturer.join().expect("capture thread");
    assert!(captures > 0, "the capturer never ran");

    let total = WRITERS as u64 * PER_WRITER;
    let h = lat_histogram(&rec, "quiesced");
    assert_eq!(h.count, total, "quiesced capture lost observations");
    assert_eq!(h.min, 1, "every writer recorded the 1ns bucket");
    assert_eq!(h.max, 1 << 19, "largest swept value missing");
    let expected_sum: u64 = (0..WRITERS as u64)
        .map(|w| (0..PER_WRITER).map(|i| 1u64 << ((w + i) % 20)).sum::<u64>())
        .sum();
    assert_eq!(h.sum, expected_sum, "quiesced sum diverged");
    let snap = rec.metrics_snapshot();
    assert_eq!(
        snap.get("prop.count").and_then(|m| m.value.as_u64()),
        Some(total),
        "quiesced counter diverged"
    );
}
