//! Shim smoke tests that must pass in BOTH builds: the passthrough build
//! and the `--features model` build *outside* a `model::check` run (where
//! the modeled types fall back to std behaviour).

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::{thread, Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

#[test]
fn mutex_counts_across_threads() {
    let m = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let m = Arc::clone(&m);
        handles.push(thread::spawn(move || {
            for _ in 0..1000 {
                *m.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(*m.lock(), 4000);
}

#[test]
fn scoped_threads_borrow_and_join() {
    let m = Mutex::new(Vec::new());
    thread::scope(|s| {
        for i in 0..4u32 {
            let m = &m;
            s.spawn(move || m.lock().push(i));
        }
    });
    let mut v = m.into_inner();
    v.sort_unstable();
    assert_eq!(v, vec![0, 1, 2, 3]);
}

#[test]
fn scoped_join_returns_value() {
    let n = thread::scope(|s| {
        let h = s.spawn(|| 6 * 7);
        h.join().expect("scoped thread")
    });
    assert_eq!(n, 42);
}

#[test]
fn condvar_handoff() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let h = thread::spawn(move || {
        let (lock, cv) = &*p2;
        *lock.lock() = true;
        cv.notify_one();
    });
    let (lock, cv) = &*pair;
    let mut ready = lock.lock();
    while !*ready {
        let (g, _timeout) = cv.wait_timeout(ready, Duration::from_secs(10));
        ready = g;
    }
    assert!(*ready);
    h.join().expect("notifier");
}

#[test]
fn condvar_wait_timeout_times_out() {
    let pair = (Mutex::new(()), Condvar::new());
    let g = pair.0.lock();
    let (_g, r) = pair.1.wait_timeout(g, Duration::from_millis(10));
    assert!(r.timed_out());
}

#[test]
fn rwlock_readers_and_writer() {
    let l = Arc::new(RwLock::new(7u32));
    {
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }
    *l.write() = 8;
    assert_eq!(*l.read(), 8);
}

#[test]
fn atomics_behave() {
    let a = AtomicU64::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.swap(9, Ordering::SeqCst), 3);
    a.store(4, Ordering::SeqCst);
    assert_eq!(a.load(Ordering::SeqCst), 4);
    assert_eq!(
        a.compare_exchange(4, 5, Ordering::SeqCst, Ordering::SeqCst),
        Ok(4)
    );
}

/// Regression guard for the zero-cost claim: the passthrough shims must
/// not cost measurably more than the raw `std::sync` primitives they wrap.
///
/// The PR-5 serve-loadgen regression traced to exactly this: `#[inline]`
/// is a hint, and an uninlined `Mutex::lock` wrapper adds a call + a guard
/// move to every queue push, shard ingest, and dedup check. The wrappers
/// are now `#[inline(always)]`; this test holds the line by timing
/// uncontended lock/unlock loops through both paths and failing if the
/// shim is more than 2× the raw cost (the margin absorbs scheduler noise
/// on loaded CI hardware — a lost inline shows up as 3–10×, not 1.2×).
///
/// Min-of-trials is used on both sides: the *fastest* observed run is the
/// least-preempted one, which is the honest estimate of intrinsic cost.
#[cfg(not(feature = "model"))]
#[test]
fn shim_locks_match_raw_std_throughput() {
    use std::hint::black_box;
    use std::time::Instant;

    const ITERS: u64 = 2_000_000;
    const TRIALS: usize = 5;

    fn best<F: FnMut() -> u64>(mut f: F) -> Duration {
        let mut fastest = Duration::MAX;
        for _ in 0..TRIALS {
            let t = Instant::now();
            black_box(f());
            fastest = fastest.min(t.elapsed());
        }
        fastest
    }

    // Interleave the two sides trial by trial so a frequency ramp or a
    // noisy neighbour hits both equally.
    let raw_mutex = std::sync::Mutex::new(0u64);
    let shim_mutex = Mutex::new(0u64);
    let raw = best(|| {
        for _ in 0..ITERS {
            *raw_mutex.lock().unwrap() += 1;
        }
        *raw_mutex.lock().unwrap()
    });
    let shim = best(|| {
        for _ in 0..ITERS {
            *shim_mutex.lock() += 1;
        }
        *shim_mutex.lock()
    });

    let ratio = shim.as_secs_f64() / raw.as_secs_f64().max(1e-9);
    assert!(
        ratio < 2.0,
        "shim Mutex {shim:?} vs raw std {raw:?} (ratio {ratio:.2}) — \
         passthrough wrappers are no longer zero-cost"
    );

    let raw_rw = std::sync::RwLock::new(0u64);
    let shim_rw = RwLock::new(0u64);
    let raw = best(|| {
        for _ in 0..ITERS {
            *raw_rw.write().unwrap() += 1;
        }
        *raw_rw.read().unwrap()
    });
    let shim = best(|| {
        for _ in 0..ITERS {
            *shim_rw.write() += 1;
        }
        *shim_rw.read()
    });
    let ratio = shim.as_secs_f64() / raw.as_secs_f64().max(1e-9);
    assert!(
        ratio < 2.0,
        "shim RwLock {shim:?} vs raw std {raw:?} (ratio {ratio:.2}) — \
         passthrough wrappers are no longer zero-cost"
    );
}

#[test]
fn mutex_statics_are_const_constructible() {
    static FLAG: Mutex<u32> = Mutex::new(0);
    static CV: Condvar = Condvar::new();
    *FLAG.lock() = 3;
    CV.notify_all();
    assert_eq!(*FLAG.lock(), 3);
}
