//! Shim smoke tests that must pass in BOTH builds: the passthrough build
//! and the `--features model` build *outside* a `model::check` run (where
//! the modeled types fall back to std behaviour).

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::{thread, Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

#[test]
fn mutex_counts_across_threads() {
    let m = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let m = Arc::clone(&m);
        handles.push(thread::spawn(move || {
            for _ in 0..1000 {
                *m.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(*m.lock(), 4000);
}

#[test]
fn scoped_threads_borrow_and_join() {
    let m = Mutex::new(Vec::new());
    thread::scope(|s| {
        for i in 0..4u32 {
            let m = &m;
            s.spawn(move || m.lock().push(i));
        }
    });
    let mut v = m.into_inner();
    v.sort_unstable();
    assert_eq!(v, vec![0, 1, 2, 3]);
}

#[test]
fn scoped_join_returns_value() {
    let n = thread::scope(|s| {
        let h = s.spawn(|| 6 * 7);
        h.join().expect("scoped thread")
    });
    assert_eq!(n, 42);
}

#[test]
fn condvar_handoff() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let h = thread::spawn(move || {
        let (lock, cv) = &*p2;
        *lock.lock() = true;
        cv.notify_one();
    });
    let (lock, cv) = &*pair;
    let mut ready = lock.lock();
    while !*ready {
        let (g, _timeout) = cv.wait_timeout(ready, Duration::from_secs(10));
        ready = g;
    }
    assert!(*ready);
    h.join().expect("notifier");
}

#[test]
fn condvar_wait_timeout_times_out() {
    let pair = (Mutex::new(()), Condvar::new());
    let g = pair.0.lock();
    let (_g, r) = pair.1.wait_timeout(g, Duration::from_millis(10));
    assert!(r.timed_out());
}

#[test]
fn rwlock_readers_and_writer() {
    let l = Arc::new(RwLock::new(7u32));
    {
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }
    *l.write() = 8;
    assert_eq!(*l.read(), 8);
}

#[test]
fn atomics_behave() {
    let a = AtomicU64::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.swap(9, Ordering::SeqCst), 3);
    a.store(4, Ordering::SeqCst);
    assert_eq!(a.load(Ordering::SeqCst), 4);
    assert_eq!(
        a.compare_exchange(4, 5, Ordering::SeqCst, Ordering::SeqCst),
        Ok(4)
    );
}

#[test]
fn mutex_statics_are_const_constructible() {
    static FLAG: Mutex<u32> = Mutex::new(0);
    static CV: Condvar = Condvar::new();
    *FLAG.lock() = 3;
    CV.notify_all();
    assert_eq!(*FLAG.lock(), 3);
}
