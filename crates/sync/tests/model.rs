//! The model checker checking itself: known-racy programs must produce
//! violations (with replayable schedules), known-correct programs must
//! exhaust their schedule space cleanly.

#![cfg(feature = "model")]

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::model::{self, Config};
use felip_sync::{thread, Arc, Condvar, Mutex};

/// Two unsynchronized load-then-store increments: the classic lost
/// update. One preemption (between t1's load and store) suffices.
fn racy_increment() {
    let a = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let a = Arc::clone(&a);
        handles.push(thread::spawn(move || {
            let x = a.load(Ordering::SeqCst);
            a.store(x + 1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().expect("incrementer");
    }
    assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_lost_update_race() {
    let v = model::check(racy_increment).expect_err("checker must find the lost update");
    assert!(v.message.contains("lost update"), "got: {}", v.message);
    assert!(!v.schedule.is_empty());
}

#[test]
fn replay_reproduces_the_same_failure() {
    let v = model::check(racy_increment).expect_err("race exists");
    let again = model::replay(&v.schedule, racy_increment)
        .expect_err("replaying the failing schedule must fail again");
    assert!(
        again.message.contains("lost update"),
        "got: {}",
        again.message
    );
    // And a fresh exploration-free replay is deterministic: same token.
    assert_eq!(again.schedule, v.schedule);
}

#[test]
fn preemption_bound_zero_misses_the_race() {
    // The lost update needs one involuntary switch; with a bound of 0 the
    // schedule space contains only run-to-completion orders, all correct.
    let stats = model::check_with(
        Config {
            preemption_bound: 0,
            ..Config::default()
        },
        racy_increment,
    )
    .expect("no race reachable without preemptions");
    assert!(stats.schedules >= 1);
}

#[test]
fn mutex_protected_increment_is_clean() {
    let stats = model::check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                let mut g = m.lock();
                *g += 1;
            }));
        }
        for h in handles {
            h.join().expect("incrementer");
        }
        assert_eq!(*m.lock(), 2);
    })
    .expect("mutex-protected increment has no bad schedule");
    // More than one interleaving must actually have been explored.
    assert!(stats.schedules > 1, "explored only {}", stats.schedules);
}

#[test]
fn detects_ab_ba_deadlock() {
    let v = model::check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        let _ = t1.join();
        let _ = t2.join();
    })
    .expect_err("AB-BA locking must deadlock in some schedule");
    assert!(v.message.contains("deadlock"), "got: {}", v.message);
    // The deadlocking schedule replays deterministically.
    let again = model::replay(&v.schedule, || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        let _ = t1.join();
        let _ = t2.join();
    })
    .expect_err("deadlock replays");
    assert!(again.message.contains("deadlock"));
}

#[test]
fn condvar_handoff_has_no_lost_wakeup() {
    let stats = model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let producer = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        producer.join().expect("producer");
    })
    .expect("predicate-loop condvar handoff is correct in every schedule");
    assert!(stats.schedules > 1);
}

#[test]
fn lost_wakeup_bug_is_found() {
    // Broken handoff: the consumer checks the flag, releases the lock,
    // then re-takes it and waits — the notify can land in the gap.
    // (wait() without a surrounding predicate re-check loop; if the
    // producer already notified, the consumer sleeps forever.)
    let v = model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let producer = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let ready = lock.lock();
        if !*ready {
            drop(ready);
            // Gap: the notify may land exactly here — and the wait below
            // does not re-check the flag.
            let g = lock.lock();
            let _g = cv.wait(g);
        }
        producer.join().expect("producer");
    })
    .expect_err("the wait-after-missed-notify schedule deadlocks");
    assert!(v.message.contains("deadlock"), "got: {}", v.message);
}

#[test]
fn spin_wait_with_yield_terminates() {
    let stats = model::check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let setter = thread::spawn(move || f2.store(1, Ordering::SeqCst));
        while flag.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        setter.join().expect("setter");
    })
    .expect("yield-based spin wait must not be reported as livelock");
    assert!(stats.schedules >= 1);
}

#[test]
fn timed_wait_fires_only_as_last_resort() {
    // Consumer waits with a timeout but nobody ever notifies: the
    // timeout must fire (instead of a deadlock report) and the program
    // completes.
    let stats = model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (lock, cv) = &*pair;
        let g = lock.lock();
        let (_g, r) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
        assert!(r.timed_out(), "no notifier exists; wake must be a timeout");
    })
    .expect("timeout path is clean");
    assert_eq!(stats.schedules, 1);
}

#[test]
fn scoped_tasks_are_modeled() {
    let stats = model::check(|| {
        let m = Mutex::new(0u64);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    *m.lock() += 1;
                });
            }
        });
        assert_eq!(m.into_inner(), 2);
    })
    .expect("scoped mutex increments are clean");
    assert!(stats.schedules > 1);
}

#[test]
fn scoped_race_is_found() {
    let v = model::check(|| {
        let a = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let x = a.load(Ordering::SeqCst);
                    a.store(x + 1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(a.load(Ordering::SeqCst), 2, "scoped lost update");
    })
    .expect_err("scoped lost update must be found");
    assert!(
        v.message.contains("scoped lost update"),
        "got: {}",
        v.message
    );
}
