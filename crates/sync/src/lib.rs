//! `felip-sync`: the workspace's synchronization layer — `std::sync` shims
//! that double as a deterministic concurrency model checker.
//!
//! Every crate that does real concurrency (today: `felip-server`) imports
//! `Mutex`, `Condvar`, `RwLock`, atomics, and `thread` from here instead of
//! `std` (enforced by `cargo run -p xtask -- lint`). In a normal build the
//! types are zero-cost `#[inline]` wrappers over `std::sync` — same
//! codegen, same semantics, minus lock poisoning (a poisoned lock yields
//! its data; the panic that poisoned it is already propagating).
//!
//! With `--features model`, code executed inside [`model::check`] runs
//! under a controlled scheduler instead: every synchronization point
//! (lock acquire, condvar wait/notify, atomic access, spawn/join,
//! sleep/yield) becomes an interleaving decision, and the checker
//! explores *all* schedules up to a preemption bound via depth-first
//! search with sleep-set pruning. A failing schedule is reported as a
//! printable token string that [`model::replay`] re-executes exactly —
//! deterministic reproduction of a concurrency bug, not a lucky seed.
//! Outside a `model::check` run the same build falls back to `std`
//! behaviour, so one `cargo test --features model` invocation runs both
//! the model suite and the ordinary tests.
//!
//! Design notes live in DESIGN.md §14: scheduler architecture, the
//! preemption bound, voluntary-yield semantics for spin loops, timeout
//! modelling (a timed wait only fires when nothing else can run), and
//! the replay-token format.

#![warn(missing_docs)]

pub use std::sync::Arc;

#[cfg(not(feature = "model"))]
mod passthrough;
#[cfg(not(feature = "model"))]
pub use passthrough::{
    atomic, thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

#[cfg(feature = "model")]
mod modeled;
#[cfg(feature = "model")]
mod sched;
#[cfg(feature = "model")]
pub use modeled::{
    atomic, thread, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

/// The model-checking entry points ([`model::check`], [`model::replay`]).
/// Only present with `--features model`.
#[cfg(feature = "model")]
pub mod model {
    pub use crate::sched::{check, check_with, replay, Config, Stats, Violation};
}
