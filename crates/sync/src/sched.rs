//! The deterministic exploration scheduler behind `feature = "model"`.
//!
//! ## Execution model
//!
//! One *execution* runs the user closure with every task (the root closure
//! plus everything it spawns through the shims) on a real OS thread, but
//! only **one task runs at a time**: each synchronization point calls back
//! into the scheduler, which decides who runs next and parks everyone
//! else. Because every shared-memory access the program performs goes
//! through a shim (enforced by `xtask lint` for `crates/server`), the
//! sequence of scheduler decisions fully determines the execution — same
//! choices, same run.
//!
//! ## Exploration
//!
//! [`check`] explores the tree of schedules depth-first. Each decision
//! point records which tasks were enabled and what operation each was
//! about to perform; backtracking re-runs the program with a forced
//! choice prefix and picks the next unexplored branch. Pruning:
//!
//! * **Sleep sets** — after fully exploring "task `t` goes first" at a
//!   node, `t` sleeps at that node; siblings whose next operation is
//!   independent of the explored one (different object, or both reads)
//!   inherit the sleep set, so commuting interleavings are visited once.
//! * **Preemption bound** — a context switch away from a task that could
//!   have kept running costs one preemption; schedules needing more than
//!   the configured bound are skipped. Most real races (including the
//!   PR-4 snapshot-cut races) need ≤ 2 preemptions.
//! * **Voluntary yields** — `thread::sleep`/`yield_now` deprioritize the
//!   caller until something else has run, so spin-wait loops make
//!   progress instead of generating unbounded self-schedules; switches at
//!   voluntary yields are free.
//!
//! A timed condvar wait only times out when no other task can run —
//! early-timeout schedules re-enter the wait loop they came from, so
//! collapsing them loses no distinct behaviour (DESIGN.md §14 spells out
//! the argument).
//!
//! ## Failures and replay
//!
//! A task panic (assertion failure), a deadlock (all tasks blocked), or a
//! step-cap livelock aborts the execution and is reported as a
//! [`Violation`] carrying the schedule token — the `.`-joined task ids
//! chosen at each decision point. [`replay`] re-runs exactly that
//! schedule; the reproduction is deterministic, not probabilistic.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};

/// Index of a task within one execution (0 = the root closure).
pub type TaskId = usize;

/// The kind of synchronization operation a task is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Mutex or rwlock-write acquisition.
    LockAcquire,
    /// Condvar wait (the atomic release-and-block).
    CondWait,
    /// Condvar notify (one or all).
    CondNotify,
    /// Atomic load.
    AtomicLoad,
    /// Atomic store or read-modify-write.
    AtomicWrite,
    /// RwLock read acquisition.
    RwRead,
    /// Voluntary yield (`sleep`, `yield_now`).
    Yield,
    /// Join on another task.
    Join,
}

/// One pending operation: the object it touches and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Scheduler-assigned object id; 0 means "not object-specific"
    /// (yields, joins) and is conservatively dependent with everything.
    pub obj: usize,
    /// Access kind.
    pub kind: OpKind,
}

impl Op {
    /// Whether reordering `self` and `other` cannot change any observable
    /// state: distinct objects, or two pure reads of the same object.
    /// Object 0 (task-lifecycle ops) is conservatively dependent with
    /// everything, which only costs pruning, never soundness.
    fn independent(self, other: Op) -> bool {
        if self.obj == 0 || other.obj == 0 {
            return false;
        }
        if self.obj != other.obj {
            return true;
        }
        matches!(
            (self.kind, other.kind),
            (OpKind::AtomicLoad, OpKind::AtomicLoad) | (OpKind::RwRead, OpKind::RwRead)
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Voluntarily yielded: schedulable, but only preferred when nothing
    /// Runnable exists; flips back to Runnable once another task runs.
    Yielded,
    BlockedLock(usize),
    BlockedCond {
        obj: usize,
        timed: bool,
    },
    BlockedJoin(TaskId),
    Finished,
}

struct Slot {
    status: Status,
    pending: Op,
    /// How the last condvar wait ended (true = last-resort timeout).
    cond_timed_out: bool,
}

#[derive(Default)]
struct Objects {
    /// Mutex / rwlock-write owner.
    writer: HashMap<usize, TaskId>,
    /// RwLock shared-reader count.
    readers: HashMap<usize, usize>,
    /// Condvar FIFO wait queues.
    cond_waiters: HashMap<usize, Vec<TaskId>>,
}

/// One recorded decision point (public for the DFS driver).
#[derive(Debug, Clone)]
pub struct Decision {
    /// Tasks that could have been chosen, ascending id order.
    pub enabled: Vec<TaskId>,
    /// The operation each enabled task was about to perform (parallel to
    /// `enabled`).
    pub ops: Vec<Op>,
    /// The task that was chosen.
    pub chosen: TaskId,
    /// The task that held the token when the decision was made.
    pub running: TaskId,
    /// Whether `running` gave the token up voluntarily (yield, block,
    /// finish) — switching away is then free of preemption cost.
    pub voluntary: bool,
}

struct State {
    slots: Vec<Slot>,
    current: TaskId,
    live: usize,
    prefix: Vec<TaskId>,
    trace: Vec<Decision>,
    objs: Objects,
    next_obj: usize,
    step_cap: usize,
    failure: Option<String>,
    abort: bool,
}

/// Shared per-execution scheduler: one instance per schedule run.
pub(crate) struct Scheduler {
    st: StdMutex<State>,
    cv: StdCondvar,
    /// Global execution number; modeled objects compare it to re-register
    /// their ids once per execution.
    pub(crate) epoch: u64,
}

/// Zero-sized panic payload used to unwind tasks after a violation; the
/// panic hook and failure recording both ignore it.
pub(crate) struct ModelAbort;

static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, TaskId)>> = const { RefCell::new(None) };
}

/// The scheduler + task id of the current thread, when it is a model task.
pub(crate) fn current() -> Option<(Arc<Scheduler>, TaskId)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<(Arc<Scheduler>, TaskId)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Lazily assigned per-execution object identity for modeled sync types
/// (const-constructible so shim types can live in statics).
pub(crate) struct ObjId {
    id: std::sync::atomic::AtomicUsize,
    epoch: AtomicU64,
}

impl ObjId {
    pub(crate) const fn new() -> ObjId {
        ObjId {
            id: std::sync::atomic::AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The object's id under `sched`, registering on first touch this
    /// execution. Only called while holding the schedule token, so the
    /// two relaxed stores cannot race.
    pub(crate) fn get(&self, sched: &Scheduler) -> usize {
        if self.epoch.load(Ordering::Relaxed) != sched.epoch {
            let id = sched.alloc_obj();
            self.id.store(id, Ordering::Relaxed);
            self.epoch.store(sched.epoch, Ordering::Relaxed);
        }
        self.id.load(Ordering::Relaxed)
    }
}

impl Scheduler {
    fn new(prefix: Vec<TaskId>, step_cap: usize, epoch: u64) -> Scheduler {
        Scheduler {
            st: StdMutex::new(State {
                slots: vec![Slot {
                    status: Status::Runnable,
                    pending: Op {
                        obj: 0,
                        kind: OpKind::Yield,
                    },
                    cond_timed_out: false,
                }],
                current: 0,
                live: 1,
                prefix,
                trace: Vec::new(),
                objs: Objects::default(),
                next_obj: 0,
                step_cap,
                failure: None,
                abort: false,
            }),
            cv: StdCondvar::new(),
            epoch,
        }
    }

    pub(crate) fn alloc_obj(&self) -> usize {
        let mut st = self
            .st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.next_obj += 1;
        st.next_obj
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fail(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// The schedulable set: Runnable tasks, or — only when none exist —
    /// voluntarily yielded tasks and timed condvar waiters (their timeout
    /// "fires" as a last resort).
    fn enabled(st: &State) -> (Vec<TaskId>, Vec<Op>) {
        let pick = |f: &dyn Fn(&Status) -> bool| -> (Vec<TaskId>, Vec<Op>) {
            let mut ids = Vec::new();
            let mut ops = Vec::new();
            for (i, s) in st.slots.iter().enumerate() {
                if f(&s.status) {
                    ids.push(i);
                    ops.push(s.pending);
                }
            }
            (ids, ops)
        };
        let runnable = pick(&|s| matches!(s, Status::Runnable));
        if !runnable.0.is_empty() {
            return runnable;
        }
        pick(&|s| matches!(s, Status::Yielded | Status::BlockedCond { timed: true, .. }))
    }

    /// Picks the next task to run. Called with the state lock held, by the
    /// task currently holding the token (`running`).
    fn decide(&self, st: &mut State, running: TaskId) {
        if st.abort {
            return;
        }
        if st.trace.len() >= st.step_cap {
            self.fail(
                st,
                format!(
                    "livelock: step cap ({}) exceeded — a task is spinning without progress",
                    st.step_cap
                ),
            );
            return;
        }
        let (enabled, ops) = Self::enabled(st);
        if enabled.is_empty() {
            if st.live == 0 {
                self.cv.notify_all();
                return;
            }
            let stuck: Vec<String> = st
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s.status, Status::Finished))
                .map(|(i, s)| format!("task {i}: {:?}", s.status))
                .collect();
            self.fail(st, format!("deadlock: [{}]", stuck.join(", ")));
            return;
        }
        let idx = st.trace.len();
        let chosen = if idx < st.prefix.len() {
            let c = st.prefix[idx];
            if !enabled.contains(&c) {
                self.fail(
                    st,
                    format!(
                        "replay diverged: task {c} not schedulable at step {idx} (enabled: {enabled:?})"
                    ),
                );
                return;
            }
            c
        } else if matches!(st.slots[running].status, Status::Runnable) {
            // Default: keep running the current task (zero preemptions
            // down the leftmost path).
            running
        } else {
            enabled[0]
        };
        let voluntary = !matches!(st.slots[running].status, Status::Runnable);
        st.trace.push(Decision {
            enabled,
            ops,
            chosen,
            running,
            voluntary,
        });
        // Another task ran (or is about to): yielded tasks rejoin the
        // runnable set; a chosen last-resort waiter wakes by timeout.
        for (i, s) in st.slots.iter_mut().enumerate() {
            if matches!(s.status, Status::Yielded) && (i != running || i == chosen) {
                s.status = Status::Runnable;
            }
        }
        if matches!(st.slots[chosen].status, Status::Yielded) {
            st.slots[chosen].status = Status::Runnable;
        }
        if let Status::BlockedCond { obj, timed: true } = st.slots[chosen].status {
            if let Some(w) = st.objs.cond_waiters.get_mut(&obj) {
                w.retain(|&t| t != chosen);
            }
            st.slots[chosen].status = Status::Runnable;
            st.slots[chosen].cond_timed_out = true;
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Parks the calling task until it is granted the token (or the
    /// execution aborts, in which case it unwinds).
    fn wait_for_token<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: TaskId,
    ) -> std::sync::MutexGuard<'a, State> {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(ModelAbort);
            }
            if st.current == me && matches!(st.slots[me].status, Status::Runnable) {
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The universal interleaving point: declare the upcoming operation,
    /// let the scheduler pick who runs, return once this task is picked.
    pub(crate) fn yield_op(&self, me: TaskId, op: Op, voluntary: bool) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic::panic_any(ModelAbort);
        }
        st.slots[me].pending = op;
        if voluntary {
            st.slots[me].status = Status::Yielded;
        }
        self.decide(&mut st, me);
        drop(self.wait_for_token(st, me));
    }

    /// Acquires mutex/write object `obj` for `me` (blocking-by-schedule).
    pub(crate) fn lock_acquire(&self, me: TaskId, obj: usize, read: bool) {
        let kind = if read {
            OpKind::RwRead
        } else {
            OpKind::LockAcquire
        };
        self.yield_op(me, Op { obj, kind }, false);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                panic::panic_any(ModelAbort);
            }
            let writer_free = !st.objs.writer.contains_key(&obj);
            let readers = st.objs.readers.get(&obj).copied().unwrap_or(0);
            if read {
                if writer_free {
                    *st.objs.readers.entry(obj).or_insert(0) += 1;
                    return;
                }
            } else if writer_free && readers == 0 {
                st.objs.writer.insert(obj, me);
                return;
            }
            st.slots[me].status = Status::BlockedLock(obj);
            self.decide(&mut st, me);
            drop(self.wait_for_token(st, me));
        }
    }

    /// Releases mutex/write (or one read share of) object `obj`.
    pub(crate) fn lock_release(&self, me: TaskId, obj: usize, read: bool) {
        let _ = me;
        let mut st = self.lock_state();
        if read {
            if let Some(n) = st.objs.readers.get_mut(&obj) {
                *n = n.saturating_sub(1);
            }
        } else {
            st.objs.writer.remove(&obj);
        }
        Self::wake_lock_waiters(&mut st, obj);
    }

    fn wake_lock_waiters(st: &mut State, obj: usize) {
        for s in &mut st.slots {
            if s.status == Status::BlockedLock(obj) {
                s.status = Status::Runnable;
            }
        }
    }

    /// Atomically releases mutex `mutex_obj`, waits on condvar `cond`,
    /// and (after wake) re-acquires the mutex. Returns whether the wake
    /// was a last-resort timeout.
    pub(crate) fn cond_wait(&self, me: TaskId, cond: usize, mutex_obj: usize, timed: bool) -> bool {
        self.yield_op(
            me,
            Op {
                obj: cond,
                kind: OpKind::CondWait,
            },
            false,
        );
        {
            let mut st = self.lock_state();
            st.objs.writer.remove(&mutex_obj);
            Self::wake_lock_waiters(&mut st, mutex_obj);
            st.objs.cond_waiters.entry(cond).or_default().push(me);
            st.slots[me].status = Status::BlockedCond { obj: cond, timed };
            st.slots[me].cond_timed_out = false;
            self.decide(&mut st, me);
            drop(self.wait_for_token(st, me));
        }
        let timed_out = self.lock_state().slots[me].cond_timed_out;
        self.lock_acquire(me, mutex_obj, false);
        timed_out
    }

    /// Wakes one (or all) waiters of condvar `cond`.
    pub(crate) fn cond_notify(&self, me: TaskId, cond: usize, all: bool) {
        self.yield_op(
            me,
            Op {
                obj: cond,
                kind: OpKind::CondNotify,
            },
            false,
        );
        let mut st = self.lock_state();
        let waiters = st.objs.cond_waiters.entry(cond).or_default();
        let woken: Vec<TaskId> = if all {
            std::mem::take(waiters)
        } else if waiters.is_empty() {
            Vec::new()
        } else {
            vec![waiters.remove(0)]
        };
        for t in woken {
            st.slots[t].status = Status::Runnable;
            st.slots[t].cond_timed_out = false;
        }
    }

    /// An interleaving point before an atomic access (the access itself is
    /// performed by the caller after this returns).
    pub(crate) fn atomic_op(&self, me: TaskId, obj: usize, write: bool) {
        let kind = if write {
            OpKind::AtomicWrite
        } else {
            OpKind::AtomicLoad
        };
        self.yield_op(me, Op { obj, kind }, false);
    }

    /// Registers a new task and returns its id; the caller spawns the OS
    /// thread that will run it.
    pub(crate) fn register_task(&self) -> TaskId {
        let mut st = self.lock_state();
        st.slots.push(Slot {
            status: Status::Runnable,
            pending: Op {
                obj: 0,
                kind: OpKind::Yield,
            },
            cond_timed_out: false,
        });
        st.live += 1;
        st.slots.len() - 1
    }

    /// Blocks `me` until task `target` finishes.
    pub(crate) fn join_task(&self, me: TaskId, target: TaskId) {
        self.yield_op(
            me,
            Op {
                obj: 0,
                kind: OpKind::Join,
            },
            false,
        );
        loop {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                panic::panic_any(ModelAbort);
            }
            if matches!(st.slots[target].status, Status::Finished) {
                return;
            }
            st.slots[me].status = Status::BlockedJoin(target);
            self.decide(&mut st, me);
            drop(self.wait_for_token(st, me));
        }
    }

    /// Whether this execution has aborted (violation found); no further
    /// tokens will be granted.
    pub(crate) fn aborted(&self) -> bool {
        self.lock_state().abort
    }

    /// Parks a freshly spawned task until it is first granted the token.
    pub(crate) fn wait_initial(&self, me: TaskId) {
        let st = self.lock_state();
        drop(self.wait_for_token(st, me));
    }

    /// Marks `me` finished, records a panic as a violation, wakes joiners,
    /// and hands the token onward.
    pub(crate) fn finish_task(
        &self,
        me: TaskId,
        panic_payload: Option<Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = self.lock_state();
        if let Some(p) = panic_payload {
            if !p.is::<ModelAbort>() {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "task panicked (non-string payload)".to_string());
                self.fail(&mut st, format!("task {me} panicked: {msg}"));
            }
        }
        st.slots[me].status = Status::Finished;
        st.live -= 1;
        for s in &mut st.slots {
            if s.status == Status::BlockedJoin(me) {
                s.status = Status::Runnable;
            }
        }
        if st.live == 0 || st.abort {
            self.cv.notify_all();
        } else {
            self.decide(&mut st, me);
        }
    }
}

/// Outcome of one schedule run.
struct ExecOutcome {
    trace: Vec<Decision>,
    failure: Option<String>,
}

/// Runs one execution of `f` under the forced choice `prefix`.
fn run_one(prefix: &[TaskId], step_cap: usize, f: &(dyn Fn() + Sync)) -> ExecOutcome {
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    let sched = Arc::new(Scheduler::new(prefix.to_vec(), step_cap, epoch));
    std::thread::scope(|scope| {
        let root = Arc::clone(&sched);
        scope.spawn(move || {
            set_ctx(Some((Arc::clone(&root), 0)));
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            set_ctx(None);
            root.finish_task(0, r.err());
        });
        let mut st = sched.lock_state();
        while st.live > 0 {
            st = sched
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    });
    let st = sched.lock_state();
    ExecOutcome {
        trace: st.trace.clone(),
        failure: st.failure.clone(),
    }
}

/// Exploration limits for [`check_with`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum involuntary context switches per schedule (default 2 —
    /// enough for every known class of cut/cursor race, see DESIGN.md
    /// §14).
    pub preemption_bound: usize,
    /// Abort exploration after this many schedules (safety valve against
    /// state-space blowup; exceeding it is reported as a violation so
    /// tests cannot silently under-explore).
    pub max_schedules: u64,
    /// Per-execution decision cap; exceeding it means a livelock.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 50_000,
        }
    }
}

/// A concurrency bug found by the checker.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong: the panic message, deadlock roster, or livelock.
    pub message: String,
    /// Replay token — feed to [`replay`] to re-run this exact schedule.
    pub schedule: String,
    /// Schedules explored before the violation surfaced.
    pub schedules_explored: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [after {} schedules; replay token: {}]",
            self.message, self.schedules_explored, self.schedule
        )
    }
}

/// Exploration statistics from a clean [`check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Distinct schedules executed.
    pub schedules: u64,
    /// Deepest decision sequence seen.
    pub max_depth: usize,
}

struct Frame {
    enabled: Vec<TaskId>,
    ops: Vec<Op>,
    running: TaskId,
    voluntary: bool,
    chosen: TaskId,
    tried: Vec<TaskId>,
    sleep: Vec<TaskId>,
    preemptions_before: usize,
}

impl Frame {
    fn op_of(&self, t: TaskId) -> Op {
        let i = self
            .enabled
            .iter()
            .position(|&e| e == t)
            .unwrap_or_default();
        self.ops[i]
    }

    fn is_preemption(&self, t: TaskId) -> bool {
        !self.voluntary && t != self.running && self.enabled.contains(&self.running)
    }
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            // Panics inside model tasks are captured and reported as
            // violations; printing each one would spam every explored
            // failing schedule.
            if current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn token_of(trace: &[Decision]) -> String {
    trace
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Exhaustively explores `f` under the default [`Config`].
pub fn check(f: impl Fn() + Send + Sync) -> Result<Stats, Violation> {
    check_with(Config::default(), f)
}

/// Exhaustively explores every schedule of `f` up to `cfg`'s bounds.
///
/// Returns [`Stats`] when the whole (bounded) schedule space is clean, or
/// the first [`Violation`] found — whose token [`replay`]s
/// deterministically.
pub fn check_with(cfg: Config, f: impl Fn() + Send + Sync) -> Result<Stats, Violation> {
    install_quiet_hook();
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0u64;
    let mut max_depth = 0usize;
    loop {
        let prefix: Vec<TaskId> = stack.iter().map(|fr| fr.chosen).collect();
        let out = run_one(&prefix, cfg.max_steps, &f);
        schedules += 1;
        if let Some(message) = out.failure {
            return Err(Violation {
                message,
                schedule: token_of(&out.trace),
                schedules_explored: schedules,
            });
        }
        // First visit of every decision beyond the forced prefix: record
        // a frame, inheriting the parent's sleep set filtered by
        // independence with the parent's chosen operation.
        for d in &out.trace[stack.len()..] {
            let sleep = match stack.last() {
                Some(p) => {
                    let chosen_op = p.op_of(p.chosen);
                    p.sleep
                        .iter()
                        .copied()
                        .filter(|&t| p.op_of(t).independent(chosen_op))
                        .filter(|t| d.enabled.contains(t))
                        .collect()
                }
                None => Vec::new(),
            };
            let preemptions_before = match stack.last() {
                Some(p) => p.preemptions_before + usize::from(p.is_preemption(p.chosen)),
                None => 0,
            };
            stack.push(Frame {
                enabled: d.enabled.clone(),
                ops: d.ops.clone(),
                running: d.running,
                voluntary: d.voluntary,
                chosen: d.chosen,
                tried: vec![d.chosen],
                sleep,
                preemptions_before,
            });
        }
        max_depth = max_depth.max(out.trace.len());
        // Backtrack to the deepest frame with an untried, unslept,
        // preemption-affordable alternative.
        loop {
            let Some(top) = stack.last_mut() else {
                return Ok(Stats {
                    schedules,
                    max_depth,
                });
            };
            if !top.sleep.contains(&top.chosen) {
                top.sleep.push(top.chosen);
            }
            let budget_left = cfg.preemption_bound.saturating_sub(top.preemptions_before);
            let next = top.enabled.iter().copied().find(|&t| {
                !top.tried.contains(&t)
                    && !top.sleep.contains(&t)
                    && (!top.is_preemption(t) || budget_left > 0)
            });
            match next {
                Some(t) => {
                    top.tried.push(t);
                    top.chosen = t;
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
        if schedules >= cfg.max_schedules {
            return Err(Violation {
                message: format!(
                    "exploration aborted: max_schedules ({}) reached without exhausting the space",
                    cfg.max_schedules
                ),
                schedule: String::new(),
                schedules_explored: schedules,
            });
        }
    }
}

/// Re-runs `f` under exactly the schedule a [`Violation`] reported.
///
/// `Ok(())` means the schedule ran clean (the bug no longer reproduces);
/// `Err` carries the reproduced violation.
pub fn replay(token: &str, f: impl Fn() + Send + Sync) -> Result<(), Violation> {
    install_quiet_hook();
    let prefix: Vec<TaskId> = if token.is_empty() {
        Vec::new()
    } else {
        match token.split('.').map(str::parse).collect() {
            Ok(p) => p,
            Err(e) => {
                return Err(Violation {
                    message: format!("unparseable schedule token {token:?}: {e}"),
                    schedule: token.to_string(),
                    schedules_explored: 0,
                })
            }
        }
    };
    let out = run_one(&prefix, Config::default().max_steps, &f);
    match out.failure {
        Some(message) => Err(Violation {
            message,
            schedule: token_of(&out.trace),
            schedules_explored: 1,
        }),
        None => Ok(()),
    }
}
