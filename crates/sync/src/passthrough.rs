//! The non-model build: thin `#[inline(always)]` wrappers over `std::sync`.
//!
//! The only semantic difference from `std` is poisoning: a poisoned lock
//! hands back its data instead of an `Err`. The workspace treats a panic
//! while holding a lock as fatal anyway (the panicking thread is already
//! unwinding the whole test or process), and the wrapper is what lets
//! non-test server code hold locks without `unwrap()` — a rule `xtask
//! lint` enforces.
//!
//! Every wrapper is `#[inline(always)]`, not `#[inline]`: these shims sit
//! on the server's hot path (queue push/pop, shard locks, per-frame dedup
//! checks), and a mere hint leaves the decision to the inliner's cost
//! model, which can decline at `-O` across the crate boundary — the PR-5
//! serve-loadgen regression. `always` makes the zero-cost claim a
//! guarantee instead of a hope; `tests/shim.rs` holds a throughput guard
//! comparing the shims against raw `std::sync` primitives.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock (see [`std::sync::Mutex`]); `lock` is
/// infallible.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    #[inline(always)]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value (poison ignored).
    #[inline(always)]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free.
    #[inline(always)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    #[inline(always)]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a [`Condvar::wait_timeout`]: did the wait time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    pub(crate) timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed (not a
    /// notification).
    #[inline(always)]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (see [`std::sync::Condvar`]); waits are
/// infallible.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[inline(always)]
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    #[inline(always)]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard(self.0.wait(guard.0).unwrap_or_else(PoisonError::into_inner))
    }

    /// Blocks until notified or `timeout` elapses.
    #[inline(always)]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (g, r) = self
            .0
            .wait_timeout(guard.0, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard(g),
            WaitTimeoutResult {
                timed_out: r.timed_out(),
            },
        )
    }

    /// Wakes one blocked waiter.
    #[inline(always)]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    #[inline(always)]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// A reader-writer lock (see [`std::sync::RwLock`]); acquisition is
/// infallible.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    #[inline(always)]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value (poison ignored).
    #[inline(always)]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline(always)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    #[inline(always)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Atomic types: straight re-exports of `std::sync::atomic` in the
/// non-model build.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

/// Thread primitives: straight re-exports of `std::thread` in the
/// non-model build.
pub mod thread {
    pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}
