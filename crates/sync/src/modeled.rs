//! The `feature = "model"` build: dual-mode shim types.
//!
//! Each type checks (per operation) whether the calling thread is a task
//! inside a [`crate::model::check`] run. If so, the operation routes
//! through the exploration scheduler — it becomes an interleaving
//! decision, and the "real" `std` primitive underneath is only touched
//! once the scheduler has granted exclusivity. Outside a check run the
//! types fall back to plain `std` behaviour, so a `--features model`
//! build still runs the ordinary (non-model) test suite correctly.
//!
//! Two modelling simplifications, both safe:
//!
//! * **No spurious wakeups** — the scheduler only wakes a condvar waiter
//!   on notify or as a last-resort timeout, never spuriously. Code that
//!   is correct without spurious wakeups stays correct with them as long
//!   as it re-checks its predicate in a loop (which the lint-enforced
//!   condvar idiom does); the model explores the wakeup orders that
//!   actually differ.
//! * **Atomics are sequentially consistent** — the declared `Ordering`
//!   is ignored under the model (every access is a scheduling point with
//!   a global order). Relaxed-memory reorderings are out of scope; the
//!   races FELIP's server has to fear are lock-discipline races, not
//!   fence omissions.

use crate::sched::{self, ObjId, Scheduler};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration;

fn ctx() -> Option<(Arc<Scheduler>, sched::TaskId)> {
    sched::current()
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock; under [`crate::model::check`] every
/// acquisition is an explored interleaving point.
pub struct Mutex<T: ?Sized> {
    obj: ObjId,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            obj: ObjId::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value (poison ignored).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (by schedule, under the model) until
    /// it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            Some((sched, me)) => {
                let obj = self.obj.get(&sched);
                sched.lock_acquire(me, obj, false);
                // The scheduler has granted exclusive ownership of `obj`,
                // so the std lock below cannot contend with another model
                // task; it protects only against misuse from non-model
                // threads.
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    g: Some(g),
                    modeled: Some(ModeledGuard { sched, me, obj }),
                    lock: &self.inner,
                }
            }
            None => MutexGuard {
                g: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                modeled: None,
                lock: &self.inner,
            },
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

struct ModeledGuard {
    sched: Arc<Scheduler>,
    me: sched::TaskId,
    obj: usize,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` except transiently inside [`Condvar::wait`].
    g: Option<std::sync::MutexGuard<'a, T>>,
    modeled: Option<ModeledGuard>,
    lock: &'a StdMutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard before releasing scheduler-level ownership
        // so the next granted task finds the std lock free.
        self.g = None;
        if let Some(m) = &self.modeled {
            m.sched.lock_release(m.me, m.obj, false);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Outcome of a [`Condvar::wait_timeout`]: did the wait time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    pub(crate) timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout. Under the model a timeout
    /// only fires as a last resort — when no other task can run.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable; under the model, wait/notify order is explored
/// and timeouts fire only when nothing else is schedulable.
pub struct Condvar {
    obj: ObjId,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            obj: ObjId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        match guard.modeled.take() {
            Some(m) => {
                let cond = self.obj.get(&m.sched);
                // Release the std lock before the scheduler releases
                // `obj`; the next task granted the mutex must find it
                // free.
                guard.g = None;
                let timed_out = m.sched.cond_wait(m.me, cond, m.obj, timed);
                guard.g = Some(guard.lock.lock().unwrap_or_else(PoisonError::into_inner));
                guard.modeled = Some(m);
                (guard, WaitTimeoutResult { timed_out })
            }
            None => {
                let lock = guard.lock;
                let g = guard.g.take().expect("guard present");
                // Forget the shell so its Drop doesn't double-release.
                std::mem::forget(guard);
                if timed {
                    let (g, r) = self
                        .inner
                        .wait_timeout(g, timeout)
                        .unwrap_or_else(PoisonError::into_inner);
                    (
                        MutexGuard {
                            g: Some(g),
                            modeled: None,
                            lock,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )
                } else {
                    let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
                    (
                        MutexGuard {
                            g: Some(g),
                            modeled: None,
                            lock,
                        },
                        WaitTimeoutResult { timed_out: false },
                    )
                }
            }
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, false, Duration::ZERO).0
    }

    /// Blocks until notified or `timeout` elapses (under the model: until
    /// notified, or woken as a last resort when nothing else can run).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_inner(guard, true, timeout)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        if let Some((sched, me)) = ctx() {
            let cond = self.obj.get(&sched);
            sched.cond_notify(me, cond, false);
        }
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        if let Some((sched, me)) = ctx() {
            let cond = self.obj.get(&sched);
            sched.cond_notify(me, cond, true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock; under the model, reader/writer interleavings are
/// explored (two reads of the same lock commute, everything else is a
/// dependency).
pub struct RwLock<T: ?Sized> {
    obj: ObjId,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            obj: ObjId::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value (poison ignored).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let modeled = match ctx() {
            Some((sched, me)) => {
                let obj = self.obj.get(&sched);
                sched.lock_acquire(me, obj, true);
                Some(ModeledGuard { sched, me, obj })
            }
            None => None,
        };
        RwLockReadGuard {
            g: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            modeled,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let modeled = match ctx() {
            Some((sched, me)) => {
                let obj = self.obj.get(&sched);
                sched.lock_acquire(me, obj, false);
                Some(ModeledGuard { sched, me, obj })
            }
            None => None,
        };
        RwLockWriteGuard {
            g: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            modeled,
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    g: std::sync::RwLockReadGuard<'a, T>,
    modeled: Option<ModeledGuard>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(m) = &self.modeled {
            m.sched.lock_release(m.me, m.obj, true);
        }
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    g: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: Option<ModeledGuard>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("write guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("write guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.g = None;
        if let Some(m) = &self.modeled {
            m.sched.lock_release(m.me, m.obj, false);
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Atomic types; under the model, every access is a scheduling point and
/// executes sequentially consistently.
pub mod atomic {
    use super::ctx;
    use crate::sched::ObjId;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Shimmed atomic; every access is an interleaving point
            /// under the model.
            pub struct $name {
                obj: ObjId,
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $ty) -> $name {
                    $name {
                        obj: ObjId::new(),
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn point(&self, write: bool) {
                    if let Some((sched, me)) = ctx() {
                        let obj = self.obj.get(&sched);
                        sched.atomic_op(me, obj, write);
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $ty {
                    self.point(false);
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, order: Ordering) {
                    self.point(true);
                    self.inner.store(v, order)
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.swap(v, order)
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.point(true);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Unsynchronized read via `&mut` exclusivity.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(Default::default())
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            model_atomic!($name, $std, $ty);

            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_max(v, order)
                }

                /// Atomic min, returning the previous value.
                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_min(v, order)
                }
            }
        };
    }

    model_atomic!(AtomicBool, AtomicBool, bool);
    model_atomic_int!(AtomicU32, AtomicU32, u32);
    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicUsize, AtomicUsize, usize);
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Thread primitives; under the model, spawned closures become scheduler
/// tasks and `sleep`/`yield_now` are voluntary yields (zero wall-clock).
///
/// `scope` here is *not* `std::thread::scope`: it is a crossbeam-style
/// scope with a single `'env` lifetime whose guard joins every spawned
/// thread before returning (normal exit *and* unwind), which is what
/// makes the lifetime erasure inside [`Scope::spawn`] sound. Call sites
/// that use closure inference (`thread::scope(|s| …)`) — the only form
/// the workspace uses — compile unchanged against either this or the
/// `std` re-export in the non-model build.
pub mod thread {
    use super::ctx;
    use crate::sched::{self, Op, OpKind, Scheduler, TaskId};
    use std::any::Any;
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};
    use std::time::Duration;

    fn lock_slot<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A handle to join a spawned thread (or model task).
    pub struct JoinHandle<T>(Imp<T>);

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            task: TaskId,
            result: Arc<StdMutex<Option<T>>>,
            os: std::thread::JoinHandle<()>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread/task to finish, returning its value.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Imp::Std(h) => h.join(),
                Imp::Model { task, result, os } => {
                    let (sched, me) = ctx().expect("model handle joined outside model task");
                    sched.join_task(me, task);
                    let _ = os.join();
                    let v = lock_slot(&result)
                        .take()
                        .expect("joined model task left a result");
                    Ok(v)
                }
            }
        }
    }

    /// Runs `f` as model task `task`: waits for its first token, executes,
    /// stores the value, and reports completion (or the panic) to the
    /// scheduler.
    fn task_body<T>(
        sched: Arc<Scheduler>,
        task: TaskId,
        slot: Arc<StdMutex<Option<T>>>,
        f: impl FnOnce() -> T,
    ) {
        sched::set_ctx(Some((Arc::clone(&sched), task)));
        sched.wait_initial(task);
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        sched::set_ctx(None);
        match r {
            Ok(v) => {
                *lock_slot(&slot) = Some(v);
                sched.finish_task(task, None);
            }
            Err(e) => sched.finish_task(task, Some(e)),
        }
    }

    /// Spawns a new thread (a new schedulable task under the model).
    pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
        match ctx() {
            Some((sched, _)) => {
                let task = sched.register_task();
                let result = Arc::new(StdMutex::new(None));
                let slot = Arc::clone(&result);
                let sched2 = Arc::clone(&sched);
                let os = std::thread::Builder::new()
                    .name(format!("model-task-{task}"))
                    .spawn(move || task_body(sched2, task, slot, f))
                    .expect("spawn model task thread");
                JoinHandle(Imp::Model { task, result, os })
            }
            None => JoinHandle(Imp::Std(std::thread::spawn(f))),
        }
    }

    /// Sleeps. Under the model this is a voluntary yield — zero
    /// wall-clock, lets every other task run first.
    pub fn sleep(dur: Duration) {
        match ctx() {
            Some((sched, me)) => sched.yield_op(
                me,
                Op {
                    obj: 0,
                    kind: OpKind::Yield,
                },
                true,
            ),
            None => std::thread::sleep(dur),
        }
    }

    /// Yields the processor (a voluntary scheduler yield under the
    /// model).
    pub fn yield_now() {
        match ctx() {
            Some((sched, me)) => sched.yield_op(
                me,
                Op {
                    obj: 0,
                    kind: OpKind::Yield,
                },
                true,
            ),
            None => std::thread::yield_now(),
        }
    }

    /// One spawned thread's lifecycle state, shared between its
    /// [`ScopedJoinHandle`] and the owning [`Scope`] so whichever joins
    /// first wins and the scope guard can finish the rest.
    struct SpawnRecord {
        os: Arc<StdMutex<Option<std::thread::JoinHandle<()>>>>,
        task: Option<TaskId>,
    }

    /// Scope for spawning borrowing threads. All spawned threads are
    /// joined before [`scope`] returns, on both the normal and the
    /// unwinding path.
    pub struct Scope<'env> {
        model: Option<(Arc<Scheduler>, TaskId)>,
        records: RefCell<Vec<SpawnRecord>>,
        /// Invariant in `'env`, like `std::thread::Scope`.
        _env: PhantomData<&'env mut &'env ()>,
    }

    /// A handle to join a scoped thread (or model task).
    pub struct ScopedJoinHandle<'env, T> {
        os: Arc<StdMutex<Option<std::thread::JoinHandle<()>>>>,
        result: Arc<StdMutex<Option<T>>>,
        task: Option<TaskId>,
        _env: PhantomData<&'env ()>,
    }

    impl<'env> Scope<'env> {
        /// Spawns a scoped thread (a new schedulable task under the
        /// model). The closure may borrow anything that outlives the
        /// enclosing [`scope`] call.
        pub fn spawn<T: Send + 'env>(
            &self,
            f: impl FnOnce() -> T + Send + 'env,
        ) -> ScopedJoinHandle<'env, T> {
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let (task, body): (Option<TaskId>, Box<dyn FnOnce() + Send + 'env>) = match &self.model
            {
                Some((sched, _)) => {
                    let task = sched.register_task();
                    let sched2 = Arc::clone(sched);
                    (
                        Some(task),
                        Box::new(move || task_body(sched2, task, slot, f)),
                    )
                }
                None => (
                    None,
                    Box::new(move || {
                        let v = f();
                        *lock_slot(&slot) = Some(v);
                    }),
                ),
            };
            // SAFETY: the erased closure (and every borrow it carries,
            // all outliving 'env) only runs on a thread that `join_all`
            // OS-joins before `scope` returns — on the normal path and,
            // via `ScopeGuard::drop`, on the unwinding path — so nothing
            // borrowed for 'env is accessed after 'env ends.
            let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
            let os = Arc::new(StdMutex::new(Some(
                std::thread::Builder::new()
                    .name(match task {
                        Some(t) => format!("model-task-{t}"),
                        None => "felip-sync-scoped".to_string(),
                    })
                    .spawn(body)
                    .expect("spawn scoped thread"),
            )));
            self.records.borrow_mut().push(SpawnRecord {
                os: Arc::clone(&os),
                task,
            });
            ScopedJoinHandle {
                os,
                result,
                task,
                _env: PhantomData,
            }
        }

        /// Joins every thread spawned in this scope: model tasks are
        /// scheduler-joined first (so their parked OS threads run to
        /// completion), then OS handles are joined. A panic from an
        /// unjoined thread is re-raised after all joins, matching
        /// `std::thread::scope`.
        fn join_all(&self) {
            if let Some((sched, me)) = &self.model {
                // After a model abort the scheduler grants no more
                // tokens; parked tasks are already unwinding on their
                // own, and a scheduler join would panic again.
                if !sched.aborted() {
                    for rec in self.records.borrow().iter() {
                        if let Some(task) = rec.task {
                            sched.join_task(*me, task);
                        }
                    }
                }
            }
            let mut first_panic: Option<Box<dyn Any + Send>> = None;
            for rec in self.records.borrow().iter() {
                if let Some(h) = lock_slot(&rec.os).take() {
                    if let Err(p) = h.join() {
                        first_panic.get_or_insert(p);
                    }
                }
            }
            if let Some(p) = first_panic {
                if !std::thread::panicking() {
                    panic::resume_unwind(p);
                }
            }
        }
    }

    impl<'env, T> ScopedJoinHandle<'env, T> {
        /// Waits for the scoped thread/task to finish, returning its
        /// value (or the panic it died with).
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(task) = self.task {
                let (sched, me) = ctx().expect("model handle joined outside model task");
                sched.join_task(me, task);
            }
            if let Some(h) = lock_slot(&self.os).take() {
                h.join()?;
            }
            match lock_slot(&self.result).take() {
                Some(v) => Ok(v),
                // The thread stored no value yet was OS-joined by the
                // scope guard after panicking; surface a unit-less error.
                None => Err(Box::new("scoped thread produced no value") as Box<dyn Any + Send>),
            }
        }
    }

    /// Joins the scope's threads even when the scope body unwinds.
    struct ScopeGuard<'a, 'env>(&'a Scope<'env>);

    impl Drop for ScopeGuard<'_, '_> {
        fn drop(&mut self) {
            self.0.join_all();
        }
    }

    /// Runs `f` with a [`Scope`]; all scoped threads are joined before
    /// this returns.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: FnOnce(&Scope<'env>) -> T,
    {
        let sc = Scope {
            model: ctx(),
            records: RefCell::new(Vec::new()),
            _env: PhantomData,
        };
        let guard = ScopeGuard(&sc);
        let r = f(&sc);
        drop(guard);
        r
    }
}
