#![warn(missing_docs)]

//! # felip-repro
//!
//! A from-scratch Rust reproduction of **FELIP** (Costa Filho & Machado,
//! EDBT 2023): frequency estimation on multidimensional datasets under
//! local differential privacy.
//!
//! This crate is a façade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `felip-common` | schema, datasets, queries, metrics, hashing |
//! | [`numeric`] | `felip-numeric` | root finding / small-system solvers |
//! | [`fo`] | `felip-fo` | GRR, OLH, OUE frequency oracles + adaptive selection |
//! | [`grid`] | `felip-grid` | binning, grid sizing, post-processing, response matrices |
//! | [`engine`] | `felip` | the FELIP pipeline (plan → collect → estimate → answer) |
//! | [`baselines`] | `felip-baselines` | HIO, TDG, HDG comparators |
//! | [`datasets`] | `felip-datasets` | evaluation dataset generators + workloads |
//!
//! See the `examples/` directory for runnable walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use felip as engine;
pub use felip_baselines as baselines;
pub use felip_common as common;
pub use felip_datasets as datasets;
pub use felip_fo as fo;
pub use felip_grid as grid;
pub use felip_numeric as numeric;

// The most common entry points, re-exported flat for convenience.
pub use felip::{
    simulate, Aggregator, CollectionPlan, Estimator, FelipConfig, SelectivityPrior, Strategy,
};
pub use felip_common::{Attribute, Dataset, Predicate, Query, Schema};
