//! Property-based integration tests (proptest): invariants that must hold
//! for *arbitrary* schemas, datasets, queries and mechanism parameters.

use proptest::prelude::*;

use felip_repro::common::rng::seeded_rng;
use felip_repro::common::{AttrKind, Attribute, Dataset, Predicate, Query, Schema};
use felip_repro::engine::{respond, CollectionPlan};
use felip_repro::{simulate, FelipConfig, Strategy as FelipStrategy};

/// An arbitrary small schema: 2–4 attributes, mixed kinds, domains 2–32.
fn arb_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec((any::<bool>(), 2u32..=32), 2..=4).prop_map(|specs| {
        Schema::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (cat, d))| {
                    if cat {
                        Attribute::categorical(format!("c{i}"), d.min(8))
                    } else {
                        Attribute::numerical(format!("n{i}"), d)
                    }
                })
                .collect(),
        )
        .expect("generated schema is valid")
    })
}

/// A dataset of `n` records valid for `schema`, from a seed.
fn make_dataset(schema: &Schema, n: usize, seed: u64) -> Dataset {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let mut ds = Dataset::empty(schema.clone());
    let mut row = vec![0u32; schema.len()];
    for _ in 0..n {
        for (slot, a) in row.iter_mut().zip(schema.attrs()) {
            // Mildly skewed so the data is not trivially uniform.
            let r: f64 = rng.gen::<f64>() * rng.gen::<f64>();
            *slot = ((r * a.domain as f64) as u32).min(a.domain - 1);
        }
        ds.push_unchecked(&row);
    }
    ds
}

/// A random valid query over `schema`, derived from a seed.
fn make_query(schema: &Schema, seed: u64, dims: usize) -> Query {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let mut attrs: Vec<usize> = (0..schema.len()).collect();
    attrs.shuffle(&mut rng);
    attrs.truncate(dims.clamp(1, schema.len()));
    let preds = attrs
        .into_iter()
        .map(|a| {
            let d = schema.domain(a);
            match schema.attr(a).kind {
                AttrKind::Numerical => {
                    let lo = rng.gen_range(0..d);
                    let hi = rng.gen_range(lo..d);
                    Predicate::between(a, lo, hi)
                }
                AttrKind::Categorical => {
                    let count = rng.gen_range(1..=d);
                    Predicate::in_set(a, (0..count).collect())
                }
            }
        })
        .collect();
    Query::new(schema, preds).expect("generated query is valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// True answers are frequencies, and conjunctions are monotone: adding a
    /// predicate can only shrink the answer.
    #[test]
    fn ground_truth_invariants(schema in arb_schema(), seed in 0u64..1000) {
        let data = make_dataset(&schema, 500, seed);
        let q2 = make_query(&schema, seed, 2);
        let t2 = q2.true_answer(&data);
        prop_assert!((0.0..=1.0).contains(&t2));
        if schema.len() >= 3 {
            // Extend q2 by one more predicate → answer must not grow.
            let q3 = make_query(&schema, seed, 3);
            if q3.attrs().len() > q2.attrs().len()
                && q2.attrs().iter().all(|a| q3.attrs().contains(a))
            {
                prop_assert!(q3.true_answer(&data) <= t2 + 1e-12);
            }
        }
    }

    /// The full pipeline never produces an out-of-range answer, for any
    /// schema / strategy / seed combination.
    #[test]
    fn pipeline_answers_in_unit_interval(
        schema in arb_schema(),
        seed in 0u64..1000,
        ohg in any::<bool>(),
    ) {
        let data = make_dataset(&schema, 2_000, seed);
        let strategy = if ohg { FelipStrategy::Ohg } else { FelipStrategy::Oug };
        let config = FelipConfig::new(1.0).with_strategy(strategy);
        // Schemas with a single pair and tiny domains are all valid inputs.
        let est = simulate(&data, &config, seed).unwrap();
        for dims in 1..=schema.len().min(3) {
            let q = make_query(&schema, seed.wrapping_add(dims as u64), dims);
            let a = est.answer(&q).unwrap();
            prop_assert!((0.0..=1.0).contains(&a), "answer {a} for dims {dims}");
        }
    }

    /// Post-processed grids are always proper distributions.
    #[test]
    fn estimated_grids_are_distributions(schema in arb_schema(), seed in 0u64..1000) {
        let data = make_dataset(&schema, 2_000, seed);
        let est = simulate(&data, &FelipConfig::new(0.8), seed).unwrap();
        for g in est.grids() {
            prop_assert!(g.freqs().iter().all(|&f| f >= 0.0));
            prop_assert!((g.total() - 1.0).abs() < 1e-6, "total {}", g.total());
        }
    }

    /// Client reports are always valid for the user's assigned grid.
    #[test]
    fn client_reports_valid(schema in arb_schema(), seed in 0u64..1000, user in 0usize..500) {
        let config = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema, 1_000, &config, seed).unwrap();
        let mut rng = seeded_rng(seed);
        let record: Vec<u32> =
            schema.attrs().iter().map(|a| (seed as u32).wrapping_mul(31) % a.domain).collect();
        let r = respond(&plan, user, &record, &mut rng).unwrap();
        prop_assert!(r.group < plan.num_groups());
        prop_assert_eq!(r.group, plan.group_of(user));
    }
}
