//! Empirical local-differential-privacy checks over the *whole client
//! path* — not just the oracle in isolation. For two arbitrary records
//! v, v′ and any observable report r, `Pr[Ψ(v) = r] ≤ e^ε · Pr[Ψ(v′) = r]`
//! must hold (§5.7). We estimate both distributions by Monte Carlo for one
//! fixed user (fixed group assignment) and bound the likelihood ratio.

use felip_repro::common::rng::seeded_rng;
use felip_repro::engine::{respond, CollectionPlan};
use felip_repro::fo::Report;
use felip_repro::{Attribute, FelipConfig, Schema, Strategy};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("x", 16),
        Attribute::categorical("c", 4),
    ])
    .unwrap()
}

/// Distribution of the observable part of the report for a fixed user and
/// record, estimated over `trials` perturbations.
fn report_distribution(
    plan: &CollectionPlan,
    user: usize,
    record: &[u32],
    trials: usize,
    seed: u64,
) -> std::collections::HashMap<u32, f64> {
    let mut rng = seeded_rng(seed);
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for _ in 0..trials {
        let r = respond(plan, user, record, &mut rng).unwrap();
        // For GRR the observable is the value; for OLH we condition on the
        // hash seed being public and uniform — the *perturbed bucket* is the
        // only part that depends on the record, so we bucket on it.
        let key = match r.report {
            Report::Grr(v) => v,
            Report::Olh { value, .. } => value,
            Report::Oue(_) => unreachable!("FELIP clients use GRR/OLH"),
        };
        *counts.entry(key).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, c as f64 / trials as f64))
        .collect()
}

fn check_ldp_bound(epsilon: f64, strategy: Strategy) {
    let schema = schema();
    let config = FelipConfig::new(epsilon).with_strategy(strategy);
    let plan = CollectionPlan::build(&schema, 1_000, &config, 3).unwrap();
    let trials = 120_000;
    // Two maximally different records, same user (same group/grid).
    let da = report_distribution(&plan, 7, &[0, 0], trials, 1);
    let db = report_distribution(&plan, 7, &[15, 3], trials, 2);
    let bound = epsilon.exp();
    for (key, pa) in &da {
        if *pa < 0.01 {
            continue; // too rare to estimate the ratio reliably
        }
        let pb = db.get(key).copied().unwrap_or(0.0);
        assert!(pb > 0.0, "output {key} observed for v but never for v'");
        let ratio = pa / pb;
        // 15% Monte-Carlo slack.
        assert!(
            ratio <= bound * 1.15,
            "strategy {strategy}, ε = {epsilon}: likelihood ratio {ratio} exceeds e^ε = {bound}"
        );
    }
}

#[test]
fn client_reports_satisfy_ldp_ohg() {
    check_ldp_bound(1.0, Strategy::Ohg);
}

#[test]
fn client_reports_satisfy_ldp_oug() {
    check_ldp_bound(1.0, Strategy::Oug);
}

#[test]
fn client_reports_satisfy_ldp_small_epsilon() {
    check_ldp_bound(0.5, Strategy::Ohg);
}

/// Each user sends exactly one report about exactly one grid: the privacy
/// budget is never split (§5.1).
#[test]
fn one_report_per_user() {
    let schema = schema();
    let config = FelipConfig::new(1.0);
    let plan = CollectionPlan::build(&schema, 100, &config, 3).unwrap();
    let mut rng = seeded_rng(0);
    for user in 0..100 {
        // The group (hence the single grid reported on) is a deterministic
        // function of the user index — repeated perturbation never leaks a
        // second grid's worth of information.
        let g1 = respond(&plan, user, &[1, 1], &mut rng).unwrap().group;
        let g2 = respond(&plan, user, &[1, 1], &mut rng).unwrap().group;
        assert_eq!(g1, g2);
    }
}

/// The report payload never contains the raw record, for any record.
#[test]
fn report_is_small_and_opaque() {
    let schema = schema();
    let config = FelipConfig::new(1.0);
    let plan = CollectionPlan::build(&schema, 1_000, &config, 5).unwrap();
    let mut rng = seeded_rng(1);
    for user in 0..200 {
        let record = [(user % 16) as u32, (user % 4) as u32];
        let r = respond(&plan, user, &record, &mut rng).unwrap();
        assert!(r.report.wire_bytes() <= 12, "reports stay O(log d) bytes");
        if let Report::Grr(v) = r.report {
            let cells = plan.grids()[r.group].num_cells();
            assert!(
                v < cells,
                "GRR report must be a cell index, not a raw value"
            );
        }
    }
}
