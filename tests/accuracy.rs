//! Statistical regression suite: end-to-end MAE under fixed seeds against
//! committed golden values.
//!
//! Every stochastic stage (dataset generation, grid assignment, report
//! perturbation, workload sampling) is seeded, so each configuration's MAE
//! is a deterministic number. The suite asserts the measured MAE stays
//! within ±20% of the committed golden — a drift outside that band means a
//! change altered the estimator's statistical behaviour, not just its
//! internals, and the golden must be re-derived deliberately (run with
//! `--nocapture` to see the measured values).

use felip_repro::common::metrics::mae;
use felip_repro::datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};
use felip_repro::{simulate, FelipConfig, SelectivityPrior, Strategy};

const N: usize = 50_000;
const DATA_SEED: u64 = 1301;
const WORKLOAD_SEED: u64 = 1303;
const SIM_SEED: u64 = 1307;

/// One pinned configuration with its committed golden MAE.
struct Golden {
    kind: DatasetKind,
    strategy: Strategy,
    epsilon: f64,
    mae: f64,
}

/// Golden MAEs measured at the commit that introduced this suite. Keep in
/// sync with `run_config`: any change to the seeds or workload above
/// invalidates the whole table.
const GOLDENS: &[Golden] = &[
    Golden {
        kind: DatasetKind::Uniform,
        strategy: Strategy::Oug,
        epsilon: 1.0,
        mae: GOLDEN_UNIFORM_OUG_E1,
    },
    Golden {
        kind: DatasetKind::Uniform,
        strategy: Strategy::Ohg,
        epsilon: 1.0,
        mae: GOLDEN_UNIFORM_OHG_E1,
    },
    Golden {
        kind: DatasetKind::Uniform,
        strategy: Strategy::Oug,
        epsilon: 4.0,
        mae: GOLDEN_UNIFORM_OUG_E4,
    },
    Golden {
        kind: DatasetKind::Uniform,
        strategy: Strategy::Ohg,
        epsilon: 4.0,
        mae: GOLDEN_UNIFORM_OHG_E4,
    },
    Golden {
        kind: DatasetKind::Normal,
        strategy: Strategy::Oug,
        epsilon: 1.0,
        mae: GOLDEN_NORMAL_OUG_E1,
    },
    Golden {
        kind: DatasetKind::Normal,
        strategy: Strategy::Ohg,
        epsilon: 1.0,
        mae: GOLDEN_NORMAL_OHG_E1,
    },
    Golden {
        kind: DatasetKind::Normal,
        strategy: Strategy::Oug,
        epsilon: 4.0,
        mae: GOLDEN_NORMAL_OUG_E4,
    },
    Golden {
        kind: DatasetKind::Normal,
        strategy: Strategy::Ohg,
        epsilon: 4.0,
        mae: GOLDEN_NORMAL_OHG_E4,
    },
];

const GOLDEN_UNIFORM_OUG_E1: f64 = 0.018796;
const GOLDEN_UNIFORM_OHG_E1: f64 = 0.035559;
const GOLDEN_UNIFORM_OUG_E4: f64 = 0.007510;
const GOLDEN_UNIFORM_OHG_E4: f64 = 0.007376;
const GOLDEN_NORMAL_OUG_E1: f64 = 0.125646;
const GOLDEN_NORMAL_OHG_E1: f64 = 0.033051;
const GOLDEN_NORMAL_OUG_E4: f64 = 0.022501;
const GOLDEN_NORMAL_OHG_E4: f64 = 0.009017;

fn run_config(kind: DatasetKind, strategy: Strategy, epsilon: f64) -> f64 {
    let data = kind.generate(GenOptions {
        n: N,
        numerical: 3,
        categorical: 3,
        numerical_domain: 64,
        categorical_domain: 8,
        seed: DATA_SEED,
    });
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 12,
            seed: WORKLOAD_SEED,
            range_only: false,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
    let config = FelipConfig::new(epsilon)
        .with_strategy(strategy)
        .with_selectivity(SelectivityPrior::Uniform(0.5));
    let est = simulate(&data, &config, SIM_SEED).unwrap();
    mae(&est.answer_all(&queries).unwrap(), &truth)
}

/// Every configuration lands within ±20% of its committed golden MAE.
#[test]
fn mae_matches_goldens_within_twenty_percent() {
    let mut failures = Vec::new();
    for g in GOLDENS {
        let measured = run_config(g.kind, g.strategy, g.epsilon);
        println!(
            "{:?}/{:?}/eps={}: measured {measured:.6}  golden {:.6}",
            g.kind, g.strategy, g.epsilon, g.mae
        );
        let (lo, hi) = (g.mae * 0.8, g.mae * 1.2);
        if !(lo..=hi).contains(&measured) {
            failures.push(format!(
                "{:?}/{:?}/eps={}: measured MAE {measured:.6} outside \
                 [{lo:.6}, {hi:.6}] (golden {:.6})",
                g.kind, g.strategy, g.epsilon, g.mae
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden drift:\n{}",
        failures.join("\n")
    );
}

/// Golden MAEs for the incremental engine measured at 25/50/75/100% of
/// ingest, each against its own prefix's ground truth. Bands widen at low
/// progress (quarter the reports ≈ double the noise) and converge to the
/// suite's standard ±20% at 100%.
const PROGRESS_GOLDENS: &[(usize, f64, f64)] = &[
    // (percent, golden MAE, band factor)
    (25, PROGRESS_MAE_25, 0.35),
    (50, PROGRESS_MAE_50, 0.30),
    (75, PROGRESS_MAE_75, 0.25),
    (100, PROGRESS_MAE_100, 0.20),
];

const PROGRESS_MAE_25: f64 = 0.056442;
const PROGRESS_MAE_50: f64 = 0.041230;
const PROGRESS_MAE_75: f64 = 0.030242;
const PROGRESS_MAE_100: f64 = 0.025515;

/// Queries served mid-stream by the incremental engine (DESIGN.md §17)
/// are statistically sound at every cut, not just at the end: MAE against
/// each prefix's own ground truth stays inside a band that tightens as
/// the cut grows, and privacy noise shrinks, toward the committed 100%
/// golden.
#[test]
fn incremental_engine_mae_tightens_with_ingest_progress() {
    use std::sync::Arc;

    use felip_repro::common::rng::{derive_seed, seeded_rng};
    use felip_repro::engine::{respond, QueryEngine};
    use felip_repro::{Aggregator, CollectionPlan};

    let data = DatasetKind::Uniform.generate(GenOptions {
        n: 40_000,
        numerical: 2,
        categorical: 2,
        numerical_domain: 64,
        categorical_domain: 8,
        seed: DATA_SEED,
    });
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 12,
            seed: WORKLOAD_SEED,
            range_only: false,
        },
    )
    .unwrap();
    let config = FelipConfig::new(1.0)
        .with_strategy(Strategy::Ohg)
        .with_selectivity(SelectivityPrior::Uniform(0.5));
    let plan =
        Arc::new(CollectionPlan::build(data.schema(), data.len(), &config, SIM_SEED).unwrap());
    let mut agg = Aggregator::new(Arc::clone(&plan));
    let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());

    let n = data.len();
    let mut ingested = 0usize;
    let mut failures = Vec::new();
    for (i, &(percent, golden, band)) in PROGRESS_GOLDENS.iter().enumerate() {
        let cut = n * percent / 100;
        while ingested < cut {
            let mut rng = seeded_rng(derive_seed(SIM_SEED, ingested as u64));
            let report = respond(&plan, ingested, data.row(ingested), &mut rng).unwrap();
            agg.ingest(&report).unwrap();
            ingested += 1;
        }
        let out = engine.refresh_from(&agg).unwrap();
        assert_eq!(out.reports, cut as u64, "cut at {percent}%");
        assert_eq!(out.epoch, i as u64 + 1, "epoch at {percent}%");

        let prefix = data.truncated(cut);
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&prefix)).collect();
        let answers = out.estimator.answer_all(&queries).unwrap();
        let measured = mae(&answers, &truth);
        println!("progress {percent}%: measured {measured:.6}  golden {golden:.6}  band ±{band}");
        let (lo, hi) = (golden * (1.0 - band), golden * (1.0 + band));
        if !(lo..=hi).contains(&measured) {
            failures.push(format!(
                "{percent}%: measured MAE {measured:.6} outside [{lo:.6}, {hi:.6}]"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden drift:\n{}",
        failures.join("\n")
    );
}

/// The ε ordering the paper's Figure 1 promises: quadrupling the budget
/// strictly reduces error for both strategies on both datasets.
#[test]
fn larger_epsilon_is_strictly_better_per_config() {
    for g1 in GOLDENS.iter().filter(|g| g.epsilon == 1.0) {
        let g4 = GOLDENS
            .iter()
            .find(|g| g.epsilon == 4.0 && g.kind == g1.kind && g.strategy == g1.strategy)
            .unwrap();
        assert!(
            g4.mae < g1.mae,
            "{:?}/{:?}: golden eps=4 MAE {} not below eps=1 MAE {}",
            g1.kind,
            g1.strategy,
            g4.mae,
            g1.mae
        );
    }
}
