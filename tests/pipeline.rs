//! Cross-crate integration tests: the full FELIP pipeline against exact
//! ground truth, across strategies, datasets and query shapes.

use felip_repro::common::metrics::mae;
use felip_repro::datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};
use felip_repro::{simulate, FelipConfig, Predicate, Query, SelectivityPrior, Strategy};

fn gen_opts(n: usize, seed: u64) -> GenOptions {
    GenOptions {
        n,
        numerical: 3,
        categorical: 3,
        numerical_domain: 64,
        categorical_domain: 8,
        seed,
    }
}

fn run_mae(
    kind: DatasetKind,
    strategy: Strategy,
    lambda: usize,
    selectivity: f64,
    n: usize,
    seed: u64,
) -> f64 {
    let data = kind.generate(gen_opts(n, seed));
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda,
            selectivity,
            count: 8,
            seed,
            range_only: false,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
    let config = FelipConfig::new(1.0)
        .with_strategy(strategy)
        .with_selectivity(SelectivityPrior::Uniform(selectivity));
    let est = simulate(&data, &config, seed ^ 0xE57).unwrap();
    let answers = est.answer_all(&queries).unwrap();
    mae(&answers, &truth)
}

/// Both strategies achieve usable accuracy on every evaluation dataset.
/// OUG gets a looser bound on the skewed datasets: its in-cell uniformity
/// assumption is exactly what OHG exists to fix (Figure 1's story), and the
/// loan-like generator's spiky marginals are its worst case.
#[test]
fn accuracy_across_datasets() {
    for kind in DatasetKind::all() {
        for strategy in [Strategy::Oug, Strategy::Ohg] {
            let m = run_mae(kind, strategy, 2, 0.5, 60_000, 11);
            let bound = if strategy == Strategy::Oug { 0.2 } else { 0.12 };
            assert!(m < bound, "{kind}/{strategy}: MAE {m}");
        }
    }
}

/// λ-D estimation stays sane as the dimension grows.
#[test]
fn accuracy_across_dimensions() {
    let data = DatasetKind::IpumsLike.generate(gen_opts(60_000, 3));
    let config = FelipConfig::new(1.0);
    let est = simulate(&data, &config, 13).unwrap();
    for lambda in [2usize, 3, 4, 5, 6] {
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda,
                selectivity: 0.5,
                count: 5,
                seed: 17,
                range_only: false,
            },
        )
        .unwrap();
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        let answers = est.answer_all(&queries).unwrap();
        let m = mae(&answers, &truth);
        assert!(m < 0.15, "lambda {lambda}: MAE {m}");
    }
}

/// OHG beats OUG on skewed (normal) data — the hybrid 1-D grids earn their
/// budget share; on uniform data OUG is competitive (the paper's headline
/// qualitative result, Figure 1).
#[test]
fn ohg_wins_on_skewed_data() {
    // Average over a few workload seeds to damp noise.
    let mut oug_total = 0.0;
    let mut ohg_total = 0.0;
    for seed in [1u64, 2, 3] {
        oug_total += run_mae(DatasetKind::Normal, Strategy::Oug, 2, 0.5, 60_000, seed);
        ohg_total += run_mae(DatasetKind::Normal, Strategy::Ohg, 2, 0.5, 60_000, seed);
    }
    assert!(
        ohg_total < oug_total,
        "OHG ({ohg_total}) should beat OUG ({oug_total}) on normal data"
    );
}

/// More users → lower error (Figure 6's monotonicity, coarse-grained).
#[test]
fn error_decreases_with_population() {
    let small = run_mae(DatasetKind::Normal, Strategy::Ohg, 2, 0.5, 8_000, 5);
    let large = run_mae(DatasetKind::Normal, Strategy::Ohg, 2, 0.5, 120_000, 5);
    assert!(
        large < small,
        "n=120k MAE {large} should be below n=8k MAE {small}"
    );
}

/// Larger ε → lower error (Figure 1's monotonicity, coarse-grained).
#[test]
fn error_decreases_with_epsilon() {
    let data = DatasetKind::Normal.generate(gen_opts(60_000, 7));
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 8,
            seed: 7,
            range_only: false,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
    let mut maes = Vec::new();
    for eps in [0.3, 1.0, 3.0] {
        let est = simulate(&data, &FelipConfig::new(eps), 77).unwrap();
        maes.push(mae(&est.answer_all(&queries).unwrap(), &truth));
    }
    assert!(
        maes[2] < maes[0],
        "eps=3 MAE {} should be far below eps=0.3 MAE {}",
        maes[2],
        maes[0]
    );
}

/// Every estimate is a valid frequency and deterministic in the seed.
#[test]
fn estimates_valid_and_reproducible() {
    let data = DatasetKind::LoanLike.generate(gen_opts(30_000, 9));
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 3,
            selectivity: 0.4,
            count: 6,
            seed: 9,
            range_only: false,
        },
    )
    .unwrap();
    let config = FelipConfig::new(0.8);
    let a = simulate(&data, &config, 55)
        .unwrap()
        .answer_all(&queries)
        .unwrap();
    let b = simulate(&data, &config, 55)
        .unwrap()
        .answer_all(&queries)
        .unwrap();
    assert_eq!(a, b, "same seed must reproduce identical answers");
    assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
}

/// Point (equality) constraints work alongside ranges — the query class
/// FELIP supports beyond TDG/HDG.
#[test]
fn point_and_range_mix() {
    let data = DatasetKind::IpumsLike.generate(gen_opts(60_000, 21));
    let schema = data.schema().clone();
    let q = Query::new(
        &schema,
        vec![
            Predicate::between(0, 0, 31),
            Predicate::equals(3, 0), // point constraint on a categorical
        ],
    )
    .unwrap();
    let est = simulate(&data, &FelipConfig::new(1.0), 23).unwrap();
    let got = est.answer(&q).unwrap();
    let truth = q.true_answer(&data);
    assert!((got - truth).abs() < 0.08, "est {got} vs truth {truth}");
}
