//! Integration tests pitting FELIP against the reimplemented baselines —
//! the qualitative claims of §6 at test scale.

use felip_repro::baselines::hio::run_hio;
use felip_repro::baselines::tdg::{run_hdg, run_tdg};
use felip_repro::common::metrics::mae;
use felip_repro::common::{Attribute, Schema};
use felip_repro::datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};
use felip_repro::{simulate, FelipConfig, Strategy};

/// All-numerical setting of §6.3 (TDG/HDG only support ranges).
fn numeric_opts(seed: u64) -> GenOptions {
    GenOptions {
        n: 80_000,
        numerical: 4,
        categorical: 0,
        numerical_domain: 64,
        categorical_domain: 2,
        seed,
    }
}

/// FELIP's optimised grids beat TDG/HDG's global power-of-two grids on the
/// range-only workload (Figure 7's ordering), and everything beats HIO.
#[test]
fn figure7_ordering_on_normal_data() {
    let data = DatasetKind::Normal.generate(numeric_opts(31));
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 3,
            selectivity: 0.5,
            count: 10,
            seed: 31,
            range_only: true,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();

    let score = |answers: Vec<f64>| mae(&answers, &truth);

    let ohg = {
        let est = simulate(
            &data,
            &FelipConfig::new(1.0).with_strategy(Strategy::Ohg),
            1,
        )
        .unwrap();
        score(est.answer_all(&queries).unwrap())
    };
    let hdg = score(
        run_hdg(&data, 1.0, 1)
            .unwrap()
            .answer_all(&queries)
            .unwrap(),
    );
    let tdg = score(
        run_tdg(&data, 1.0, 1)
            .unwrap()
            .answer_all(&queries)
            .unwrap(),
    );
    let hio = score(
        run_hio(&data, 1.0, 1)
            .unwrap()
            .answer_all(&queries)
            .unwrap(),
    );

    // Coarse orderings that must hold at this scale (seeded, so stable):
    assert!(ohg < hio, "OHG {ohg} vs HIO {hio}");
    assert!(hdg < hio, "HDG {hdg} vs HIO {hio}");
    assert!(tdg < hio, "TDG {tdg} vs HIO {hio}");
    assert!(ohg < tdg, "OHG {ohg} vs TDG {tdg}");
}

/// HIO degrades sharply as the domain grows (Figure 3's headline): its
/// group count explodes with the hierarchy depth.
#[test]
fn hio_collapses_with_domain_size() {
    let small = {
        let mut o = numeric_opts(5);
        o.numerical_domain = 16;
        o
    };
    let large = {
        let mut o = numeric_opts(5);
        o.numerical_domain = 256;
        o
    };
    let mut maes = Vec::new();
    for opts in [small, large] {
        let data = DatasetKind::Uniform.generate(opts);
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: 8,
                seed: 5,
                range_only: true,
            },
        )
        .unwrap();
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        let est = run_hio(&data, 1.0, 5).unwrap();
        maes.push(mae(&est.answer_all(&queries).unwrap(), &truth));
    }
    assert!(
        maes[1] > 2.0 * maes[0],
        "HIO at d=256 (MAE {}) should be much worse than at d=16 (MAE {})",
        maes[1],
        maes[0]
    );
}

/// FELIP, by contrast, stays roughly flat across the same domain growth
/// (its grid sizes adapt).
#[test]
fn felip_stable_with_domain_size() {
    let mut maes = Vec::new();
    for d in [16u32, 256] {
        let mut o = numeric_opts(6);
        o.numerical_domain = d;
        let data = DatasetKind::Uniform.generate(o);
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: 8,
                seed: 6,
                range_only: true,
            },
        )
        .unwrap();
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        let est = simulate(&data, &FelipConfig::new(1.0), 6).unwrap();
        maes.push(mae(&est.answer_all(&queries).unwrap(), &truth));
    }
    assert!(
        maes[1] < maes[0] * 3.0 + 0.02,
        "FELIP MAE should not explode with domain size: d=16 {} vs d=256 {}",
        maes[0],
        maes[1]
    );
}

/// HIO handles the mixed categorical/numerical query class (its claim to
/// fame vs TDG/HDG) — sanity check it is not broken on that path.
#[test]
fn hio_supports_mixed_queries() {
    let schema = Schema::new(vec![
        Attribute::numerical("x", 32),
        Attribute::categorical("c", 4),
    ])
    .unwrap();
    let opts = GenOptions {
        n: 40_000,
        numerical: 1,
        categorical: 1,
        numerical_domain: 32,
        categorical_domain: 4,
        seed: 8,
    };
    let data = DatasetKind::Uniform.generate(opts);
    assert_eq!(data.schema().len(), schema.len());
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.5,
            count: 6,
            seed: 8,
            range_only: false,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
    let est = run_hio(&data, 1.0, 8).unwrap();
    let m = mae(&est.answer_all(&queries).unwrap(), &truth);
    assert!(m < 0.2, "HIO mixed-query MAE {m}");
}

/// The adaptive oracle never hurts on uniform data, where the optimiser's
/// non-uniformity model is exact (zero bias) and Eq. 13's variance
/// comparison is the whole story. (On skewed data at small n the coarser
/// GRR-sized grids can pay more real-world bias than the α₂ model predicts
/// — the paper's §6.3 ablation runs at n = 10⁶ where grids are fine enough
/// for the comparison to favour adaptive everywhere; the fig7 binary
/// reproduces that regime.)
#[test]
fn adaptive_oracle_no_worse_than_olh_only() {
    use felip_repro::fo::FoKind;
    let data = DatasetKind::Uniform.generate(numeric_opts(9));
    let queries = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 3,
            selectivity: 0.5,
            count: 10,
            seed: 9,
            range_only: true,
        },
    )
    .unwrap();
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
    let mut adaptive_total = 0.0;
    let mut olh_total = 0.0;
    for seed in [1u64, 2, 3] {
        let adaptive = simulate(&data, &FelipConfig::new(1.0), seed).unwrap();
        adaptive_total += mae(&adaptive.answer_all(&queries).unwrap(), &truth);
        let olh_only = simulate(
            &data,
            &FelipConfig::new(1.0).with_forced_fo(FoKind::Olh),
            seed,
        )
        .unwrap();
        olh_total += mae(&olh_only.answer_all(&queries).unwrap(), &truth);
    }
    assert!(
        adaptive_total <= olh_total * 1.5 + 0.01,
        "adaptive ({adaptive_total}) should not be substantially worse than OLH-only ({olh_total})"
    );
}
