//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! `proptest!` expands each test into a `#[test]` (the attribute is written
//! by the caller, as with upstream) that draws `config.cases` random inputs
//! from the argument strategies and runs the body on each. Failing inputs
//! are reported via panic with the generated values' `Debug` form; there is
//! no shrinking. Generation is deterministic per test (seeded from the test
//! path) so failures reproduce; set `PROPTEST_SHIM_SEED` to explore other
//! sequences.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim trims the default for fast
        // suites on small machines. Tests needing more set it explicitly.
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Everything a proptest file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest shim] {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
}

/// Skips the current case when an assumption does not hold.
///
/// Expands to `continue` targeting the case loop, so it must appear at the
/// top level of the test body (true for every use in this workspace).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
