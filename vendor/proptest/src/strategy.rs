//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A [`Strategy::prop_map`] adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range generation for a type (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("strategy::bounds");
        for _ in 0..500 {
            let a = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&a));
            let b = (5u64..=6).generate(&mut rng);
            assert!((5..=6).contains(&b));
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::for_test("strategy::compose");
        let strat = (any::<bool>(), 2u32..=32).prop_map(|(b, d)| if b { d * 2 } else { d });
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=64).contains(&v));
        }
    }

    #[test]
    fn just_returns_value() {
        let mut rng = TestRng::for_test("strategy::just");
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
