//! Deterministic per-test random source.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies: xoshiro256++ seeded from the test path
/// (stable across runs) XOR an optional `PROPTEST_SHIM_SEED` override.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds from the fully-qualified test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path gives a stable, well-spread seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                seed ^= x;
            }
        }
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform draw from an integer/float range (delegates to `rand`).
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.gen_range(range)
    }

    /// A uniform draw over a type's full `Standard` distribution.
    pub fn gen<T>(&mut self) -> T
    where
        rand::distributions::Standard: rand::distributions::Distribution<T>,
    {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_sequence() {
        let mut a = TestRng::for_test("mod::case");
        let mut b = TestRng::for_test("mod::case");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("mod::one");
        let mut b = TestRng::for_test("mod::two");
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }
}
