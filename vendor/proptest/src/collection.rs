//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: exact `usize`, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("collection::lengths");
        for _ in 0..100 {
            assert_eq!(vec(0u32..4, 15).generate(&mut rng).len(), 15);
            let l = vec(0u32..4, 1..200).generate(&mut rng).len();
            assert!((1..200).contains(&l));
            let m = vec(0u32..4, 2..=4).generate(&mut rng).len();
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn elements_come_from_inner_strategy() {
        let mut rng = TestRng::for_test("collection::elements");
        let xs = vec(10u32..20, 500).generate(&mut rng);
        assert!(xs.iter().all(|x| (10..20).contains(x)));
    }
}
