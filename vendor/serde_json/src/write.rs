//! JSON text output (compact and pretty).

use serde::{Content, Serialize};

use crate::Error;

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

pub(crate) fn to_compact_string(c: &Content) -> String {
    let mut out = String::new();
    write_compact(c, &mut out);
    out
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(x) => out.push_str(&x.to_string()),
        Content::I64(x) => out.push_str(&x.to_string()),
        Content::F64(x) => write_f64(*x, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_key(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Map keys must render as JSON strings; stringify non-string keys.
fn write_key(k: &Content, out: &mut String) {
    match k {
        Content::Str(s) => write_escaped(s, out),
        other => write_escaped(&to_compact_string(other), out),
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's shortest round-trip float formatting; force a fractional
        // part so the value re-parses as a float, matching upstream.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Upstream serializes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_textually() {
        let mut out = String::new();
        write_f64(0.1 + 0.2, &mut out);
        assert_eq!(out.parse::<f64>().unwrap(), 0.1 + 0.2);
        let mut out2 = String::new();
        write_f64(3.0, &mut out2);
        assert_eq!(out2, "3.0");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_escaped("a\"b\\c\nd", &mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let c = Content::Map(vec![(
            Content::Str("k".into()),
            Content::Seq(vec![Content::U64(1), Content::U64(2)]),
        )]);
        let mut out = String::new();
        write_pretty(&c, 0, &mut out);
        assert_eq!(out, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }
}
