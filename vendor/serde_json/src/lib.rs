//! Offline shim for the subset of `serde_json` this workspace uses:
//! `to_string` / `to_string_pretty` / `from_str`, the [`Value`] tree with
//! insertion-ordered [`Map`], and a [`json!`] macro covering object/array
//! literals with expression values (nest further objects via inner `json!`
//! calls — unlike upstream, raw `{..}` literals don't recurse).
//!
//! Numbers keep 64-bit integer precision ([`Number`] stores `u64`/`i64`/
//! `f64` separately), so OLH seeds round-trip exactly.

use serde::{Content, DeError, Deserialize, Serialize};

mod read;
mod write;

pub use read::from_str;
pub use write::{to_string, to_string_pretty};

/// A serialize/deserialize/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integer precision preserved).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Map<String, Value>),
}

/// A JSON number: `u64`, `i64` (negative), or `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(pub(crate) N);

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// As `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(x) => Some(x),
            N::I(x) => u64::try_from(x).ok(),
            N::F(_) => None,
        }
    }

    /// As `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(x) => i64::try_from(x).ok(),
            N::I(x) => Some(x),
            N::F(_) => None,
        }
    }

    /// As `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(x) => Some(x as f64),
            N::I(x) => Some(x as f64),
            N::F(x) => Some(x),
        }
    }
}

/// An insertion-ordered string-keyed map (like upstream's `preserve_order`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts, replacing in place when the key exists; returns the old value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a value by key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl Value {
    pub(crate) fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(x) => Value::Number(Number(N::U(x))),
            Content::I64(x) => Value::Number(Number(N::I(x))),
            Content::F64(x) => Value::Number(Number(N::F(x))),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => {
                let mut map = Map::new();
                for (k, v) in entries {
                    let key = match k {
                        Content::Str(s) => s,
                        other => write::to_compact_string(&other),
                    };
                    map.insert(key, Value::from_content(v));
                }
                Value::Object(map)
            }
        }
    }

    pub(crate) fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number(N::U(x))) => Content::U64(x),
            Value::Number(Number(N::I(x))) => Content::I64(x),
            Value::Number(Number(N::F(x))) => Content::F64(x),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(map) => Content::Map(
                map.into_iter()
                    .map(|(k, v)| (Content::Str(k), v.into_content()))
                    .collect(),
            ),
        }
    }

    /// Looks up `key` when this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements when this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The entries when this value is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Upstream-style indexing: `v["key"]` yields [`Value::Null`] for missing
/// keys or non-objects instead of panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Literal comparisons (`v["count"] == 3`), as upstream provides.
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        match self {
            Value::Number(n) => n.as_i64() == Some(*other as i64),
            _ => false,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.clone().into_content()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Value::from_content(c.clone()))
    }
}

impl Serialize for Map<String, Value> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                .collect(),
        )
    }
}

/// Converts any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    Value::from_content(value.to_content())
}

/// Support plumbing for the [`json!`] macro — not public API.
#[doc(hidden)]
pub mod __private {
    pub use super::to_value as value_of;
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Object values and array items may be arbitrary expressions implementing
/// `serde::Serialize`; nest objects via inner `json!({...})` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert($key.to_string(), $crate::__private::value_of(&$value)); )*
        $crate::Value::Object(__map)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__private::value_of(&$value) ),* ])
    };
    ($other:expr) => { $crate::__private::value_of(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "name": "felip",
            "n": 3usize,
            "mae": 0.25f64,
            "ids": vec![1u32, 2, 3],
        });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"name":"felip","n":3,"mae":0.25,"ids":[1,2,3]}"#);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("a".into(), json!(1u32));
        m.insert("b".into(), json!(2u32));
        assert!(m.insert("a".into(), json!(9u32)).is_some());
        assert_eq!(m.len(), 2);
        assert_eq!(to_string(&Value::Object(m)).unwrap(), r#"{"a":9,"b":2}"#);
    }

    #[test]
    fn u64_precision_survives_round_trip() {
        let seed = u64::MAX - 3;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({"x": [1u32, 2], "y": json!(null), "z": -4i64, "w": true});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
