//! Recursive-descent JSON parser producing `serde::Content`.

use serde::{Content, Deserialize};

use crate::Error;

/// Deserializes any shim-`Deserialize` type from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_content(&content)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("JSON parse error at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // BMP only (surrogate pairs are never emitted by
                            // this shim's writer).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(x) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(x) {
                        return Ok(Content::I64(-neg));
                    }
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Content::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v: serde::Content =
            from_str(r#" {"a": [1, -2, 3.5], "b": {"c": null}, "d": "x\ny"} "#).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(
            m[0].1.as_seq().unwrap(),
            &[Content::U64(1), Content::I64(-2), Content::F64(3.5)]
        );
        assert_eq!(m[1].1.as_map().unwrap()[0].1, Content::Null);
        assert_eq!(m[2].1.as_str().unwrap(), "x\ny");
    }

    #[test]
    fn big_u64_stays_exact() {
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<serde::Content>("{").is_err());
        assert!(from_str::<serde::Content>("[1,]").is_err());
        assert!(from_str::<serde::Content>("1 2").is_err());
        assert!(from_str::<serde::Content>("nul").is_err());
    }
}
