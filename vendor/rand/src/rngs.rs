//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Seeded through SplitMix64 so that every `u64` seed yields a full,
/// well-mixed 256-bit state (including seed 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let ratio = ones as f64 / (1000.0 * 64.0);
        assert!((ratio - 0.5).abs() < 0.01, "bit balance {ratio}");
    }
}
