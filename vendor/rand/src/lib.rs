//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through a
//! SplitMix64 expansion of a `u64` — statistically strong, deterministic in
//! the seed, and dependency-free. It is *not* the ChaCha12 generator real
//! `rand` uses, so seeded streams differ from upstream `rand`, but every
//! consumer in this workspace only relies on determinism and distributional
//! quality, never on a specific upstream stream.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: u64 = dyn_rng.gen();
        let y: u64 = dyn_rng.gen();
        assert_ne!(x, y);
    }
}
