//! Distribution abstraction and the standard (uniform) distribution.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution for a type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
