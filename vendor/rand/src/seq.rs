//! Slice sampling helpers.

use crate::Rng;

/// Random slice operations (Fisher–Yates shuffle).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place, uniformly over permutations.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1u32, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
