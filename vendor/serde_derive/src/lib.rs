//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without syn/quote. The item's token stream is parsed structurally (just
//! names: type, fields, variants) and the impl is generated as a source
//! string; field *types* are never needed because the generated code relies
//! on struct-literal type inference.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields
//! - enums with unit, tuple, and struct variants
//!
//! The wire shape matches serde's externally-tagged default:
//! unit variant -> `"Name"`, newtype -> `{"Name": value}`,
//! tuple -> `{"Name": [..]}`, struct variant -> `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the shim `serde::Serialize` (tree-building `to_content`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl must parse"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim `serde::Deserialize` (tree-reading `from_content`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl must parse"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected struct/enum, got {other:?}"
            ))
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    // Skip generics if present (none of this workspace's derived types are
    // generic, but tolerate an empty/simple parameter list).
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => continue, // e.g. where clauses (not used here)
            None => return Err(format!("serde shim derive: no braced body on `{name}`")),
        }
    };
    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Splits a token stream on top-level commas, treating `<...>` generic
/// arguments as nesting (delimited groups are already single trees).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// Extracts the field name from `(#[attr])* (pub)? name : Type` tokens.
fn field_name(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Ok(id.to_string()),
            other => {
                return Err(format!(
                    "serde shim derive: unexpected token in field: {other:?}"
                ))
            }
        }
    }
    Err("serde shim derive: field with no name".to_string())
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(body)
        .iter()
        .map(|f| field_name(f))
        .collect()
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(body)
        .into_iter()
        .map(|tokens| {
            let mut i = 0;
            // Skip variant attributes (doc comments etc.).
            while let Some(TokenTree::Punct(p)) = tokens.get(i) {
                if p.as_char() == '#' {
                    i += 2;
                } else {
                    break;
                }
            }
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => {
                    return Err(format!(
                        "serde shim derive: expected variant name, got {other:?}"
                    ))
                }
            };
            let kind = match tokens.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit, // discriminant
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream())?)
                }
                other => {
                    return Err(format!(
                        "serde shim derive: unexpected variant shape: {other:?}"
                    ))
                }
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(serde::Content::Str({f:?}.to_string()), \
                         serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> serde::Content {{\n\
                         serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Content::unit_variant({vn:?}),\n")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Content::newtype_variant(\
                             {vn:?}, serde::Serialize::to_content(__f0)),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Content::tuple_variant(\
                                 {vn:?}, vec![{items}]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| format!("({f:?}, serde::Serialize::to_content({f})),"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 serde::Content::struct_variant({vn:?}, vec![{items}]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> serde::Content {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_content(\
                         serde::map_field(__m, {f:?}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &serde::Content) \
                         -> std::result::Result<Self, serde::DeError> {{\n\
                         let __m = __c.as_map().ok_or_else(|| \
                             serde::DeError::expected(\"map\", {name:?}))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{vn:?} => Ok({name}::{vn}),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => {{\n\
                                 let __p = __payload.ok_or_else(|| \
                                     serde::DeError::expected(\"variant payload\", {name:?}))?;\n\
                                 Ok({name}::{vn}(serde::Deserialize::from_content(__p)?))\n\
                             }}\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_content(&__s[{i}])?,")
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __p = __payload.ok_or_else(|| \
                                         serde::DeError::expected(\"variant payload\", {name:?}))?;\n\
                                     let __s = __p.as_seq().ok_or_else(|| \
                                         serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                                     if __s.len() != {n} {{\n\
                                         return Err(serde::DeError::expected(\
                                             \"{n}-element sequence\", {name:?}));\n\
                                     }}\n\
                                     Ok({name}::{vn}({items}))\n\
                                 }}\n"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_content(\
                                         serde::map_field(__m, {f:?}, {name:?})?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __p = __payload.ok_or_else(|| \
                                         serde::DeError::expected(\"variant payload\", {name:?}))?;\n\
                                     let __m = __p.as_map().ok_or_else(|| \
                                         serde::DeError::expected(\"map\", {name:?}))?;\n\
                                     Ok({name}::{vn} {{ {inits} }})\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &serde::Content) \
                         -> std::result::Result<Self, serde::DeError> {{\n\
                         let (__tag, __payload) = serde::variant_parts(__c, {name:?})?;\n\
                         match __tag {{\n\
                             {arms}\
                             __other => Err(serde::DeError::unknown_variant(__other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
