//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! Fan-out is real: work is distributed over `std::thread::scope` threads,
//! capped at `RAYON_NUM_THREADS` (env) or `available_parallelism`. Nested
//! parallel calls run sequentially on the calling worker (a cheap stand-in
//! for rayon's work stealing that keeps thread counts bounded), so callers
//! can freely compose parallel layers exactly as with real rayon.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn effective_threads(jobs: usize) -> usize {
    if jobs <= 1 || IN_PARALLEL.with(|f| f.get()) {
        1
    } else {
        max_threads().min(jobs)
    }
}

/// Runs `f(0..njobs)` across worker threads, returning results in index
/// order. Falls back to a plain sequential loop when only one thread is
/// effective (single core, nested call, or a single job).
fn par_map_indexed<R, F>(njobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(njobs);
    if threads <= 1 {
        return (0..njobs).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = &counter;
                let f = &f;
                s.spawn(move || {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    let mut out = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= njobs {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Runs `f` for every index without collecting results.
fn par_for_each_indexed<F>(njobs: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = effective_threads(njobs);
    if threads <= 1 {
        for i in 0..njobs {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            s.spawn(move || {
                IN_PARALLEL.with(|flag| flag.set(true));
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= njobs {
                        break;
                    }
                    f(i);
                }
            });
        }
    });
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` for every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        par_for_each_indexed(self.range.len(), |i| f(base + i));
    }
}

/// A mapped [`ParRange`].
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collects mapped results in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: FromParVec<R>,
    {
        let base = self.range.start;
        let f = self.f;
        C::from_par_vec(par_map_indexed(self.range.len(), |i| f(base + i)))
    }
}

/// Collection types constructible from an ordered `Vec` of parallel results.
pub trait FromParVec<R> {
    /// Builds the collection from results in index order.
    fn from_par_vec(v: Vec<R>) -> Self;
}

impl<R> FromParVec<R> for Vec<R> {
    fn from_par_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Parallel read-only slice operations.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over the elements.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    /// Folds contiguous sub-slices into per-worker accumulators (combine
    /// them with [`FoldPieces::reduce`]).
    pub fn fold<A, MI, F>(self, make: MI, fold: F) -> FoldPieces<A>
    where
        A: Send,
        MI: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
    {
        let threads = effective_threads(self.slice.len());
        let chunk = self.slice.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[T]> = self.slice.chunks(chunk).collect();
        let pieces = par_map_indexed(chunks.len(), |c| chunks[c].iter().fold(make(), &fold));
        FoldPieces { pieces }
    }
}

/// A mapped [`ParSliceIter`].
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    /// Collects mapped results in slice order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParVec<R>,
    {
        let slice = self.slice;
        let f = self.f;
        C::from_par_vec(par_map_indexed(slice.len(), |i| f(&slice[i])))
    }
}

/// Ordered per-worker fold accumulators awaiting reduction.
pub struct FoldPieces<A> {
    pieces: Vec<A>,
}

impl<A> FoldPieces<A> {
    /// Combines the accumulators left to right, starting from `make()`.
    pub fn reduce<MI, F>(self, make: MI, f: F) -> A
    where
        MI: Fn() -> A,
        F: Fn(A, A) -> A,
    {
        self.pieces.into_iter().fold(make(), f)
    }
}

/// Parallel mutable slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into `chunk_size` chunks processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            chunks: self.chunks,
        }
    }

    /// Runs `f` over every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// An enumerated [`ParChunksMut`].
pub struct EnumChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Runs `f((index, chunk))` over every chunk in parallel. Chunks are
    /// statically partitioned across workers in contiguous runs.
    pub fn for_each<F>(mut self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n = self.chunks.len();
        let threads = effective_threads(n);
        if threads <= 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let per = n.div_ceil(threads);
        std::thread::scope(|s| {
            let mut base = 0usize;
            while !self.chunks.is_empty() {
                let take = per.min(self.chunks.len());
                let group: Vec<&mut [T]> = self.chunks.drain(..take).collect();
                let start = base;
                base += take;
                let f = &f;
                s.spawn(move || {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    for (k, chunk) in group.into_iter().enumerate() {
                        f((start + k, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_fold_reduce_sums() {
        let data: Vec<u64> = (0..10_000).collect();
        let total = data
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn slice_map_collect() {
        let data = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn chunks_mut_sees_every_chunk_once() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(b, chunk)| {
            for slot in chunk.iter_mut() {
                *slot += b as u64 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 1000 / 64 + 1);
    }

    #[test]
    fn nested_parallelism_is_sequentialised() {
        let v: Vec<Vec<usize>> = (0..4)
            .into_par_iter()
            .map(|outer| {
                (0..8)
                    .into_par_iter()
                    .map(move |inner| outer * 8 + inner)
                    .collect()
            })
            .collect();
        for (outer, inner) in v.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|i| outer * 8 + i).collect::<Vec<_>>());
        }
    }
}
