//! Offline shim for the subset of `rand_distr` 0.4 this workspace uses:
//! normal-family distributions, sampled with the Box–Muller transform.

use rand::Rng;

pub use rand::distributions::Distribution;

/// Error constructing a normal-family distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation (or shape) parameter was negative or NaN.
    BadVariance,
    /// The mean (or scale) parameter was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The standard normal distribution `N(0, 1)`.
///
/// Box–Muller: two uniforms give one normal draw (the sine branch is
/// discarded so the distribution stays stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    /// Fails when `std_dev` is negative/NaN or `mean` is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if std_dev.is_nan() || std_dev < 0.0 || !std_dev.is_finite() {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    norm: Normal<T>,
}

impl LogNormal<f64> {
    /// Creates `exp(N(mu, sigma²))`.
    ///
    /// # Errors
    /// Fails when `sigma` is negative/NaN or `mu` is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = Normal::new(10.0, 2.0).unwrap();
        let n = 100_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = LogNormal::new(0.0, 0.6).unwrap();
        assert!((0..10_000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }
}
