//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor machinery, serialization goes through one
//! self-describing tree, [`Content`]: `Serialize` builds a `Content`,
//! `Deserialize` reads one back. Integers keep 64-bit precision (`U64` /
//! `I64` variants) so OLH seeds survive JSON round-trips exactly.
//! `serde_json` renders/parses `Content` as JSON text.
//!
//! The derive macros (re-exported from the `serde_derive` shim) generate
//! these impls for named-field structs and unit/tuple/struct enums using
//! serde's externally-tagged enum representation.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialization tree — the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (`Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer, exact to 64 bits.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key-value map (keys are `Str` for derived types).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The entries when this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Externally-tagged unit variant: `"Name"`.
    pub fn unit_variant(name: &str) -> Content {
        Content::Str(name.to_string())
    }

    /// Externally-tagged newtype variant: `{"Name": value}`.
    pub fn newtype_variant(name: &str, value: Content) -> Content {
        Content::Map(vec![(Content::Str(name.to_string()), value)])
    }

    /// Externally-tagged tuple variant: `{"Name": [..]}`.
    pub fn tuple_variant(name: &str, items: Vec<Content>) -> Content {
        Content::newtype_variant(name, Content::Seq(items))
    }

    /// Externally-tagged struct variant: `{"Name": {..}}`.
    pub fn struct_variant(name: &str, fields: Vec<(&str, Content)>) -> Content {
        let entries = fields
            .into_iter()
            .map(|(k, v)| (Content::Str(k.to_string()), v))
            .collect();
        Content::newtype_variant(name, Content::Map(entries))
    }
}

/// Deserialization error: what was expected, where.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError::new(format!("expected {what} while deserializing {ty}"))
    }

    /// An unrecognized enum variant tag.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError::new(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Looks up `key` in a derived struct/variant map.
pub fn map_field<'a>(
    map: &'a [(Content, Content)],
    key: &str,
    ty: &str,
) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k.as_str() == Some(key))
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}` while deserializing {ty}")))
}

/// Splits an externally-tagged enum value into `(tag, payload)`:
/// `"Name"` -> `("Name", None)`; `{"Name": v}` -> `("Name", Some(v))`.
pub fn variant_parts<'a>(
    c: &'a Content,
    ty: &str,
) -> Result<(&'a str, Option<&'a Content>), DeError> {
    match c {
        Content::Str(tag) => Ok((tag, None)),
        Content::Map(entries) if entries.len() == 1 => {
            let (k, v) = &entries[0];
            let tag = k
                .as_str()
                .ok_or_else(|| DeError::expected("string variant tag", ty))?;
            Ok((tag, Some(v)))
        }
        _ => Err(DeError::expected(
            "variant (string or single-entry map)",
            ty,
        )),
    }
}

/// Types convertible into a [`Content`] tree.
pub trait Serialize {
    /// Builds the serialization tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back out of a serialization tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw = match *c {
                    Content::U64(x) => x,
                    Content::I64(x) if x >= 0 => x as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::expected("in-range unsigned integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw: i64 = match *c {
                    Content::I64(x) => x,
                    Content::U64(x) => {
                        i64::try_from(x)
                            .map_err(|_| DeError::expected("in-range integer", stringify!($t)))?
                    }
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(x) => Ok(x as $t),
                    Content::U64(x) => Ok(x as $t),
                    Content::I64(x) => Ok(x as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_content(&vec![1u32, 2].to_content()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(7)).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn variant_helpers_split_back() {
        let unit = Content::unit_variant("A");
        assert_eq!(variant_parts(&unit, "T").unwrap(), ("A", None));
        let newt = Content::newtype_variant("B", Content::U64(5));
        let (tag, payload) = variant_parts(&newt, "T").unwrap();
        assert_eq!(tag, "B");
        assert_eq!(payload, Some(&Content::U64(5)));
    }
}
