//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Bench targets compile and run against the real criterion API surface
//! (`benchmark_group`, `bench_with_input`, `iter`, `iter_batched`, ...),
//! but measurement is a lightweight best-of-N timer with a small per-point
//! budget so `cargo bench` finishes quickly on small machines. One line per
//! bench point is printed: `group/id  <time>/iter  (<throughput>)`.
//!
//! Set `CRITERION_SHIM_BUDGET_MS` to raise the per-point measurement budget
//! for more stable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default measurement budget per bench point.
const DEFAULT_BUDGET_MS: u64 = 40;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_BUDGET_MS);
    Duration::from_millis(ms)
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of bench points.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group's points.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one bench point within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Batch sizing for `iter_batched`; accepted but not interpreted.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// A group of related bench points.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent points with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one bench point with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { best: None };
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Runs one bench point without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { best: None };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let Some(per_iter) = bencher.best else {
            println!("{}/{id}: no measurement", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, format_seconds(per_iter));
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

/// Times closures; keeps the best (minimum) observed seconds-per-iteration.
pub struct Bencher {
    best: Option<f64>,
}

impl Bencher {
    fn record(&mut self, per_iter: f64) {
        self.best = Some(match self.best {
            Some(b) => b.min(per_iter),
            None => per_iter,
        });
    }

    /// Times `routine`, amortizing the clock over growing batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + budget();
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.record(elapsed.as_secs_f64() / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
            // Grow batches until one batch costs ~1/4 of the budget.
            if elapsed * 4 < budget() {
                batch = batch.saturating_mul(2);
            }
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + budget();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a bench group entry point compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, _| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_seconds(2.0).ends_with("s/iter"));
        assert!(format_seconds(2e-3).contains("ms"));
        assert!(format_seconds(2e-6).contains("µs"));
        assert!(format_seconds(2e-9).contains("ns"));
    }
}
