//! The data-aware two-phase extension (paper §7, first future-work item):
//! spend 10% of the population learning coarse marginals, then bin the
//! remaining users' grids by equal estimated *mass* so no cell is left
//! holding a noise-dominated sliver of the distribution.
//!
//! ```sh
//! cargo run --release --example two_phase
//! ```

use felip_repro::common::metrics::mae;
use felip_repro::common::rng::seeded_rng;
use felip_repro::datasets::{generate_queries, loan_like, GenOptions, WorkloadOptions};
use felip_repro::engine::{simulate, simulate_two_phase};
use felip_repro::{FelipConfig, SelectivityPrior, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = seeded_rng(0); // (keep the prelude import exercised)
                           // Loan-shaped data: spiky, skewed marginals — equal-width cells straddle
                           // the density spikes, which is exactly where mass-balancing helps.
    let data = loan_like(GenOptions {
        n: 120_000,
        seed: 77,
        ..GenOptions::paper_default()
    });
    let workload = generate_queries(
        data.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: 0.2,
            count: 15,
            seed: 9,
            range_only: false,
        },
    )?;
    let truth: Vec<f64> = workload.iter().map(|q| q.true_answer(&data)).collect();

    let config = FelipConfig::new(1.0)
        .with_strategy(Strategy::Ohg)
        .with_selectivity(SelectivityPrior::Uniform(0.2));

    let one = simulate(&data, &config, 5)?;
    let one_mae = mae(&one.answer_all(&workload)?, &truth);
    println!("one-phase OHG (equal-width cells):     MAE {one_mae:.5}");

    for rho in [0.05, 0.1, 0.2] {
        let two = simulate_two_phase(&data, &config, rho, 5)?;
        let two_mae = mae(&two.answer_all(&workload)?, &truth);
        println!(
            "two-phase OHG (ρ = {rho:<4}, equal-mass):  MAE {two_mae:.5}  ({:.1}× vs one-phase)",
            one_mae / two_mae
        );
    }

    // Peek at what changed: the 1-D grid edges for the loan-amount-like
    // attribute cluster around the density spikes instead of being uniform.
    let two = simulate_two_phase(&data, &config, 0.1, 5)?;
    let grid = two
        .grids()
        .iter()
        .find(|g| g.spec().id() == felip_repro::grid::GridId::One(0))
        .expect("OHG plans a 1-D grid for attribute 0");
    println!(
        "\nmass-balanced 1-D edges for n0: {:?}",
        grid.spec().axes()[0].binning.edges()
    );
    println!(
        "(compare with equal-width edges at multiples of {})",
        256 / grid.spec().axes()[0].cells()
    );
    Ok(())
}
