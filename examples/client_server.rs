//! The deployment-shaped API: an explicit client/server split instead of
//! the `simulate` convenience wrapper.
//!
//! The server builds a public [`CollectionPlan`] and ships it to clients.
//! Each client — holding one private record — projects it onto its assigned
//! grid, perturbs the cell under ε-LDP, and sends back a tiny
//! [`UserReport`]. The server ingests reports *streamingly* (it never
//! stores them) and, once enough arrived, estimates and answers queries.
//!
//! ```sh
//! cargo run --release --example client_server
//! ```

use felip_repro::common::rng::seeded_rng;
use felip_repro::engine::{respond, Aggregator, CollectionPlan};
use felip_repro::{Attribute, FelipConfig, Predicate, Query, Schema, Strategy};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new(vec![
        Attribute::numerical("commute_minutes", 120),
        Attribute::categorical("transport", 4), // walk / bike / car / transit
    ])?;
    let n = 80_000;

    // --- Server side: publish the plan. ---
    let config = FelipConfig::new(1.2).with_strategy(Strategy::Ohg);
    let plan = CollectionPlan::build(&schema, n, &config, /*assignment seed*/ 99)?;
    println!(
        "server: published plan with {} grids; each user reports one perturbed cell",
        plan.num_groups()
    );

    // --- Client side: every device perturbs locally. ---
    // (Simulated here; `respond` is the only function that touches a raw
    // record, and its output is the only thing transmitted.)
    let mut device_rng = seeded_rng(1);
    let mut reports = Vec::with_capacity(n);
    let mut ground_truth = Vec::with_capacity(n);
    for user in 0..n {
        let transport = device_rng.gen_range(0..4u32);
        let commute = match transport {
            0 => device_rng.gen_range(0..30),   // walkers: short
            1 => device_rng.gen_range(5..45),   // cyclists
            2 => device_rng.gen_range(10..90),  // drivers
            _ => device_rng.gen_range(20..120), // transit: long
        };
        let record = [commute, transport];
        let report = respond(&plan, user, &record, &mut device_rng)?;
        // Wire cost of what actually leaves the device:
        debug_assert!(report.report.wire_bytes() <= 12);
        reports.push(report);
        ground_truth.push(record);
    }

    // --- Server side: streaming ingestion, then estimation. ---
    let mut aggregator = Aggregator::new(plan);
    for r in &reports {
        aggregator.ingest(r)?;
    }
    println!(
        "server: ingested {} reports (memory stays O(grid cells))",
        aggregator.reports_ingested()
    );
    let estimator = aggregator.estimate()?;

    let q = Query::new(
        &schema,
        vec![
            Predicate::between(0, 45, 119),
            Predicate::in_set(1, vec![3]),
        ],
    )?;
    let est = estimator.answer(&q)?;
    let truth = ground_truth
        .iter()
        .filter(|r| (45..=119).contains(&r[0]) && r[1] == 3)
        .count() as f64
        / n as f64;
    println!("\nlong transit commutes (>45 min): estimated {est:.4}, true {truth:.4}");
    println!("the server never saw a single raw commute time.");
    Ok(())
}
