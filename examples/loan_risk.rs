//! Loan-portfolio analysis with an *informed selectivity prior* (§5.2's
//! knob): the analyst knows their dashboard issues narrow queries
//! (selectivity ≈ 0.2), so the aggregator sizes grids for that workload and
//! beats the uninformed default.
//!
//! ```sh
//! cargo run --release --example loan_risk
//! ```

use felip_repro::common::metrics::mae;
use felip_repro::datasets::{generate_queries, loan_like, GenOptions, WorkloadOptions};
use felip_repro::{simulate, FelipConfig, SelectivityPrior, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lending-shaped data: n0 loan amount, n1 interest rate, n2 credit
    // score (all domain 256), c0 grade, c1 term, c2 purpose (domain 8).
    let opts = GenOptions {
        n: 150_000,
        seed: 5,
        ..GenOptions::paper_default()
    };
    let portfolio = loan_like(opts);

    // The dashboard workload: 2-D queries, narrow (20% of each domain).
    let true_selectivity = 0.2;
    let workload = generate_queries(
        portfolio.schema(),
        WorkloadOptions {
            lambda: 2,
            selectivity: true_selectivity,
            count: 20,
            seed: 9,
            range_only: false,
        },
    )?;
    let truth: Vec<f64> = workload.iter().map(|q| q.true_answer(&portfolio)).collect();

    println!(
        "20 narrow 2-D risk queries (s = {true_selectivity}), ε = 1, n = {}:",
        portfolio.len()
    );
    println!("{:<34} {:>10}", "grid sizing prior", "MAE");
    for (label, prior) in [
        ("informed (r = 0.2, true)", 0.2),
        ("uninformed default (r = 0.5)", 0.5),
        ("misinformed (r = 0.8)", 0.8),
    ] {
        let config = FelipConfig::new(1.0)
            .with_strategy(Strategy::Ohg)
            .with_selectivity(SelectivityPrior::Uniform(prior));
        let estimator = simulate(&portfolio, &config, 31)?;
        let answers = estimator.answer_all(&workload)?;
        println!("{label:<34} {:>10.5}", mae(&answers, &truth));
    }
    println!("\nNarrow queries touch few cells, so the informed prior affords finer");
    println!("grids (less non-uniformity bias) at the same noise budget.");
    Ok(())
}
