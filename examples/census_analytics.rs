//! Census analytics: the paper's motivating scenario (§1) on the
//! IPUMS-shaped dataset — an analyst issues SQL-style counting queries with
//! range and point constraints, e.g.
//!
//! `SELECT COUNT(*) FROM T WHERE Age BETWEEN 30 AND 60
//!    AND Education IN ('Doctorate','Masters') AND Salary <= 80k`
//!
//! and FELIP answers them from ε-LDP reports only. The example also
//! contrasts the OUG and OHG strategies on this skewed data.
//!
//! ```sh
//! cargo run --release --example census_analytics
//! ```

use felip_repro::datasets::{ipums_like, GenOptions};
use felip_repro::{simulate, FelipConfig, Predicate, Query, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // IPUMS-shaped population: n0..n2 numerical (age-like, income-like,
    // hours-like, domain 256), c0..c2 categorical (sex-like, education-like,
    // race-like, domain 8).
    let opts = GenOptions {
        n: 150_000,
        seed: 2024,
        ..GenOptions::paper_default()
    };
    let census = ipums_like(opts);
    let schema = census.schema().clone();

    // The paper's example query, mapped onto this schema: age band ∧
    // education in a set ∧ income cap.
    let paper_query = Query::new(
        &schema,
        vec![
            Predicate::between(0, 77, 154), // "age BETWEEN 30 AND 60" scaled to [0,256)
            Predicate::in_set(4, vec![6, 7]), // "education IN (Masters, Doctorate)"
            Predicate::between(1, 0, 102),  // "salary <= 80k" scaled
        ],
    )?;
    let marginals = [
        (
            "working-age band",
            Query::new(&schema, vec![Predicate::between(0, 77, 154)])?,
        ),
        (
            "top education levels",
            Query::new(&schema, vec![Predicate::in_set(4, vec![6, 7])])?,
        ),
        (
            "low income ∧ majority race group",
            Query::new(
                &schema,
                vec![Predicate::between(1, 0, 64), Predicate::equals(5, 0)],
            )?,
        ),
    ];

    for strategy in [Strategy::Oug, Strategy::Ohg] {
        let config = FelipConfig::new(1.0).with_strategy(strategy);
        let estimator = simulate(&census, &config, 7)?;
        println!("--- {strategy} (ε = 1.0, n = {}) ---", census.len());
        let est = estimator.answer(&paper_query)?;
        let truth = paper_query.true_answer(&census);
        println!(
            "{:<38} {est:>9.4} vs true {truth:>9.4} (err {:.4})",
            "paper's example 3-D query",
            (est - truth).abs()
        );
        for (label, q) in &marginals {
            let est = estimator.answer(q)?;
            let truth = q.true_answer(&census);
            println!(
                "{label:<38} {est:>9.4} vs true {truth:>9.4} (err {:.4})",
                (est - truth).abs()
            );
        }
        println!();
    }
    println!("OHG usually wins on skewed census-like data: its 1-D grids capture");
    println!("the marginal shapes that OUG's uniformity assumption flattens.");
    Ok(())
}
