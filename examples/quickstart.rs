//! Quickstart: collect a small multidimensional dataset under ε-LDP with
//! FELIP and answer a few counting queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use felip_repro::common::rng::seeded_rng;
use felip_repro::{simulate, FelipConfig, Strategy};
use felip_repro::{Attribute, Dataset, Predicate, Query, Schema};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A schema: two numerical attributes and one categorical.
    let schema = Schema::new(vec![
        Attribute::numerical("age", 100),      // ages 0..100
        Attribute::numerical("salary_k", 200), // thousands, 0..200
        Attribute::categorical("plan", 3),     // free / pro / enterprise
    ])?;

    // 2. A synthetic population of 100k users. In a real deployment every
    //    record lives on a user's device; nothing unperturbed ever leaves it.
    let mut rng = seeded_rng(7);
    let mut population = Dataset::empty(schema.clone());
    for _ in 0..100_000 {
        let age = 18 + (rng.gen::<f64>() * rng.gen::<f64>() * 60.0) as u32; // skewed young
        let salary = (20.0 + age as f64 * 1.2 + rng.gen_range(-10.0..30.0)).max(0.0) as u32;
        let plan = if salary > 80 {
            2
        } else if rng.gen_bool(0.4) {
            1
        } else {
            0
        };
        population.push(&[age.min(99), salary.min(199), plan])?;
    }

    // 3. Collect under ε = 1 LDP with the hybrid-grid strategy.
    let config = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
    let estimator = simulate(&population, &config, 42)?;

    // 4. Ask questions the aggregator never saw raw data for.
    let queries = [
        (
            "30 ≤ age ≤ 60",
            Query::new(&schema, vec![Predicate::between(0, 30, 60)])?,
        ),
        (
            "age ∈ [25,45] ∧ plan ∈ {pro, enterprise}",
            Query::new(
                &schema,
                vec![
                    Predicate::between(0, 25, 45),
                    Predicate::in_set(2, vec![1, 2]),
                ],
            )?,
        ),
        (
            "age ≤ 40 ∧ salary ≤ 60k ∧ plan = free",
            Query::new(
                &schema,
                vec![
                    Predicate::between(0, 0, 40),
                    Predicate::between(1, 0, 60),
                    Predicate::equals(2, 0),
                ],
            )?,
        ),
    ];

    println!(
        "{:<45} {:>10} {:>10} {:>10}",
        "query", "estimate", "truth", "abs err"
    );
    for (label, q) in &queries {
        let est = estimator.answer(q)?;
        let truth = q.true_answer(&population);
        println!(
            "{label:<45} {est:>10.4} {truth:>10.4} {:>10.4}",
            (est - truth).abs()
        );
    }
    Ok(())
}
