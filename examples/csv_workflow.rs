//! The real-data adoption path: load a CSV extract, discretise it, collect
//! it once under ε-LDP, and answer SQL-`WHERE`-style questions with error
//! bars.
//!
//! (The same flow is available on the command line:
//! `felip query --csv ... --columns ... --where ...`.)
//!
//! ```sh
//! cargo run --release --example csv_workflow
//! ```

use felip_repro::common::parse::parse_query;
use felip_repro::common::rng::seeded_rng;
use felip_repro::datasets::{load_csv_str, ColumnSpec};
use felip_repro::{simulate, FelipConfig, Strategy};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for a real export (e.g. an IPUMS or Lending-Club extract):
    // age and income as raw numbers, education as strings.
    let mut rng = seeded_rng(11);
    let mut csv = String::from("age,education,income\n");
    let degrees = ["HS", "HS", "HS", "BSc", "BSc", "MSc", "PhD"];
    for _ in 0..60_000 {
        let age = 18 + (rng.gen::<f64>() * rng.gen::<f64>() * 60.0) as u32;
        let edu = degrees[rng.gen_range(0..degrees.len())];
        let base = match edu {
            "PhD" => 85_000.0,
            "MSc" => 70_000.0,
            "BSc" => 55_000.0,
            _ => 38_000.0,
        };
        let income = base * (0.6 + rng.gen::<f64>()) + age as f64 * 300.0;
        csv.push_str(&format!("{age},{edu},{income:.0}\n"));
    }

    // 1. Discretise: age into 16 bins over [18, 80), education into a
    //    dictionary, income into 32 bins over an inferred range.
    let specs = [
        ColumnSpec::Numerical {
            name: "age".into(),
            bins: 16,
            range: Some((18.0, 80.0)),
        },
        ColumnSpec::Categorical {
            name: "education".into(),
            max_categories: 8,
        },
        ColumnSpec::Numerical {
            name: "income".into(),
            bins: 32,
            range: None,
        },
    ];
    let (data, book) = load_csv_str(&csv, &specs)?;
    println!(
        "loaded {} records → schema {:?} bins",
        data.len(),
        [16, 8, 32]
    );

    // 2. One ε-LDP collection serves every query below.
    let est = simulate(
        &data,
        &FelipConfig::new(1.0).with_strategy(Strategy::Ohg),
        21,
    )?;

    // 3. Ask questions in WHERE syntax over the *encoded* domains; the
    //    CodeBook translates raw constants into bins/ids.
    let hs = book.encode_category(1, "HS")?;
    let age_30 = book.encode_numerical(0, 30.0)?;
    let age_60 = book.encode_numerical(0, 60.0)?;
    let income_50k = book.encode_numerical(2, 50_000.0)?;
    let questions = [
        format!("age BETWEEN {age_30} AND {age_60}"),
        format!("education = {hs} AND income <= {income_50k}"),
        format!("age >= {age_30} AND income > {income_50k}"),
    ];
    for q_text in &questions {
        let q = parse_query(data.schema(), q_text)?;
        let a = est.answer_with_error(&q)?;
        let truth = q.true_answer(&data);
        println!(
            "{q_text:<44} → {:.4} ± {:.4}   (true {:.4})",
            a.estimate, a.std_error, truth
        );
    }

    // 4. Companion statistics from the same collection.
    println!("\nestimated mean income bin: {:.2} (of 32)", est.mean(2)?);
    let hist = est.histogram(1)?;
    println!("education distribution estimate: {hist:.3?}");
    Ok(())
}
