//! The Adaptive Frequency Oracle (§5.3) in action: how FELIP picks GRR or
//! OLH per grid, and why.
//!
//! GRR's estimation variance grows linearly with the number of cells L,
//! while OLH's is flat — so small grids (categorical pairs, coarse numeric
//! bins) use GRR and large ones use OLH, with the crossover at
//! `L = 3·e^ε + 2`.
//!
//! ```sh
//! cargo run --release --example adaptive_oracle
//! ```

use felip_repro::fo::afo::{afo_variance_factor, choose_oracle};
use felip_repro::fo::variance::{grr_variance_factor, olh_variance_factor};
use felip_repro::{Attribute, CollectionPlan, FelipConfig, Schema, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The raw variance curves.
    println!("per-cell variance factors at ε = 1 (crossover at L = 3e+2 ≈ 10.2):");
    println!("{:>6} {:>12} {:>12} {:>8}", "L", "GRR", "OLH", "AFO picks");
    for cells in [2u32, 4, 8, 10, 11, 16, 64, 256] {
        println!(
            "{cells:>6} {:>12.4} {:>12.4} {:>8}",
            grr_variance_factor(1.0, cells),
            olh_variance_factor(1.0),
            choose_oracle(1.0, cells)
        );
    }
    assert!(afo_variance_factor(1.0, 4) < olh_variance_factor(1.0));

    // 2. A realistic mixed schema: watch the per-grid decisions.
    let schema = Schema::new(vec![
        Attribute::numerical("age", 128),
        Attribute::numerical("income", 512),
        Attribute::categorical("sex", 2),
        Attribute::categorical("region", 4),
    ])?;
    for epsilon in [0.5, 1.0, 3.0] {
        let config = FelipConfig::new(epsilon).with_strategy(Strategy::Ohg);
        let plan = CollectionPlan::build(&schema, 1_000_000, &config, 1)?;
        println!("\nε = {epsilon}: {} grids", plan.num_groups());
        for g in plan.grids() {
            let axes: Vec<String> = g
                .axes()
                .iter()
                .map(|a| format!("{}:{}", schema.attr(a.attr).name, a.cells()))
                .collect();
            println!(
                "  {:<8} [{}] L={:<6} → {}",
                g.id().to_string(),
                axes.join(" × "),
                g.num_cells(),
                g.fo
            );
        }
    }
    println!("\nNote how the tiny sex×region grid always reports via GRR, the large");
    println!("numeric×numeric grids via OLH, and a larger ε shifts the boundary");
    println!("towards GRR (its penalty shrinks as e^ε grows).");
    Ok(())
}
